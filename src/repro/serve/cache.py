"""Read-through LRU response cache, invalidated by snapshot generation.

The cache maps ``(route, request_key)`` to the payload computed for one
snapshot version.  Correctness comes from *version-checked reads*: a hit
only counts when the cached entry was computed against the **current**
snapshot version, so publishing a new snapshot implicitly invalidates
every cached response at once — no flush pass, no stampede window where
half-invalidated entries serve mixed generations.

Entries from retired versions are deliberately **kept** (until LRU
eviction): they are the *stale tier* the admission controller's
degradation ladder falls back to under overload — "serve yesterday's
answer" beats "serve an error" for the head-entity traffic that
dominates real KG serving (Sec. 4's popularity skew).

Thread safety: one lock around the ``OrderedDict``; every public method
is safe to call from server worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.serve import context as serve_context

#: Cache key: (route, canonical request key).
CacheKey = Tuple[str, str]


class ResponseCache:
    """A bounded LRU of ``(route, key) -> (snapshot_version, payload)``."""

    def __init__(self, capacity: int = 2048):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[int, object]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stale_served = 0
        self._evictions = 0

    # ------------------------------------------------------------------

    def get(self, route: str, key: str, version: int) -> Optional[object]:
        """The cached payload if it matches ``version``, else None.

        A version mismatch is a miss (the entry survives as stale tier);
        hit/miss counters feed the ``serve.cache.*`` metrics.
        """
        cache_key = (route, key)
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is not None and entry[0] == version:
                self._entries.move_to_end(cache_key)
                self._hits += 1
                hit = True
                payload: Optional[object] = entry[1]
            else:
                self._misses += 1
                hit = False
                payload = None
            ratio = self._hit_ratio_locked()
        obs_metrics.count("serve.cache.hits" if hit else "serve.cache.misses")
        obs_metrics.gauge("serve.cache.hit_ratio", ratio)
        serve_context.tag_request("cache", "hit" if hit else "miss")
        return payload

    def get_stale(self, route: str, key: str) -> Optional[object]:
        """The cached payload *ignoring* version — the degraded-serving tier.

        Returns None when the pair was never cached (or was evicted).
        """
        with self._lock:
            entry = self._entries.get((route, key))
            if entry is None:
                return None
            self._entries.move_to_end((route, key))
            self._stale_served += 1
        obs_metrics.count("serve.cache.stale_served")
        serve_context.tag_request("cache", "stale")
        return entry[1]

    def put(self, route: str, key: str, version: int, payload: object) -> None:
        """Store a computed payload for ``version``; evicts LRU overflow."""
        cache_key = (route, key)
        with self._lock:
            self._entries[cache_key] = (version, payload)
            self._entries.move_to_end(cache_key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self._evictions += evicted
        if evicted:
            obs_metrics.count("serve.cache.evictions", evicted)

    # ------------------------------------------------------------------

    def _hit_ratio_locked(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def hit_ratio(self) -> float:
        """Fraction of version-checked reads answered from cache."""
        with self._lock:
            return self._hit_ratio_locked()

    def stats(self) -> Dict[str, object]:
        """Counters for ``/stats`` and tests."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "stale_served": self._stale_served,
                "evictions": self._evictions,
                "hit_ratio": round(self._hit_ratio_locked(), 4),
            }

    def clear(self) -> None:
        """Drop every entry (counters survive; tests reset by rebuilding)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
