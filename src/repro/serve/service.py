"""The serving facade: publish pipeline output, answer the four routes.

:class:`KGService` owns the snapshot store, response cache, admission
controller, and request router, and is what both transports (the HTTP
server and the in-process client) call into.  The module also defines
the **serving fixtures** — named recipes that build a graph (and an LM
for ``ask``) from the synthetic world or a construction pipeline — which
is what ``repro serve <ID>`` and ``repro loadgen <ID>`` publish.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.graph import KnowledgeGraph
from repro.obs import metrics as obs_metrics
from repro.obs._flags import FLAGS
from repro.obs.slo import get_slo_tracker
from repro.serve import context as serve_context
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResponseCache
from repro.serve.router import RequestRouter, RouteResponse
from repro.serve.snapshot import GraphSnapshot, SnapshotStore


class KGService:
    """Snapshot store + cache + admission + router behind one object."""

    def __init__(
        self,
        n_shards: int = 1,
        cache_capacity: int = 2048,
        admission: Optional[AdmissionController] = None,
        model=None,
        name: str = "kg",
        trace_sample: Optional[float] = None,
        access_log: Optional[serve_context.AccessLog] = None,
    ):
        self.name = name
        self.store = SnapshotStore(n_shards=n_shards)
        self.cache = ResponseCache(capacity=cache_capacity)
        self.admission = admission if admission is not None else AdmissionController()
        self.router = RequestRouter(
            self.store, cache=self.cache, admission=self.admission, model=model
        )
        #: Head-sampling rate for request traces; None defers to the
        #: REPRO_TRACE_SAMPLE environment variable (default 1%).
        self.trace_sample = trace_sample
        #: Structured JSONL access log; None (the default) writes nothing.
        self.access_log = access_log
        self.started_unix = time.time()

    # ------------------------------------------------------------------

    def publish(self, graph: KnowledgeGraph) -> GraphSnapshot:
        """Publish a new immutable snapshot (atomic swap; cache keys roll)."""
        return self.store.publish(graph)

    def publish_from_file(
        self, path: str, backend: str = "columnar"
    ) -> GraphSnapshot:
        """Boot the serving snapshot from a ``repro save`` file (no
        construction re-run, no defensive copy)."""
        return self.store.publish_from_file(path, backend=backend)

    # Route pass-throughs (the in-process "client" surface).

    def lookup(self, subject: str, predicate: str, **kwargs) -> RouteResponse:
        return self.router.lookup(subject, predicate, **kwargs)

    def paths(self, start: str, goal: str, **kwargs) -> RouteResponse:
        return self.router.paths(start, goal, **kwargs)

    def query(self, patterns, **kwargs) -> RouteResponse:
        return self.router.query(patterns, **kwargs)

    def ask(self, subject: str, predicate: str, **kwargs) -> RouteResponse:
        return self.router.ask(subject, predicate, **kwargs)

    # ------------------------------------------------------------------

    def entity_sample(self, n: int = 50, seed: int = 23) -> List[Dict[str, str]]:
        """A deterministic sample of served entities (the loadgen's vocabulary)."""
        snapshot = self.store.current()
        if snapshot is None:
            return []
        entities = list(snapshot.graph.entities())
        rng = random.Random(seed)
        if len(entities) > n:
            entities = rng.sample(entities, n)
        sample = []
        for entity in entities:
            predicates = sorted(
                {triple.predicate for triple in snapshot.graph.query(subject=entity.entity_id)}
            )
            sample.append(
                {
                    "entity_id": entity.entity_id,
                    "name": entity.name,
                    "class": entity.entity_class,
                    "predicates": predicates[:6],
                }
            )
        return sample

    def stats(self) -> Dict[str, object]:
        """Serving stats: snapshot, shards, cache, admission (``/stats``)."""
        snapshot = self.store.current()
        payload: Dict[str, object] = {
            "service": self.name,
            "snapshot": snapshot.describe() if snapshot is not None else None,
            "shards": snapshot.planner.shard_sizes() if snapshot is not None else {},
            "cache": self.cache.stats(),
            "admission": self.admission.stats(),
            "entity_sample": self.entity_sample(),
        }
        obs_metrics.gauge("serve.cache.hit_ratio", self.cache.hit_ratio())
        return payload

    def statusz(self) -> Dict[str, object]:
        """The operator's one-page health view (the ``/statusz`` payload).

        Combines identity (service name, snapshot version, uptime), the
        admission ladder's *live* degradation level, and the rolling SLO
        summary — per-route RED, error-budget burn rates, and whether any
        route is currently burning faster than its objective allows.
        """
        snapshot = self.store.current()
        return {
            "service": self.name,
            "snapshot_version": snapshot.version if snapshot is not None else 0,
            "uptime_s": round(time.time() - self.started_unix, 3),
            "degradation_level": self.admission.current_level(),
            "admission": self.admission.stats(),
            "observability_enabled": FLAGS.enabled,
            "trace_sample": (
                self.trace_sample
                if self.trace_sample is not None
                else serve_context.trace_sample_rate()
            ),
            "slo": get_slo_tracker().summary(),
        }

    def buildz(self) -> Dict[str, object]:
        """Live build progress (the ``/buildz`` payload).

        Surfaces the global :class:`~repro.obs.progress.BuildProgress`
        heartbeat — what pipeline is building, which stage it is in, and
        the current throughput/ETA — so an operator can watch a rebuild
        from the serving side without shell access to the builder.
        Inactive (or obs-off) processes report ``build: {active: false}``.
        """
        from repro.obs import progress as obs_progress

        return {
            "service": self.name,
            "observability_enabled": FLAGS.enabled,
            "build": obs_progress.get_progress().snapshot(),
        }


# ---------------------------------------------------------------------------
# Serving fixtures: named graph+LM recipes for the CLI, CI, and tests.


def _fixture_world(scale: str) -> Tuple[KnowledgeGraph, object]:
    """The synthetic ground-truth world, served directly.

    The LM trains on the world's popularity-weighted corpus, so ``ask``
    reproduces the Sec. 4 regime: familiar head entities may answer
    parametrically, torso/tail route to triples.
    """
    from repro.datagen.text import generate_text_corpus
    from repro.datagen.world import WorldConfig, build_world
    from repro.neural.slm import SimulatedLM

    if scale == "quick":
        config = WorldConfig(n_people=60, n_movies=40, n_songs=20, seed=7)
        n_sentences = 1500
    else:
        config = WorldConfig(n_people=120, n_movies=80, n_songs=40, seed=7)
        n_sentences = 4000
    world = build_world(config)
    corpus = generate_text_corpus(
        world, n_sentences=n_sentences, noise_rate=0.15, popularity_weighted=True, seed=15
    )
    model = SimulatedLM(seed=16).fit(corpus)
    return world.truth, model


def _fixture_fig4a(scale: str) -> Tuple[KnowledgeGraph, object]:
    """The Fig. 4(a) entity-based construction pipeline's output graph."""
    from repro.datagen.text import generate_text_corpus
    from repro.datagen.world import WorldConfig, build_world
    from repro.evalx.architectures import build_entity_based_kg
    from repro.neural.slm import SimulatedLM

    if scale == "quick":
        config = WorldConfig(n_people=60, n_movies=40, n_songs=20, seed=7)
        label_budget, n_sites, pages = 120, 2, 8
    else:
        config = WorldConfig(n_people=120, n_movies=80, n_songs=40, seed=7)
        label_budget, n_sites, pages = 200, 2, 10
    world = build_world(config)
    context = build_entity_based_kg(
        world, label_budget=label_budget, n_sites=n_sites, pages_per_site=pages
    )
    corpus = generate_text_corpus(
        world, n_sentences=2000, noise_rate=0.15, popularity_weighted=True, seed=15
    )
    model = SimulatedLM(seed=16).fit(corpus)
    return context.require("kg"), model


#: Fixture id -> builder returning ``(graph, model)``.
SERVE_FIXTURES: Dict[str, Callable[[str], Tuple[KnowledgeGraph, object]]] = {
    "WORLD": _fixture_world,
    "FIG4A": _fixture_fig4a,
}


def build_fixture_service(
    fixture_id: str,
    n_shards: int = 1,
    scale: str = "full",
    with_lm: bool = True,
    admission: Optional[AdmissionController] = None,
    cache_capacity: int = 2048,
) -> KGService:
    """Build, publish, and return a service for a named fixture.

    ``scale`` is ``"full"`` or ``"quick"`` (CI smoke); ``with_lm=False``
    drops the LM so ``ask`` runs KG-only (cheaper, fully deterministic).
    """
    fixture_id = fixture_id.upper()
    builder = SERVE_FIXTURES.get(fixture_id)
    if builder is None:
        raise KeyError(
            f"unknown serve fixture {fixture_id!r}; "
            f"available: {', '.join(sorted(SERVE_FIXTURES))}"
        )
    graph, model = builder(scale)
    service = KGService(
        n_shards=n_shards,
        cache_capacity=cache_capacity,
        admission=admission,
        model=model if with_lm else None,
        name=f"serve.{fixture_id.lower()}",
    )
    service.publish(graph)
    return service
