"""Admission control: rate limiting, bounded queues, deadlines, degradation.

A serving system dies two ways under overload: it queues without bound
(latency collapse) or it errors without discrimination (availability
collapse).  This module implements the third option the ISSUE calls the
*degradation ladder* — keep answering, shedding the expensive work first:

* **level 0 (normal)** — full service, ``ask`` may take the LM path;
* **level 1 (lm_shed)** — the token bucket is draining faster than it
  refills; ``ask`` sheds its LM/RAG path and answers from triples only
  (the cheap, grounded path — exactly the Sec. 4 head/tail routing
  argument run in reverse: under pressure, *everything* routes to the KG);
* **level 2 (stale)** — the bucket is empty; requests are served from
  the stale cache tier when possible, and computed KG-only otherwise;
* **reject** — the bounded concurrency queue is full; the request is
  refused up front (a 429-equivalent, never a 5xx) so waiting work
  cannot pile up behind a saturated worker pool.

All counters land in the ``serve.admission.*`` / ``serve.shed.*``
metrics, which is how the loadgen harness and ``repro report`` make the
ladder visible.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.serve import context as serve_context

#: Ladder levels (ordered: higher sheds more).
LEVEL_NORMAL = 0
LEVEL_LM_SHED = 1
LEVEL_STALE = 2

LEVEL_NAMES = {LEVEL_NORMAL: "normal", LEVEL_LM_SHED: "lm_shed", LEVEL_STALE: "stale"}


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s refill, ``capacity`` burst.

    ``try_acquire`` never blocks — admission control must answer *now* —
    and ``fill_fraction`` exposes how close to saturation the bucket is,
    which is what picks the degradation level.  Thread-safe.
    """

    def __init__(self, rate: float, capacity: Optional[float] = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.capacity = float(capacity) if capacity is not None else float(rate)
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        self._lock = threading.Lock()
        self._tokens = self.capacity
        self._last_refill = time.monotonic()

    def _refill_locked(self) -> None:
        now = time.monotonic()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last_refill = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; False (no wait) otherwise."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def fill_fraction(self) -> float:
        """Current tokens as a fraction of capacity, in [0, 1]."""
        with self._lock:
            self._refill_locked()
            return self._tokens / self.capacity


class Deadline:
    """A per-request deadline: created at admission, checked at checkpoints.

    ``None``/non-positive timeouts mean "no deadline".  The router checks
    ``expired()`` before each expensive phase (LM path, path search) and
    degrades instead of running work whose caller has already given up.
    """

    __slots__ = ("expires_at",)

    def __init__(self, timeout_s: Optional[float] = None):
        self.expires_at = (
            time.monotonic() + timeout_s if timeout_s is not None and timeout_s > 0 else None
        )

    def expired(self) -> bool:
        return self.expires_at is not None and time.monotonic() >= self.expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left, or None when no deadline was set."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - time.monotonic())


@dataclass(frozen=True)
class AdmissionDecision:
    """What the controller decided for one request."""

    admitted: bool
    level: int
    reason: str

    @property
    def level_name(self) -> str:
        return LEVEL_NAMES.get(self.level, str(self.level))

    @property
    def shed_lm(self) -> bool:
        """Whether the LM path must be shed at this level."""
        return self.level >= LEVEL_LM_SHED

    @property
    def prefer_stale(self) -> bool:
        """Whether stale-cache serving is preferred at this level."""
        return self.level >= LEVEL_STALE


class AdmissionController:
    """Token bucket + bounded concurrency + the degradation ladder.

    ``admit()`` must be paired with ``release()`` (the router does this in
    a ``finally``) so the concurrency slots actually bound in-flight work.
    """

    def __init__(
        self,
        rate: float = 500.0,
        burst: Optional[float] = None,
        max_concurrent: int = 64,
        lm_shed_fill: float = 0.5,
        stale_fill: float = 0.15,
        default_timeout_s: Optional[float] = 2.0,
    ):
        if not 0.0 <= stale_fill <= lm_shed_fill <= 1.0:
            raise ValueError(
                f"need 0 <= stale_fill <= lm_shed_fill <= 1, "
                f"got stale_fill={stale_fill}, lm_shed_fill={lm_shed_fill}"
            )
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.bucket = TokenBucket(rate=rate, capacity=burst)
        self.max_concurrent = max_concurrent
        self.lm_shed_fill = lm_shed_fill
        self.stale_fill = stale_fill
        self.default_timeout_s = default_timeout_s
        self._slots = threading.Semaphore(max_concurrent)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._rejected = 0
        self._degraded: Dict[int, int] = {LEVEL_LM_SHED: 0, LEVEL_STALE: 0}

    # ------------------------------------------------------------------

    def admit(self, route: str) -> AdmissionDecision:
        """Decide for one request; pair with :meth:`release` when admitted.

        The queue bound is checked first (a full pool rejects regardless
        of tokens), then the bucket's fill picks the ladder level.  An
        empty bucket still *admits* — at level 2 — because shedding to
        stale answers is the whole point of the ladder; only queue
        exhaustion refuses outright.
        """
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self._rejected += 1
            obs_metrics.count("serve.admission.rejected")
            obs_metrics.count(f"serve.route.{route}.rejected")
            serve_context.tag_request("admission.level", "rejected")
            serve_context.tag_request("admission.reason", "queue_full")
            return AdmissionDecision(admitted=False, level=LEVEL_STALE, reason="queue_full")
        with self._lock:
            self._in_flight += 1
            in_flight = self._in_flight
        obs_metrics.gauge("serve.admission.in_flight", in_flight)

        has_token = self.bucket.try_acquire()
        fill = self.bucket.fill_fraction()
        if not has_token or fill < self.stale_fill:
            level, reason = LEVEL_STALE, ("no_tokens" if not has_token else "bucket_low")
        elif fill < self.lm_shed_fill:
            level, reason = LEVEL_LM_SHED, "bucket_draining"
        else:
            level, reason = LEVEL_NORMAL, "ok"
        if level > LEVEL_NORMAL:
            with self._lock:
                self._degraded[level] = self._degraded.get(level, 0) + 1
            obs_metrics.count(f"serve.admission.degraded.{LEVEL_NAMES[level]}")
        obs_metrics.count("serve.admission.admitted")
        serve_context.tag_request("admission.level", LEVEL_NAMES[level])
        serve_context.tag_request("admission.reason", reason)
        return AdmissionDecision(admitted=True, level=level, reason=reason)

    def release(self) -> None:
        """Return the concurrency slot taken by an admitted request."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            in_flight = self._in_flight
        self._slots.release()
        obs_metrics.gauge("serve.admission.in_flight", in_flight)

    def deadline(self, timeout_s: Optional[float] = None) -> Deadline:
        """A request deadline (explicit timeout wins over the default)."""
        return Deadline(timeout_s if timeout_s is not None else self.default_timeout_s)

    def current_level(self) -> str:
        """The ladder level the *next* request would be admitted at.

        Read-only (no token is consumed): ``/statusz`` polls this to show
        the live degradation level without perturbing admission.
        """
        fill = self.bucket.fill_fraction()
        if fill < self.stale_fill:
            return LEVEL_NAMES[LEVEL_STALE]
        if fill < self.lm_shed_fill:
            return LEVEL_NAMES[LEVEL_LM_SHED]
        return LEVEL_NAMES[LEVEL_NORMAL]

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Counters for ``/stats`` and tests."""
        with self._lock:
            return {
                "in_flight": self._in_flight,
                "max_concurrent": self.max_concurrent,
                "rejected": self._rejected,
                "degraded_lm_shed": self._degraded.get(LEVEL_LM_SHED, 0),
                "degraded_stale": self._degraded.get(LEVEL_STALE, 0),
                "bucket_fill": round(self.bucket.fill_fraction(), 4),
            }
