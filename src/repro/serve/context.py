"""Request-scoped observability: ids, propagation, sampling, access logs.

Every serving request gets a :class:`RequestContext` at the transport
edge — the HTTP handler reads (or mints) an ``X-Repro-Request-Id``
header, the in-process client mints one per call — and the context rides
a :mod:`contextvars` variable through admission, the cache, the router,
and the scatter/gather planner, so every layer can tag the *same* request
without threading arguments through the stack.

Tracing is **per request**: spans opened inside a request scope land in a
private buffer on the context (not the global tracer's thread-local
stack, which cannot follow a request across the shard fan-out's pool
threads).  When the request finishes, the buffered tree is flushed to
the process-global :class:`~repro.obs.tracing.Tracer` — in the exact
JSONL span format the rest of the stack already exports — iff the
request was *sampled*:

* **head-based sampling** — the keep/drop decision is drawn when the
  context is created, at the rate given by ``REPRO_TRACE_SAMPLE``
  (default 0.01, i.e. 1% of requests);
* **always-sample on shed/error** — a request that ends shed (429) or
  errored (5xx) is flushed regardless of the head decision, so the
  traces an operator actually needs are never the ones sampling dropped.

Span buffering (like all observability here) is active only under
``REPRO_OBS=1``; the disabled path costs one flag check per call site.
The structured access log (:class:`AccessLog`) is off by default and
writes one JSON line per sampled request — again keeping every shed or
errored request regardless of its sample draw.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, TextIO

from repro.obs._flags import FLAGS
from repro.obs.tracing import NULL_SPAN, Span, get_tracer, span as tracer_span

#: The header carrying the request id in and out of the HTTP transport.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Environment variable holding the head-based trace sample rate.
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

#: Default fraction of requests whose span tree is kept.
DEFAULT_TRACE_SAMPLE = 0.01

#: Statuses that force-sample a request regardless of the head decision.
ALWAYS_SAMPLE_STATUSES = ("shed", "error")

# One module-level RNG for sample draws; request volume makes per-request
# seeding pointless and the GIL makes Random.random() safe to share.
_SAMPLE_RNG = random.Random()

# Request ids are a per-process random prefix plus an atomic counter:
# unique within any realistic deployment window and ~20x cheaper than
# uuid4 (which pays a urandom syscall per request — measurable on a
# serving path whose p50 is tens of microseconds).
_ID_PREFIX = f"{random.getrandbits(40):010x}"
_ID_COUNTER = itertools.count(1)


def trace_sample_rate() -> float:
    """The configured head-sampling rate, clamped to [0, 1]."""
    raw = os.environ.get(TRACE_SAMPLE_ENV, "")
    try:
        rate = float(raw) if raw else DEFAULT_TRACE_SAMPLE
    except ValueError:
        rate = DEFAULT_TRACE_SAMPLE
    return min(1.0, max(0.0, rate))


def new_request_id() -> str:
    """A fresh request id (hex, header- and filename-safe)."""
    return f"req-{_ID_PREFIX}{next(_ID_COUNTER):06x}"


class RequestContext:
    """One serving request's identity, labels, deadline, and span buffer.

    Thread-safe where it must be: the shard fan-out records child spans
    from pool threads, so the span buffer and id counter are locked.
    ``labels`` is the tenant-ready label set — today it carries the
    route (and whatever the transport adds); the multi-tenant roadmap
    item will add ``tenant`` without touching any consumer.
    """

    __slots__ = (
        "request_id",
        "route",
        "labels",
        "tags",
        "timeout_s",
        "started_unix",
        "started_monotonic",
        "sampled",
        "forced",
        "status",
        "http_status",
        "root",
        "_lock",
        "_spans",
        "_next_span",
        "_flushed",
    )

    def __init__(
        self,
        route: str,
        request_id: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        timeout_s: Optional[float] = None,
        sample_rate: Optional[float] = None,
    ):
        self.request_id = request_id or new_request_id()
        self.route = route
        self.labels: Dict[str, str] = {"route": route}
        if labels:
            self.labels.update(labels)
        self.timeout_s = timeout_s
        # Root-span tags buffered as a plain dict: layers tag the request
        # unconditionally (GIL-atomic dict store, no branch, no lock) and
        # the scope merges them into the root span only when the trace is
        # kept.
        self.tags: Dict[str, object] = {}
        self.started_unix = time.time()
        self.started_monotonic = time.monotonic()
        rate = sample_rate if sample_rate is not None else trace_sample_rate()
        self.sampled = bool(rate >= 1.0 or (rate > 0.0 and _SAMPLE_RNG.random() < rate))
        self.forced = False
        self.status: Optional[str] = None
        self.http_status: int = 0
        self.root: Span = NULL_SPAN
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_span = 0
        self._flushed = False

    # ---- span buffer (the per-request trace) --------------------------

    def new_span(self, name: str, parent_id: Optional[str], **tags: object) -> Span:
        """Open a span in this request's trace; caller must :meth:`record` it."""
        with self._lock:
            self._next_span += 1
            span_id = f"{self.request_id}.s{self._next_span}"
        return Span(
            name=name,
            span_id=span_id,
            trace_id=self.request_id,
            parent_id=parent_id,
            started_unix=time.time(),
            tags=dict(tags),
        )

    def record(self, span_: Span, wall_seconds: float, cpu_seconds: float) -> None:
        """Close a span opened by :meth:`new_span` into the request buffer."""
        span_.wall_seconds = wall_seconds
        span_.cpu_seconds = cpu_seconds
        with self._lock:
            self._spans.append(span_)

    def spans(self) -> List[Span]:
        """The buffered spans recorded so far (completion order)."""
        with self._lock:
            return list(self._spans)

    def force_sample(self) -> None:
        """Keep this request's trace regardless of the head decision."""
        self.forced = True

    @property
    def keep_trace(self) -> bool:
        return self.sampled or self.forced

    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.started_monotonic) * 1000.0

    # ---- finishing ----------------------------------------------------

    def finish(self, status: Optional[str] = None, http_status: Optional[int] = None) -> None:
        """Record the outcome and flush the span tree if the request is kept.

        Idempotent: the request scope calls it on exit, but an edge that
        already knows the outcome may call it earlier with the real
        status codes.
        """
        if status is not None:
            self.status = status
        if http_status is not None:
            self.http_status = http_status
        if self.status in ALWAYS_SAMPLE_STATUSES or self.http_status >= 500:
            self.forced = True
        if self._flushed or not FLAGS.enabled:
            return
        self._flushed = True
        if self.keep_trace:
            get_tracer().record_finished(self.spans())


# ---------------------------------------------------------------------------
# contextvar propagation

_CONTEXT: "contextvars.ContextVar[Optional[RequestContext]]" = contextvars.ContextVar(
    "repro_request_context", default=None
)
_ACTIVE_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_request_span", default=None
)


def current_context() -> Optional[RequestContext]:
    """The request context active on this logical thread of control."""
    return _CONTEXT.get()


def current_request_span() -> Optional[Span]:
    """The innermost open request span (the parent for new children)."""
    return _ACTIVE_SPAN.get()


@contextmanager
def use_context(
    context: Optional[RequestContext], parent_span: Optional[Span] = None
) -> Iterator[None]:
    """Adopt ``context`` (and its active span) on the current thread.

    The shard fan-out runs per-shard probes on pool threads where
    contextvars do not propagate; workers wrap their body in
    ``use_context(ctx, parent)`` so child spans still join the request's
    tree.
    """
    context_token = _CONTEXT.set(context)
    span_token = _ACTIVE_SPAN.set(parent_span)
    try:
        yield
    finally:
        _ACTIVE_SPAN.reset(span_token)
        _CONTEXT.reset(context_token)


def tag_request(key: str, value: object) -> None:
    """Tag the active request's root span (no-op outside a request scope).

    Tags land in the context's buffered tag dict — kept for every request
    (they also feed the forced shed/error trace) and merged onto the root
    span at flush time.
    """
    context = _CONTEXT.get()
    if context is not None:
        context.tags[key] = value


@contextmanager
def request_span(name: str, **tags: object) -> Iterator[Span]:
    """A span in the active request's trace (its buffer, not the tracer).

    Outside a request scope this degrades to the plain
    :func:`repro.obs.tracing.span`, so instrumented serve code keeps
    producing spans when the router is driven directly (tests, traced
    workloads that bypass the clients).  Disabled observability yields
    the shared null span either way.

    Head sampling is applied *here*, not just at flush time: a request
    the head decision dropped buffers only its root span, so the common
    unsampled request pays one flag check per instrumentation point —
    that is what keeps the obs-on p95 overhead under the 5% gate.  The
    cost: a request force-kept late (a 5xx) flushes its root span and
    tags but not child spans.  Shed requests lose nothing — they are
    rejected at admission before any child span would open.
    """
    context = _CONTEXT.get()
    if context is None:
        with tracer_span(name, **tags) as span_:
            yield span_
        return
    if not FLAGS.enabled or not context.keep_trace:
        yield NULL_SPAN
        return
    parent = _ACTIVE_SPAN.get()
    opened = context.new_span(
        name, parent.span_id if parent is not None else None, **tags
    )
    token = _ACTIVE_SPAN.set(opened)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield opened
    except BaseException as exc:
        opened.set_tag("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _ACTIVE_SPAN.reset(token)
        context.record(
            opened,
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
        )


@contextmanager
def shard_span(
    context: Optional[RequestContext],
    parent: Optional[Span],
    name: str,
    **tags: object,
) -> Iterator[Span]:
    """A child span recorded from a worker thread with explicit parentage.

    Pool threads cannot read the request contextvars, so the scatter
    paths capture ``(context, parent)`` before fanning out and hand them
    to each probe.  Falls back to a plain tracer span (or the null span)
    exactly like :func:`request_span`.
    """
    if context is None or not FLAGS.enabled:
        if context is None and FLAGS.enabled:
            with tracer_span(name, **tags) as span_:
                yield span_
        else:
            yield NULL_SPAN
        return
    if not context.keep_trace:
        yield NULL_SPAN
        return
    with use_context(context, parent):
        with request_span(name, **tags) as span_:
            yield span_


class request_scope:
    """The transport edge's bracket: create, propagate, finish one request.

    Opens the root ``serve.request`` span, installs the context for the
    duration of the block, and on exit finishes the root span, applies
    the sampling decision (flushing the tree to the global tracer when
    kept), and writes the access-log line.  **Reentrant**: when a scope
    is already active (an in-process client called from inside another
    request) the existing context is yielded untouched.

    A hand-rolled context manager rather than ``@contextmanager``: this
    brackets every single serving request, and the generator protocol's
    per-``with`` overhead is real money against a tens-of-microseconds
    request path.
    """

    __slots__ = (
        "_route",
        "_request_id",
        "_labels",
        "_timeout_s",
        "_sample_rate",
        "_access_log",
        "_context",
        "_reentrant",
        "_context_token",
        "_span_token",
        "_wall_start",
        "_cpu_start",
    )

    def __init__(
        self,
        route: str,
        request_id: Optional[str] = None,
        labels: Optional[Dict[str, str]] = None,
        timeout_s: Optional[float] = None,
        sample_rate: Optional[float] = None,
        access_log: Optional["AccessLog"] = None,
    ):
        self._route = route
        self._request_id = request_id
        self._labels = labels
        self._timeout_s = timeout_s
        self._sample_rate = sample_rate
        self._access_log = access_log
        self._reentrant = False

    def __enter__(self) -> RequestContext:
        existing = _CONTEXT.get()
        if existing is not None:
            self._reentrant = True
            self._context = existing
            return existing
        context = RequestContext(
            self._route,
            request_id=self._request_id,
            labels=self._labels,
            timeout_s=self._timeout_s,
            sample_rate=self._sample_rate,
        )
        if FLAGS.enabled and context.sampled:
            # Lazy elsewhere: an unsampled request allocates no Span at
            # all unless it ends shed/errored (synthesized in __exit__).
            context.root = context.new_span(
                "serve.request", None, route=self._route, request_id=context.request_id
            )
        self._context = context
        self._context_token = _CONTEXT.set(context)
        self._span_token = _ACTIVE_SPAN.set(
            context.root if context.root is not NULL_SPAN else None
        )
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        return context

    def __exit__(self, exc_type, exc, tb) -> bool:
        context = self._context
        if self._reentrant:
            return False
        if exc is not None:
            context.status = context.status or "error"
            context.tags["error"] = f"{exc_type.__name__}: {exc}"
        _ACTIVE_SPAN.reset(self._span_token)
        _CONTEXT.reset(self._context_token)
        if FLAGS.enabled:
            forced = (
                context.forced
                or context.status in ALWAYS_SAMPLE_STATUSES
                or context.http_status >= 500
            )
            if context.root is NULL_SPAN and forced:
                # The head decision dropped this request but its outcome
                # forces a keep: synthesize the root (children are gone,
                # the tags and timing are not).
                context.root = context.new_span(
                    "serve.request",
                    None,
                    route=self._route,
                    request_id=context.request_id,
                )
                context.root.started_unix = context.started_unix
            if context.root is not NULL_SPAN:
                context.root.tags.update(context.tags)
                context.root.set_tag("status", context.status)
                context.root.set_tag("http_status", context.http_status)
                context.record(
                    context.root,
                    wall_seconds=time.perf_counter() - self._wall_start,
                    cpu_seconds=time.process_time() - self._cpu_start,
                )
        context.finish()
        if self._access_log is not None:
            self._access_log.record(context)
        return False


# ---------------------------------------------------------------------------
# structured access logs


class AccessLog:
    """Sampled JSONL access log: one object per logged request.

    Off by default — the server only writes it when constructed with a
    path (``repro serve --access-log``).  ``sample`` keeps that fraction
    of OK traffic; shed and errored requests are always logged (the same
    skew as trace sampling: the boring requests are the droppable ones).
    Thread-safe; lines are flushed per write so a live ``tail -f`` (and
    the CI artifact upload) sees them immediately.
    """

    def __init__(self, path: str, sample: float = 1.0):
        self.path = path
        self.sample = min(1.0, max(0.0, sample))
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        self._n_written = 0

    def _should_log(self, context: RequestContext) -> bool:
        if context.status in ALWAYS_SAMPLE_STATUSES or context.http_status >= 500:
            return True
        if self.sample >= 1.0:
            return True
        return self.sample > 0.0 and _SAMPLE_RNG.random() < self.sample

    def record(self, context: RequestContext) -> None:
        """Write one line for ``context`` if it passes the log sample."""
        if not self._should_log(context):
            return
        line = json.dumps(
            {
                "ts": round(context.started_unix, 6),
                "request_id": context.request_id,
                "route": context.route,
                "status": context.status,
                "http_status": context.http_status,
                "latency_ms": round(context.elapsed_ms(), 3),
                "labels": context.labels,
                "sampled_trace": context.keep_trace,
            },
            sort_keys=True,
        )
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            self._n_written += 1

    @property
    def n_written(self) -> int:
        with self._lock:
            return self._n_written

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
