"""Versioned, immutable graph snapshots with atomic publish/swap.

Construction pipelines mutate a :class:`~repro.core.graph.KnowledgeGraph`
in place — linkage merges rewrite subjects, fusion drops triples.  An
online service cannot read that moving target: a query must see one
consistent graph from its first index probe to its last.  The snapshot
layer separates the two worlds:

* :meth:`SnapshotStore.publish` deep-copies the construction graph (so
  later ``merge_entities`` / ``add_triple`` calls never leak into served
  answers), builds the shard replicas, and installs the result as the
  *current* snapshot with a single reference swap under a lock;
* a request takes one ``store.current()`` reference up front and runs
  entirely against it — in-flight requests finish on the old generation
  while new requests see the new one, with no read locks at all;
* every snapshot carries a monotonically increasing ``version`` plus the
  source graph's mutation ``generation`` (the counter
  :class:`~repro.core.graph.KnowledgeGraph` already maintains), which is
  what keys cache invalidation in :mod:`repro.serve.cache`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.core.graph import KnowledgeGraph
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import span as obs_span
from repro.serve.shard import ScatterGatherPlanner, build_shards


class GraphSnapshot:
    """One published, immutable generation of the serving graph.

    Holds a private copy of the source graph (readers never observe
    construction mutations), the subject-hash shard replicas, and the
    scatter/gather planner the router queries through.  Snapshots are
    never mutated after construction; the store only ever swaps whole
    snapshot references.
    """

    def __init__(
        self,
        version: int,
        graph: KnowledgeGraph,
        n_shards: int = 1,
        source_generation: Optional[int] = None,
    ):
        self.version = version
        self.source_generation = (
            source_generation if source_generation is not None else graph.generation
        )
        self.published_unix = time.time()
        self.graph = graph
        self.shards = build_shards(graph, n_shards)
        self.planner = ScatterGatherPlanner(self.shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def describe(self) -> Dict[str, object]:
        """JSON-serializable snapshot metadata (the ``/stats`` payload)."""
        stats = self.graph.stats()
        return {
            "version": self.version,
            "source_generation": self.source_generation,
            "published_unix": round(self.published_unix, 3),
            "n_shards": self.n_shards,
            "n_entities": stats["n_entities"],
            "n_triples": stats["n_triples"],
        }


class SnapshotStore:
    """Holds the current snapshot and performs atomic publishes.

    The expensive work of a publish (graph copy, shard builds) happens
    *outside* the lock; only the final reference swap is serialized, so
    readers are never blocked by a publish and a half-built snapshot is
    never observable.  A bounded history of previous snapshots is kept so
    tests (and debugging) can reach recently retired generations.
    """

    def __init__(self, n_shards: int = 1, keep_history: int = 3):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self._keep_history = max(0, keep_history)
        self._lock = threading.Lock()
        self._current: Optional[GraphSnapshot] = None
        self._history: List[GraphSnapshot] = []
        self._next_version = 0

    def publish(self, graph: KnowledgeGraph, copy: bool = True) -> GraphSnapshot:
        """Copy ``graph``, build shards, and atomically install the result.

        The copy is taken eagerly, so construction code is free to keep
        mutating ``graph`` the moment this returns (or concurrently — the
        caller must simply not mutate *during* the copy).  ``copy=False``
        adopts ``graph`` directly — only for graphs nothing else will
        mutate, e.g. one freshly loaded from a snapshot file.
        """
        started = time.perf_counter()
        with obs_span("serve.snapshot.publish", n_shards=self.n_shards) as span_:
            source_generation = graph.generation
            frozen = graph.copy() if copy else graph
            with self._lock:
                self._next_version += 1
                version = self._next_version
            snapshot = GraphSnapshot(
                version=version,
                graph=frozen,
                n_shards=self.n_shards,
                source_generation=source_generation,
            )
            with self._lock:
                if self._current is not None:
                    self._history.append(self._current)
                    if len(self._history) > self._keep_history:
                        self._history = self._history[-self._keep_history :]
                self._current = snapshot
            span_.set_tag("version", snapshot.version)
        obs_metrics.count("serve.snapshot.publishes")
        obs_metrics.gauge("serve.snapshot.version", snapshot.version)
        obs_metrics.gauge("serve.snapshot.n_triples", len(frozen))
        obs_metrics.observe(
            "serve.snapshot.publish_seconds", time.perf_counter() - started
        )
        return snapshot

    def publish_from_file(
        self, path: str, backend: str = "columnar"
    ) -> GraphSnapshot:
        """Boot the serving snapshot from a binary snapshot file.

        This is the restart-free path: ``repro save`` persists a built
        graph, and a fresh server process installs it here without
        re-running construction.  The loaded graph is adopted without a
        defensive copy (nothing else holds a reference to it).
        """
        from repro.core import codec  # local import: codec pulls in graph

        started = time.perf_counter()
        graph = codec.load_graph(path, backend=backend)
        obs_metrics.observe(
            "serve.snapshot.load_seconds", time.perf_counter() - started
        )
        obs_metrics.count("serve.snapshot.file_boots")
        return self.publish(graph, copy=False)

    def current(self) -> Optional[GraphSnapshot]:
        """The live snapshot reference (None before the first publish).

        Callers hold the returned reference for the whole request; a
        concurrent publish swaps the store pointer but never touches
        snapshots already handed out.
        """
        with self._lock:
            return self._current

    def current_version(self) -> int:
        """The live snapshot's version, 0 before the first publish."""
        snapshot = self.current()
        return snapshot.version if snapshot is not None else 0

    def history(self) -> List[GraphSnapshot]:
        """Recently retired snapshots, oldest first."""
        with self._lock:
            return list(self._history)
