"""``repro.serve`` — the online KG serving layer (the *ubiquity* stage).

The paper's innovation cycle ends with KGs that "support a wide range of
applications, from web search to personal assistant" (Sec. 5); Sec. 4
routes user questions between KG triples and LM parameters at answer
time.  Everything before this package *builds* graphs; this package
answers queries under load:

* :mod:`repro.serve.snapshot` — versioned, immutable snapshots published
  from construction runs, swapped atomically;
* :mod:`repro.serve.shard` — subject-hash sharded read replicas with a
  scatter/gather planner over lookups, path queries, and conjunctive
  queries;
* :mod:`repro.serve.cache` — a read-through LRU response cache keyed by
  snapshot version (publishing invalidates; stale entries survive for
  degraded serving);
* :mod:`repro.serve.admission` — token-bucket rate limiting, a bounded
  concurrency queue, per-request deadlines, and the degradation ladder;
* :mod:`repro.serve.router` — the request router exposing ``lookup`` /
  ``paths`` / ``query`` / ``ask``;
* :mod:`repro.serve.service` — the facade tying it together, plus the
  pipeline fixtures ``repro serve`` can publish;
* :mod:`repro.serve.server` — a stdlib ``ThreadingHTTPServer`` JSON API
  and an in-process client with identical response shapes.
"""

from repro.serve.admission import AdmissionController, Deadline, TokenBucket
from repro.serve.cache import ResponseCache
from repro.serve.router import RequestRouter, RouteResponse
from repro.serve.service import KGService, build_fixture_service
from repro.serve.shard import ScatterGatherPlanner, build_shards, shard_of
from repro.serve.snapshot import GraphSnapshot, SnapshotStore

__all__ = [
    "AdmissionController",
    "Deadline",
    "GraphSnapshot",
    "KGService",
    "RequestRouter",
    "ResponseCache",
    "RouteResponse",
    "ScatterGatherPlanner",
    "SnapshotStore",
    "TokenBucket",
    "build_fixture_service",
    "build_shards",
    "shard_of",
]
