"""Subject-hash sharded read replicas and the scatter/gather planner.

A snapshot's triples are partitioned across ``N`` replica graphs by a
stable hash of the triple's subject (``crc32``, so the placement is
deterministic across processes and runs).  Entity records are small and
every query path needs them (name resolution, entity-object checks in
``neighbors``), so *entities are replicated to every shard* while triples
live on exactly one — the classic "partition the edges, replicate the
vertex directory" layout.

The :class:`ScatterGatherPlanner` answers the same queries
:mod:`repro.core.query` answers over one graph, with identical results
regardless of shard count (the shard-invariance tests pin this):

* **lookup** — subject-bound reads route to the single owning shard;
* **pattern scatter** — an unbound pattern fans out to every shard; the
  gathered triples are merged and re-sorted, so downstream consumers see
  exactly the ordering a single-graph ``query()`` produces;
* **conjunctive queries** — the same most-selective-first join as
  :func:`repro.core.query.conjunctive_query`, with per-pattern
  cardinality summed across shards (exact, because each triple lives on
  one shard);
* **path queries** — the planner exposes ``has_entity``/``neighbors``
  (incoming and outgoing edges gathered across shards), so
  :class:`repro.core.query.PathQuery` runs against the planner unchanged.

Fan-out goes through :func:`repro.core.parallel.pmap`, so the per-shard
work can be flipped to a thread pool process-wide (``REPRO_PMAP_MODE=
thread``) without touching call sites.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.graph import Entity, KnowledgeGraph
from repro.core.parallel import pmap
from repro.core.query import (
    Binding,
    PathQuery,
    TriplePattern,
    is_variable,
)
from repro.core.triple import Triple, Value
from repro.serve import context as serve_context


def shard_of(subject: str, n_shards: int) -> int:
    """The shard index owning ``subject`` (stable across processes)."""
    if n_shards <= 1:
        return 0
    return zlib.crc32(subject.encode("utf-8")) % n_shards


def build_shards(graph: KnowledgeGraph, n_shards: int) -> List[KnowledgeGraph]:
    """Partition ``graph`` into subject-hash shard replicas.

    With one shard the graph itself is returned (the snapshot layer
    already owns a private copy, so no second copy is needed).  Shards
    carry entities (replicated) and triples (partitioned); provenance
    stays on the snapshot's full graph — serving reads never consult it.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards == 1:
        return [graph]
    shards = [
        KnowledgeGraph(
            ontology=graph.ontology,
            name=f"{graph.name}.shard{index}",
            backend=graph.backend,
        )
        for index in range(n_shards)
    ]
    for entity in graph.entities():
        for shard in shards:
            shard.add_entity(
                entity.entity_id, entity.name, entity.entity_class, aliases=entity.aliases
            )
    batches: List[List[Triple]] = [[] for _ in range(n_shards)]
    for triple in graph.triples():
        batches[shard_of(triple.subject, n_shards)].append(triple)
    for shard, batch in zip(shards, batches):
        shard.add_triples_batch(batch)
    return shards


class ScatterGatherPlanner:
    """Query planner over shard replicas with single-graph semantics.

    Duck-types the slice of the :class:`~repro.core.graph.KnowledgeGraph`
    API the query layer and :class:`repro.neural.qa.KGQA` consume
    (``has_entity`` / ``entity`` / ``find_by_name`` / ``objects`` /
    ``neighbors``), so existing consumers run against shards unchanged.
    """

    def __init__(self, shards: Sequence[KnowledgeGraph]):
        if not shards:
            raise ValueError("planner needs at least one shard")
        self.shards = list(shards)
        self.n_shards = len(self.shards)

    # ------------------------------------------------------------------
    # entity directory (replicated on every shard; shard 0 answers)

    def has_entity(self, entity_id: str) -> bool:
        return self.shards[0].has_entity(entity_id)

    def entity(self, entity_id: str) -> Entity:
        return self.shards[0].entity(entity_id)

    def find_by_name(self, name: str) -> List[Entity]:
        return self.shards[0].find_by_name(name)

    # ------------------------------------------------------------------
    # single-shard routed reads

    def owning_shard(self, subject: str) -> KnowledgeGraph:
        """The replica owning ``subject``'s triples."""
        return self.shards[shard_of(subject, self.n_shards)]

    def objects(self, subject: str, predicate: str) -> List[Value]:
        """All objects of ``(subject, predicate, ?)`` — one shard probe."""
        return self.owning_shard(subject).objects(subject, predicate)

    def lookup(self, subject: str, predicate: str) -> List[Value]:
        """Alias of :meth:`objects`; the ``lookup`` endpoint's engine."""
        return self.objects(subject, predicate)

    # ------------------------------------------------------------------
    # scatter/gather reads

    def query(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[Value] = None,
    ) -> List[Triple]:
        """Triple-pattern match with single-graph result ordering.

        A bound subject routes to its owning shard; anything else
        scatters, gathers, and re-sorts (each triple lives on exactly one
        shard, so the merged list *is* the single-graph answer).
        """
        if subject is not None:
            return self.owning_shard(subject).query(
                subject=subject, predicate=predicate, obj=obj
            )
        # Capture the request context *before* fanning out: pmap's pool
        # threads cannot see the contextvars, so each probe gets explicit
        # (context, parent) and its child span still joins the request tree.
        context = serve_context.current_context()
        parent = serve_context.current_request_span()

        def probe(indexed: Tuple[int, KnowledgeGraph]) -> List[Triple]:
            index, shard = indexed
            with serve_context.shard_span(
                context, parent, "serve.shard.query", shard=index
            ) as span_:
                rows = shard.query(subject=None, predicate=predicate, obj=obj)
                span_.set_tag("rows", len(rows))
                return rows

        per_shard = pmap(probe, list(enumerate(self.shards)))
        gathered: List[Triple] = []
        for rows in per_shard:
            gathered.extend(rows)
        gathered.sort()
        return gathered

    def pattern_cardinality(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[Value] = None,
    ) -> int:
        """Exact match count for a pattern (summed across shards)."""
        if subject is not None:
            return self.owning_shard(subject).pattern_cardinality(
                subject=subject, predicate=predicate, obj=obj
            )
        return sum(
            shard.pattern_cardinality(subject=None, predicate=predicate, obj=obj)
            for shard in self.shards
        )

    def neighbors(self, entity_id: str) -> List[Tuple[str, str, bool]]:
        """Adjacent entity edges gathered across shards, single-graph order.

        Outgoing edges live on the owning shard; incoming edges live on
        the owning shards of *their* subjects — hence the gather.
        """
        context = serve_context.current_context()
        parent = serve_context.current_request_span()

        def probe(indexed: Tuple[int, KnowledgeGraph]) -> List[Tuple[str, str, bool]]:
            index, shard = indexed
            with serve_context.shard_span(
                context, parent, "serve.shard.neighbors", shard=index
            ) as span_:
                rows = shard.neighbors(entity_id)
                span_.set_tag("rows", len(rows))
                return rows

        per_shard = pmap(probe, list(enumerate(self.shards)))
        gathered: List[Tuple[str, str, bool]] = []
        for rows in per_shard:
            gathered.extend(rows)
        return sorted(gathered)

    # ------------------------------------------------------------------
    # conjunctive queries (the Sec. 1 "understanding" workload)

    def match_pattern(self, pattern: TriplePattern) -> List[Binding]:
        """One binding per matching triple, in single-graph order."""
        subject = None if is_variable(pattern.subject) else pattern.subject
        predicate = None if is_variable(pattern.predicate) else pattern.predicate
        obj = None if is_variable(pattern.object) else pattern.object
        bindings: List[Binding] = []
        for triple in self.query(subject=subject, predicate=predicate, obj=obj):
            binding: Binding = {}
            if subject is None:
                binding[pattern.subject] = triple.subject
            if predicate is None:
                binding[pattern.predicate] = triple.predicate
            if obj is None:
                binding[pattern.object] = triple.object
            bindings.append(binding)
        return bindings

    def _selectivity(self, pattern: TriplePattern) -> int:
        return self.pattern_cardinality(
            subject=None if is_variable(pattern.subject) else pattern.subject,
            predicate=None if is_variable(pattern.predicate) else pattern.predicate,
            obj=None if is_variable(pattern.object) else pattern.object,
        )

    def conjunctive_query(
        self, patterns: Sequence[TriplePattern], reorder: bool = True
    ) -> List[Binding]:
        """Join patterns across shards; identical output to the one-graph
        :func:`repro.core.query.conjunctive_query` (same reordering rule,
        same binding order)."""
        ordered = list(patterns)
        if reorder and len(ordered) > 1:
            ordered.sort(key=self._selectivity)
        solutions: List[Binding] = [{}]
        for pattern in ordered:
            next_solutions: List[Binding] = []
            for binding in solutions:
                bound = pattern.bind(binding)
                for new_binding in self.match_pattern(bound):
                    merged = dict(binding)
                    conflict = False
                    for variable, value in new_binding.items():
                        if variable in merged and merged[variable] != value:
                            conflict = True
                            break
                        merged[variable] = value
                    if not conflict:
                        next_solutions.append(merged)
            solutions = next_solutions
            if not solutions:
                break
        return solutions

    # ------------------------------------------------------------------
    # path queries

    def paths(
        self, start: str, goal: str, max_length: int = 3, max_paths: int = 100
    ) -> List[List[Tuple[str, int, str]]]:
        """Bounded simple paths, via :class:`PathQuery` over the planner.

        ``PathQuery`` only touches ``has_entity`` and ``neighbors``, both
        of which the planner answers with single-graph semantics, so the
        DFS explores in exactly the one-graph order.
        """
        return PathQuery(self, max_length=max_length).paths(  # type: ignore[arg-type]
            start, goal, max_paths=max_paths
        )

    # ------------------------------------------------------------------

    def shard_sizes(self) -> Dict[str, int]:
        """Triples per shard (balance visibility for ``/stats``)."""
        return {f"shard{index}": len(shard) for index, shard in enumerate(self.shards)}
