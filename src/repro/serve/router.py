"""The request router: four endpoints over snapshots, shards, cache, QA.

Routes (mirroring how Sec. 1 applications consume a KG, and Sec. 4's
answer-time routing between triples and LM parameters):

* ``lookup``  — entity attribute/relation read: ``(subject, predicate, ?)``;
* ``paths``   — bounded path search between two entities (the
  "explanation (in paths in the graph)" workload);
* ``query``   — conjunctive triple-pattern queries with variables;
* ``ask``     — natural-question answering through
  :class:`repro.neural.qa.DualRouterQA`: the LM's familiarity decides
  whether head knowledge is served parametrically, torso/tail routes to
  triples — and under load the admission ladder sheds the LM path first.

Every request: take one snapshot reference, pass admission, consult the
read-through cache (keyed by snapshot version), compute through the
scatter/gather planner, record per-route latency histograms and
counters.  Requests never raise to the transport: failures become
``error`` responses and overload becomes ``shed`` (429-equivalent), so a
degrading server emits zero 5xx-equivalents by construction.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.query import TriplePattern
from repro.neural.qa import DualRouterQA, KGQA, Question
from repro.obs import metrics as obs_metrics
from repro.obs._flags import FLAGS
from repro.obs.slo import get_slo_tracker
from repro.serve import context as serve_context
from repro.serve.admission import AdmissionController, Deadline
from repro.serve.cache import ResponseCache
from repro.serve.snapshot import GraphSnapshot, SnapshotStore

#: Routes the router serves (also the loadgen's mix vocabulary).
ROUTES = ("lookup", "paths", "query", "ask")


@dataclass
class RouteResponse:
    """One endpoint's answer plus serving metadata.

    ``status`` is the transport-independent outcome: ``ok`` (200),
    ``shed`` (429 — refused under overload, *not* an error),
    ``bad_request`` (400), ``unavailable`` (503 — nothing published yet),
    ``error`` (500 — a bug; the overload tests assert zero of these).
    """

    status: str
    route: str
    payload: Dict[str, object] = field(default_factory=dict)
    snapshot_version: int = 0
    cached: bool = False
    degraded: Optional[str] = None
    elapsed_ms: float = 0.0

    HTTP_STATUS = {
        "ok": 200,
        "bad_request": 400,
        "shed": 429,
        "error": 500,
        "unavailable": 503,
    }

    @property
    def http_status(self) -> int:
        return self.HTTP_STATUS.get(self.status, 500)

    @property
    def is_server_error(self) -> bool:
        """5xx-equivalence (what the overload acceptance gate counts)."""
        return self.http_status >= 500

    def to_dict(self) -> Dict[str, object]:
        """The JSON body the HTTP server writes (and the client parses)."""
        return {
            "status": self.status,
            "route": self.route,
            "payload": self.payload,
            "snapshot_version": self.snapshot_version,
            "cached": self.cached,
            "degraded": self.degraded,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }


def _canonical_key(params: Dict[str, object]) -> str:
    """A deterministic cache key for one request's parameters."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)


class RequestRouter:
    """Dispatches the four routes over the current snapshot."""

    def __init__(
        self,
        store: SnapshotStore,
        cache: Optional[ResponseCache] = None,
        admission: Optional[AdmissionController] = None,
        model=None,
        max_results: int = 200,
    ):
        self.store = store
        self.cache = cache if cache is not None else ResponseCache()
        self.admission = admission if admission is not None else AdmissionController()
        self.model = model
        self.max_results = max_results
        # The simulated LM draws from a seeded rng; serialize its calls so
        # concurrent ``ask`` traffic cannot interleave mid-draw.
        self._lm_lock = threading.Lock()
        # Per-snapshot QA engines, built lazily on first ``ask``.
        self._qa_lock = threading.Lock()
        self._qa_by_version: Dict[int, Tuple[KGQA, Optional[DualRouterQA]]] = {}

    # ------------------------------------------------------------------
    # public endpoints

    def lookup(
        self, subject: str, predicate: str, timeout_s: Optional[float] = None
    ) -> RouteResponse:
        """Read ``(subject, predicate, ?)``; subject may be an id or a name."""
        if not subject or not predicate:
            return self._bad_request("lookup", "subject and predicate are required")
        return self._serve(
            "lookup",
            {"subject": subject, "predicate": predicate},
            timeout_s,
            self._compute_lookup,
        )

    def paths(
        self,
        start: str,
        goal: str,
        max_length: int = 3,
        max_paths: int = 25,
        timeout_s: Optional[float] = None,
    ) -> RouteResponse:
        """Bounded simple paths between two entities (ids or names)."""
        if not start or not goal:
            return self._bad_request("paths", "start and goal are required")
        if max_length < 1 or max_paths < 1:
            return self._bad_request("paths", "max_length and max_paths must be >= 1")
        params = {
            "start": start,
            "goal": goal,
            "max_length": int(max_length),
            "max_paths": int(max_paths),
        }
        return self._serve("paths", params, timeout_s, self._compute_paths)

    def query(
        self, patterns: Sequence[Sequence[object]], timeout_s: Optional[float] = None
    ) -> RouteResponse:
        """Conjunctive query; ``patterns`` is a list of ``[s, p, o]`` terms."""
        if not patterns:
            return self._bad_request("query", "at least one pattern is required")
        normalized: List[List[object]] = []
        for pattern in patterns:
            terms = list(pattern)
            if len(terms) != 3:
                return self._bad_request(
                    "query", f"each pattern needs exactly 3 terms, got {terms!r}"
                )
            normalized.append(terms)
        return self._serve(
            "query", {"patterns": normalized}, timeout_s, self._compute_query
        )

    def ask(
        self, subject: str, predicate: str, timeout_s: Optional[float] = None
    ) -> RouteResponse:
        """Question answering via the dual router (KG/LM by familiarity)."""
        if not subject or not predicate:
            return self._bad_request("ask", "subject and predicate are required")
        return self._serve(
            "ask", {"subject": subject, "predicate": predicate}, timeout_s, self._compute_ask
        )

    # ------------------------------------------------------------------
    # the shared serving spine

    def _serve(
        self,
        route: str,
        params: Dict[str, object],
        timeout_s: Optional[float],
        compute,
    ) -> RouteResponse:
        started = time.perf_counter()
        obs_metrics.count("serve.requests")
        obs_metrics.count(f"serve.route.{route}.requests")
        if timeout_s is not None and not isinstance(timeout_s, (int, float)):
            # A transport that forgot to validate must not become a 500
            # (Deadline would TypeError outside the defensive try below).
            return self._bad_request(
                route, f"timeout_s must be a number, got {timeout_s!r}", counted=True
            )
        snapshot = self.store.current()
        if snapshot is None:
            return self._finish(
                RouteResponse(
                    status="unavailable",
                    route=route,
                    payload={"error": "no snapshot published"},
                ),
                started,
            )
        key = _canonical_key(params)
        decision = self.admission.admit(route)
        if not decision.admitted:
            # Refused at the door: a stale answer beats a refusal.
            stale = self.cache.get_stale(route, key)
            if stale is not None:
                obs_metrics.count("serve.shed.stale_served")
                return self._finish(
                    RouteResponse(
                        status="ok",
                        route=route,
                        payload=stale,  # type: ignore[arg-type]
                        snapshot_version=snapshot.version,
                        cached=True,
                        degraded="stale",
                    ),
                    started,
                )
            obs_metrics.count("serve.shed.rejected")
            return self._finish(
                RouteResponse(
                    status="shed",
                    route=route,
                    payload={"reason": decision.reason},
                    snapshot_version=snapshot.version,
                    degraded="rejected",
                ),
                started,
            )
        deadline = self.admission.deadline(timeout_s)
        try:
            with serve_context.request_span(
                f"serve.{route}", route=route, snapshot=snapshot.version
            ):
                return self._finish(
                    self._serve_admitted(
                        route, params, key, snapshot, decision, deadline, compute
                    ),
                    started,
                )
        except Exception as exc:  # defensive: bugs become 500s, not crashes
            obs_metrics.count("serve.errors")
            obs_metrics.count(f"serve.route.{route}.errors")
            return self._finish(
                RouteResponse(
                    status="error",
                    route=route,
                    payload={"error": f"{type(exc).__name__}: {exc}"},
                    snapshot_version=snapshot.version,
                ),
                started,
            )
        finally:
            self.admission.release()

    def _serve_admitted(
        self,
        route: str,
        params: Dict[str, object],
        key: str,
        snapshot: GraphSnapshot,
        decision,
        deadline: Deadline,
        compute,
    ) -> RouteResponse:
        degraded = decision.level_name if decision.level > 0 else None
        # Stale tier (ladder level 2, or a blown deadline): prefer the
        # last known answer over fresh computation.
        if decision.prefer_stale or deadline.expired():
            stale = self.cache.get_stale(route, key)
            if stale is not None:
                obs_metrics.count("serve.shed.stale_served")
                return RouteResponse(
                    status="ok",
                    route=route,
                    payload=stale,  # type: ignore[arg-type]
                    snapshot_version=snapshot.version,
                    cached=True,
                    degraded="stale",
                )
            degraded = "stale_miss"
        cached = self.cache.get(route, key, snapshot.version)
        if cached is not None:
            return RouteResponse(
                status="ok",
                route=route,
                payload=cached,  # type: ignore[arg-type]
                snapshot_version=snapshot.version,
                cached=True,
                degraded=degraded,
            )
        payload = compute(snapshot, params, decision, deadline)
        # A degraded ``ask`` (LM path shed) must not poison the cache: a
        # later un-degraded request would otherwise serve the KG-only
        # answer as if it were the dual-router one.  KG-only is only
        # cacheable when it IS the normal answer (no model configured).
        lm_degraded = (
            route == "ask"
            and self.model is not None
            and bool(payload.get("lm_shed"))
        )
        if not lm_degraded:
            self.cache.put(route, key, snapshot.version, payload)
        return RouteResponse(
            status="ok",
            route=route,
            payload=payload,
            snapshot_version=snapshot.version,
            degraded=degraded,
        )

    def _finish(self, response: RouteResponse, started: float) -> RouteResponse:
        response.elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs_metrics.observe(f"serve.route.{response.route}.seconds", response.elapsed_ms / 1000.0)
        obs_metrics.count(f"serve.route.{response.route}.{response.status}")
        if FLAGS.enabled:
            get_slo_tracker().record(
                response.route, response.status, response.http_status, response.degraded
            )
        serve_context.tag_request("status", response.status)
        if response.degraded:
            serve_context.tag_request("degraded", response.degraded)
        if response.cached:
            serve_context.tag_request("cached", True)
        return response

    def _bad_request(self, route: str, message: str, counted: bool = False) -> RouteResponse:
        if not counted:
            obs_metrics.count("serve.requests")
            obs_metrics.count(f"serve.route.{route}.requests")
        obs_metrics.count(f"serve.route.{route}.bad_request")
        if FLAGS.enabled:
            get_slo_tracker().record(route, "bad_request", 400, None)
        return RouteResponse(
            status="bad_request", route=route, payload={"error": message}
        )

    # ------------------------------------------------------------------
    # per-route computation (all run against one snapshot reference)

    def _resolve_entities(self, snapshot: GraphSnapshot, term: str):
        """Entities a surface term names: an exact id, else name matches."""
        planner = snapshot.planner
        if planner.has_entity(term):
            return [planner.entity(term)]
        return planner.find_by_name(term)

    def _render_value(self, snapshot: GraphSnapshot, value: object) -> str:
        """Entity-valued objects render as canonical names, literals as str."""
        if isinstance(value, str) and snapshot.planner.has_entity(value):
            return snapshot.planner.entity(value).name
        return str(value)

    def _compute_lookup(
        self, snapshot: GraphSnapshot, params: Dict[str, object], decision, deadline
    ) -> Dict[str, object]:
        subject = str(params["subject"])
        predicate = str(params["predicate"])
        entities = self._resolve_entities(snapshot, subject)
        values: List[str] = []
        for entity in entities:
            for value in snapshot.planner.objects(entity.entity_id, predicate):
                values.append(self._render_value(snapshot, value))
        return {
            "subject": subject,
            "predicate": predicate,
            "entities": [entity.entity_id for entity in entities],
            "values": values[: self.max_results],
        }

    def _compute_paths(
        self, snapshot: GraphSnapshot, params: Dict[str, object], decision, deadline
    ) -> Dict[str, object]:
        start_matches = self._resolve_entities(snapshot, str(params["start"]))
        goal_matches = self._resolve_entities(snapshot, str(params["goal"]))
        if not start_matches or not goal_matches:
            return {"paths": [], "n_paths": 0, "resolved": False}
        found = snapshot.planner.paths(
            start_matches[0].entity_id,
            goal_matches[0].entity_id,
            max_length=int(params["max_length"]),  # type: ignore[arg-type]
            max_paths=int(params["max_paths"]),  # type: ignore[arg-type]
        )
        return {
            "start": start_matches[0].entity_id,
            "goal": goal_matches[0].entity_id,
            "paths": [
                [[relation, direction, node] for relation, direction, node in path]
                for path in found
            ],
            "n_paths": len(found),
            "resolved": True,
        }

    def _compute_query(
        self, snapshot: GraphSnapshot, params: Dict[str, object], decision, deadline
    ) -> Dict[str, object]:
        patterns = [
            TriplePattern(str(terms[0]), str(terms[1]), terms[2])
            for terms in params["patterns"]  # type: ignore[union-attr]
        ]
        bindings = snapshot.planner.conjunctive_query(patterns)
        return {
            "bindings": [
                {variable: value for variable, value in sorted(binding.items())}
                for binding in bindings[: self.max_results]
            ],
            "n_bindings": len(bindings),
            "truncated": len(bindings) > self.max_results,
        }

    def _qa_for(self, snapshot: GraphSnapshot) -> Tuple[KGQA, Optional[DualRouterQA]]:
        with self._qa_lock:
            engines = self._qa_by_version.get(snapshot.version)
            if engines is None:
                kgqa = KGQA(snapshot.planner)  # type: ignore[arg-type]
                dual = (
                    DualRouterQA(snapshot.planner, self.model)  # type: ignore[arg-type]
                    if self.model is not None
                    else None
                )
                engines = (kgqa, dual)
                self._qa_by_version[snapshot.version] = engines
                # Bound the map: keep engines for the few newest versions so
                # in-flight requests against a just-retired snapshot still
                # find theirs, without growing forever across publishes.
                while len(self._qa_by_version) > 4:
                    del self._qa_by_version[min(self._qa_by_version)]
            return engines

    def _compute_ask(
        self, snapshot: GraphSnapshot, params: Dict[str, object], decision, deadline
    ) -> Dict[str, object]:
        subject = str(params["subject"])
        predicate = str(params["predicate"])
        matches = self._resolve_entities(snapshot, subject)
        resolved = bool(matches) and snapshot.planner.has_entity(subject)
        question = Question(
            subject_id=matches[0].entity_id if resolved else "",
            subject_name=(
                matches[0].name if resolved and matches else subject
            ),
            predicate=predicate,
            gold=(),
            band="online",
            resolved=resolved,
        )
        kgqa, dual = self._qa_for(snapshot)
        lm_shed = decision.shed_lm or dual is None or deadline.expired()
        if lm_shed:
            if decision.shed_lm and dual is not None:
                obs_metrics.count("serve.shed.lm")
            with serve_context.request_span("serve.qa", engine="kg", lm_shed=True):
                answer = kgqa.answer(question)
        else:
            with self._lm_lock:
                with serve_context.request_span("serve.qa", engine="dual", lm_shed=False):
                    answer = dual.answer(question)
        return {
            "subject": subject,
            "predicate": predicate,
            "answer": answer.text,
            "origin": answer.origin,
            "lm_shed": lm_shed,
        }
