"""Transports: a stdlib ``ThreadingHTTPServer`` JSON API + clients.

The HTTP layer is deliberately thin — all policy (admission, caching,
degradation) lives in the router, so the in-process client and the HTTP
server return byte-identical JSON bodies and status codes.  That is what
lets the load generator drive either transport and lets the CI smoke job
assert the same contract over real sockets.

Endpoints::

    GET  /healthz                              -> {"ok": true, ...}
    GET  /stats                                -> service stats + entity sample
    GET  /statusz                              -> SLO summary + degradation level
    GET  /metrics                              -> Prometheus exposition (text)
    GET  /lookup?subject=S&predicate=P
    GET  /paths?start=A&goal=B[&max_length=3][&max_paths=25]
    GET  /ask?subject=S&predicate=P
    POST /query   {"patterns": [["?m", "directed_by", "P0001"], ...]}

Status mapping: ``ok``→200, ``bad_request``→400, ``shed``→429,
``unavailable``→503, ``error``→500 (the overload tests assert zero).

Every response carries an ``X-Repro-Request-Id`` header — echoed when the
caller supplied one, minted otherwise — and the four serving routes run
inside a :func:`repro.serve.context.request_scope`, so the id keys the
request's span tree and access-log line across both transports.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.export import render_prometheus
from repro.serve import context as serve_context
from repro.serve.context import REQUEST_ID_HEADER
from repro.serve.router import RouteResponse
from repro.serve.service import KGService

#: JSON body + HTTP status, the shape both clients return.
ClientResult = Tuple[int, Dict[str, object]]

#: Sentinel for a ``timeout_s`` parameter that failed to parse.
_INVALID_TIMEOUT = object()


def _make_handler(service: KGService):
    """A request-handler class bound to one service instance."""

    class ServeHandler(BaseHTTPRequestHandler):
        # HTTP/1.1 keep-alive: every response already carries an exact
        # Content-Length, and a persistent connection saves a TCP
        # handshake plus a ThreadingHTTPServer thread spawn per request —
        # the dominant (and noisiest) share of the measured round trip.
        protocol_version = "HTTP/1.1"

        # Nagle + delayed ACK turns the header/body write pair into a
        # ~40ms stall per keep-alive request; flush segments immediately.
        disable_nagle_algorithm = True

        # Quiet: serving benchmarks must not pay for stderr logging.
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        # ---- helpers -------------------------------------------------

        def _request_id(self) -> str:
            """The caller-supplied request id, minting one if absent."""
            rid = getattr(self, "_rid", None)
            if rid is None:
                rid = self.headers.get(REQUEST_ID_HEADER) or serve_context.new_request_id()
                self._rid = rid
            return rid

        def _begin_request(self) -> None:
            """Per-request reset: one handler serves many keep-alive
            requests, so the memoized id must not leak across them."""
            self._rid = None

        def _write_json(self, status: int, body: Dict[str, object]) -> None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.send_header(REQUEST_ID_HEADER, self._request_id())
            self.end_headers()
            self.wfile.write(data)

        def _write_text(self, status: int, text: str, content_type: str) -> None:
            data = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.send_header(REQUEST_ID_HEADER, self._request_id())
            self.end_headers()
            self.wfile.write(data)

        def _params(self) -> Dict[str, str]:
            query = urllib.parse.urlparse(self.path).query
            return {
                key: values[0]
                for key, values in urllib.parse.parse_qs(query).items()
                if values
            }

        def _timeout(self, params: Dict[str, str]):
            """``timeout_s`` as a float, None when absent, or the invalid
            sentinel — a malformed value must 400, not silently drop the
            caller's deadline."""
            raw = params.get("timeout_s")
            if raw is None:
                return None
            try:
                return float(raw)
            except ValueError:
                return _INVALID_TIMEOUT

        def _serve_route(self, route: str, compute, timeout_s=None) -> None:
            """Run one routed request inside its observability scope."""
            with serve_context.request_scope(
                route,
                request_id=self._request_id(),
                timeout_s=timeout_s if isinstance(timeout_s, (int, float)) else None,
                sample_rate=service.trace_sample,
                access_log=service.access_log,
            ) as context:
                response = compute()
                context.status = response.status
                context.http_status = response.http_status
                self._write_json(response.http_status, response.to_dict())

        def _unknown_route(self, route: str) -> None:
            obs_metrics.count("serve.http.404")
            self._write_json(404, {"error": f"unknown route {route!r}"})

        # ---- verbs ---------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._begin_request()
            route = urllib.parse.urlparse(self.path).path.rstrip("/") or "/"
            params = self._params()
            timeout_s = self._timeout(params)
            if timeout_s is _INVALID_TIMEOUT:
                self._write_json(
                    400,
                    {"error": f"timeout_s must be a number, got {params['timeout_s']!r}"},
                )
                return
            if route == "/healthz":
                snapshot = service.store.current()
                self._write_json(
                    200 if snapshot is not None else 503,
                    {
                        "ok": snapshot is not None,
                        "snapshot_version": service.store.current_version(),
                    },
                )
            elif route == "/stats":
                self._write_json(200, service.stats())
            elif route == "/statusz":
                self._write_json(200, service.statusz())
            elif route == "/buildz":
                self._write_json(200, service.buildz())
            elif route == "/metrics":
                self._write_text(
                    200,
                    render_prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif route == "/lookup":
                self._serve_route(
                    "lookup",
                    lambda: service.lookup(
                        params.get("subject", ""),
                        params.get("predicate", ""),
                        timeout_s=timeout_s,
                    ),
                    timeout_s=timeout_s,
                )
            elif route == "/paths":
                try:
                    max_length = int(params.get("max_length", 3))
                    max_paths = int(params.get("max_paths", 25))
                except ValueError:
                    self._write_json(400, {"error": "max_length/max_paths must be integers"})
                    return
                self._serve_route(
                    "paths",
                    lambda: service.paths(
                        params.get("start", ""),
                        params.get("goal", ""),
                        max_length=max_length,
                        max_paths=max_paths,
                        timeout_s=timeout_s,
                    ),
                    timeout_s=timeout_s,
                )
            elif route == "/ask":
                self._serve_route(
                    "ask",
                    lambda: service.ask(
                        params.get("subject", ""),
                        params.get("predicate", ""),
                        timeout_s=timeout_s,
                    ),
                    timeout_s=timeout_s,
                )
            else:
                self._unknown_route(route)

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._begin_request()
            route = urllib.parse.urlparse(self.path).path.rstrip("/") or "/"
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError):
                self._write_json(400, {"error": "request body must be JSON"})
                return
            if route == "/query":
                patterns = body.get("patterns") if isinstance(body, dict) else None
                timeout_s = body.get("timeout_s") if isinstance(body, dict) else None
                self._serve_route(
                    "query",
                    lambda: service.query(patterns or [], timeout_s=timeout_s),
                    timeout_s=timeout_s,
                )
            else:
                self._unknown_route(route)

    return ServeHandler


def start_server(
    service: KGService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the HTTP server on a daemon thread; returns (server, thread).

    ``port=0`` lets the OS pick a free port (``server.server_address[1]``
    holds the real one) — the shape tests and the CI smoke job use.
    Call ``server.shutdown()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True, name="repro-serve")
    thread.start()
    return server, thread


# ---------------------------------------------------------------------------
# clients (one response contract, two transports)


class InProcessClient:
    """Drives the router directly; mirrors the HTTP JSON contract exactly.

    Each call runs inside the same :func:`request_scope` bracket the HTTP
    transport uses, so traces, SLO windows, and access logs see identical
    request streams from either client.  ``last_request_id`` holds the id
    of the most recent call (the in-process analogue of the HTTP header;
    the JSON body stays byte-identical across transports).
    """

    def __init__(self, service: KGService):
        self.service = service
        self.last_request_id: Optional[str] = None

    def _call(self, route: str, compute, timeout_s=None) -> ClientResult:
        with serve_context.request_scope(
            route,
            timeout_s=timeout_s if isinstance(timeout_s, (int, float)) else None,
            sample_rate=self.service.trace_sample,
            access_log=self.service.access_log,
        ) as context:
            response = compute()
            context.status = response.status
            context.http_status = response.http_status
            self.last_request_id = context.request_id
        return response.http_status, response.to_dict()

    def lookup(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        return self._call(
            "lookup",
            lambda: self.service.lookup(subject, predicate, timeout_s=timeout_s),
            timeout_s=timeout_s,
        )

    def paths(self, start: str, goal: str, max_length: int = 3, max_paths: int = 25,
              timeout_s=None) -> ClientResult:
        return self._call(
            "paths",
            lambda: self.service.paths(
                start, goal, max_length=max_length, max_paths=max_paths,
                timeout_s=timeout_s,
            ),
            timeout_s=timeout_s,
        )

    def query(self, patterns: Sequence[Sequence[object]], timeout_s=None) -> ClientResult:
        return self._call(
            "query",
            lambda: self.service.query(patterns, timeout_s=timeout_s),
            timeout_s=timeout_s,
        )

    def ask(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        return self._call(
            "ask",
            lambda: self.service.ask(subject, predicate, timeout_s=timeout_s),
            timeout_s=timeout_s,
        )

    def stats(self) -> ClientResult:
        return 200, self.service.stats()

    def statusz(self) -> ClientResult:
        return 200, self.service.statusz()

    def buildz(self) -> ClientResult:
        return 200, self.service.buildz()


class HTTPClient:
    """The same client surface over real sockets (stdlib only).

    Connections are persistent (HTTP/1.1 keep-alive) and thread-local:
    the load generator shares one client across worker threads, and a
    single shared socket would interleave concurrent request/response
    pairs.  A connection that errors is closed and rebuilt on the next
    call, so a restarted server just costs one 599.
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        #: The ``X-Repro-Request-Id`` of the most recent response.
        self.last_request_id: Optional[str] = None
        parsed = urllib.parse.urlsplit(self.base_url)
        self._host = parsed.hostname or "127.0.0.1"
        self._port = parsed.port or 80
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout_s
            )
            connection.connect()
            # Same Nagle/delayed-ACK stall on the POST side (headers and
            # body go out as separate writes).
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def _get(self, path: str, params: Dict[str, object]) -> ClientResult:
        query = urllib.parse.urlencode(
            {key: value for key, value in params.items() if value is not None}
        )
        return self._send("GET", path + (f"?{query}" if query else ""))

    def _post(self, path: str, body: Dict[str, object]) -> ClientResult:
        return self._send(
            "POST",
            path,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )

    def _send(
        self,
        method: str,
        path: str,
        data: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ClientResult:
        status, reply_headers, raw = self._roundtrip(method, path, data, headers)
        if status == 599:
            self.last_request_id = None
            return 599, {"error": raw.decode("utf-8", "replace")}
        self.last_request_id = reply_headers.get(REQUEST_ID_HEADER)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            # A non-JSON body (a proxy error page, a crashed handler's
            # half-write) must surface as an error dict, not a raise.
            body = {"error": raw.decode("utf-8", "replace") or f"HTTP {status}"}
        if not isinstance(body, dict):
            body = {"error": f"non-object JSON body: {body!r}"}
        return status, body

    def _roundtrip(
        self,
        method: str,
        path: str,
        data: Optional[bytes],
        headers: Optional[Dict[str, str]],
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request over the thread's persistent connection.

        Returns ``(status, headers, raw_body)``; transport failures
        (refused, reset, timeout) come back as the 599 convention with
        the error text as the body rather than raising.
        """
        try:
            connection = self._connection()
            connection.request(method, path, body=data, headers=headers or {})
            reply = connection.getresponse()
            raw = reply.read()
            reply_headers = {key: value for key, value in reply.getheaders()}
            if reply.will_close:
                self._drop_connection()
            return reply.status, reply_headers, raw
        except (http.client.HTTPException, OSError) as error:
            self._drop_connection()
            return 599, {}, f"transport: {error}".encode("utf-8")

    def lookup(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        return self._get(
            "/lookup", {"subject": subject, "predicate": predicate, "timeout_s": timeout_s}
        )

    def paths(self, start: str, goal: str, max_length: int = 3, max_paths: int = 25,
              timeout_s=None) -> ClientResult:
        return self._get(
            "/paths",
            {
                "start": start,
                "goal": goal,
                "max_length": max_length,
                "max_paths": max_paths,
                "timeout_s": timeout_s,
            },
        )

    def query(self, patterns: Sequence[Sequence[object]], timeout_s=None) -> ClientResult:
        body: Dict[str, object] = {"patterns": [list(p) for p in patterns]}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._post("/query", body)

    def ask(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        return self._get(
            "/ask", {"subject": subject, "predicate": predicate, "timeout_s": timeout_s}
        )

    def stats(self) -> ClientResult:
        return self._get("/stats", {})

    def statusz(self) -> ClientResult:
        return self._get("/statusz", {})

    def buildz(self) -> ClientResult:
        return self._get("/buildz", {})

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics`` (not JSON)."""
        status, headers, raw = self._roundtrip("GET", "/metrics", None, None)
        if status != 200:
            raise RuntimeError(f"/metrics returned {status}: {raw[:200]!r}")
        self.last_request_id = headers.get(REQUEST_ID_HEADER)
        return raw.decode("utf-8")
