"""Transports: a stdlib ``ThreadingHTTPServer`` JSON API + clients.

The HTTP layer is deliberately thin — all policy (admission, caching,
degradation) lives in the router, so the in-process client and the HTTP
server return byte-identical JSON bodies and status codes.  That is what
lets the load generator drive either transport and lets the CI smoke job
assert the same contract over real sockets.

Endpoints::

    GET  /healthz                              -> {"ok": true, ...}
    GET  /stats                                -> service stats + entity sample
    GET  /lookup?subject=S&predicate=P
    GET  /paths?start=A&goal=B[&max_length=3][&max_paths=25]
    GET  /ask?subject=S&predicate=P
    POST /query   {"patterns": [["?m", "directed_by", "P0001"], ...]}

Status mapping: ``ok``→200, ``bad_request``→400, ``shed``→429,
``unavailable``→503, ``error``→500 (the overload tests assert zero).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from repro.serve.router import RouteResponse
from repro.serve.service import KGService

#: JSON body + HTTP status, the shape both clients return.
ClientResult = Tuple[int, Dict[str, object]]


def _make_handler(service: KGService):
    """A request-handler class bound to one service instance."""

    class ServeHandler(BaseHTTPRequestHandler):
        # Quiet: serving benchmarks must not pay for stderr logging.
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        # ---- helpers -------------------------------------------------

        def _write_json(self, status: int, body: Dict[str, object]) -> None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _write_route(self, response: RouteResponse) -> None:
            self._write_json(response.http_status, response.to_dict())

        def _params(self) -> Dict[str, str]:
            query = urllib.parse.urlparse(self.path).query
            return {
                key: values[0]
                for key, values in urllib.parse.parse_qs(query).items()
                if values
            }

        def _timeout(self, params: Dict[str, str]) -> Optional[float]:
            raw = params.get("timeout_s")
            try:
                return float(raw) if raw is not None else None
            except ValueError:
                return None

        # ---- verbs ---------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            route = urllib.parse.urlparse(self.path).path.rstrip("/") or "/"
            params = self._params()
            if route == "/healthz":
                snapshot = service.store.current()
                self._write_json(
                    200 if snapshot is not None else 503,
                    {
                        "ok": snapshot is not None,
                        "snapshot_version": service.store.current_version(),
                    },
                )
            elif route == "/stats":
                self._write_json(200, service.stats())
            elif route == "/lookup":
                self._write_route(
                    service.lookup(
                        params.get("subject", ""),
                        params.get("predicate", ""),
                        timeout_s=self._timeout(params),
                    )
                )
            elif route == "/paths":
                try:
                    max_length = int(params.get("max_length", 3))
                    max_paths = int(params.get("max_paths", 25))
                except ValueError:
                    self._write_json(400, {"error": "max_length/max_paths must be integers"})
                    return
                self._write_route(
                    service.paths(
                        params.get("start", ""),
                        params.get("goal", ""),
                        max_length=max_length,
                        max_paths=max_paths,
                        timeout_s=self._timeout(params),
                    )
                )
            elif route == "/ask":
                self._write_route(
                    service.ask(
                        params.get("subject", ""),
                        params.get("predicate", ""),
                        timeout_s=self._timeout(params),
                    )
                )
            else:
                self._write_json(404, {"error": f"unknown route {route!r}"})

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            route = urllib.parse.urlparse(self.path).path.rstrip("/")
            length = int(self.headers.get("Content-Length", 0) or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except (ValueError, UnicodeDecodeError):
                self._write_json(400, {"error": "request body must be JSON"})
                return
            if route == "/query":
                patterns = body.get("patterns") if isinstance(body, dict) else None
                self._write_route(
                    service.query(
                        patterns or [],
                        timeout_s=body.get("timeout_s") if isinstance(body, dict) else None,
                    )
                )
            else:
                self._write_json(404, {"error": f"unknown route {route!r}"})

    return ServeHandler


def start_server(
    service: KGService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the HTTP server on a daemon thread; returns (server, thread).

    ``port=0`` lets the OS pick a free port (``server.server_address[1]``
    holds the real one) — the shape tests and the CI smoke job use.
    Call ``server.shutdown()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True, name="repro-serve")
    thread.start()
    return server, thread


# ---------------------------------------------------------------------------
# clients (one response contract, two transports)


class InProcessClient:
    """Drives the router directly; mirrors the HTTP JSON contract exactly."""

    def __init__(self, service: KGService):
        self.service = service

    def lookup(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        response = self.service.lookup(subject, predicate, timeout_s=timeout_s)
        return response.http_status, response.to_dict()

    def paths(self, start: str, goal: str, max_length: int = 3, max_paths: int = 25,
              timeout_s=None) -> ClientResult:
        response = self.service.paths(
            start, goal, max_length=max_length, max_paths=max_paths, timeout_s=timeout_s
        )
        return response.http_status, response.to_dict()

    def query(self, patterns: Sequence[Sequence[object]], timeout_s=None) -> ClientResult:
        response = self.service.query(patterns, timeout_s=timeout_s)
        return response.http_status, response.to_dict()

    def ask(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        response = self.service.ask(subject, predicate, timeout_s=timeout_s)
        return response.http_status, response.to_dict()

    def stats(self) -> ClientResult:
        return 200, self.service.stats()


class HTTPClient:
    """The same client surface over real sockets (stdlib urllib only)."""

    def __init__(self, base_url: str, timeout_s: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _get(self, path: str, params: Dict[str, object]) -> ClientResult:
        query = urllib.parse.urlencode(
            {key: value for key, value in params.items() if value is not None}
        )
        url = f"{self.base_url}{path}" + (f"?{query}" if query else "")
        request = urllib.request.Request(url, method="GET")
        return self._send(request)

    def _post(self, path: str, body: Dict[str, object]) -> ClientResult:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._send(request)

    def _send(self, request: urllib.request.Request) -> ClientResult:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                return reply.status, json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": str(error)}
            return error.code, body

    def lookup(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        return self._get(
            "/lookup", {"subject": subject, "predicate": predicate, "timeout_s": timeout_s}
        )

    def paths(self, start: str, goal: str, max_length: int = 3, max_paths: int = 25,
              timeout_s=None) -> ClientResult:
        return self._get(
            "/paths",
            {
                "start": start,
                "goal": goal,
                "max_length": max_length,
                "max_paths": max_paths,
                "timeout_s": timeout_s,
            },
        )

    def query(self, patterns: Sequence[Sequence[object]], timeout_s=None) -> ClientResult:
        body: Dict[str, object] = {"patterns": [list(p) for p in patterns]}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._post("/query", body)

    def ask(self, subject: str, predicate: str, timeout_s=None) -> ClientResult:
        return self._get(
            "/ask", {"subject": subject, "predicate": predicate, "timeout_s": timeout_s}
        )

    def stats(self) -> ClientResult:
        return self._get("/stats", {})
