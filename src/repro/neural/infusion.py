"""Knowledge infusion: teaching the LM head knowledge (Sec. 4).

"One important research problem is how to infuse head knowledge into LLMs
to enable precise answers to relevant questions, through model training, or
through model fine tuning. Early work in this line includes knowledge
infusion [31, 45]."

For the SLM, infusion is corpus augmentation: head facts are verbalized
repeatedly and absorbed into memory, raising their recall strength and
crowding out collided/noisy associations.  The benchmark measures head
accuracy and hallucination before vs after.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.datagen.text import TEMPLATES, TextMention
from repro.datagen.world import World
from repro.neural.slm import SimulatedLM


def infuse_head_knowledge(
    model: SimulatedLM,
    world: World,
    band: str = "head",
    repetitions: int = 8,
    predicates: Sequence[str] = ("directed_by", "release_year", "birth_place", "genre"),
    seed: int = 0,
) -> int:
    """Inject verbalized facts of one popularity band into the model.

    Returns the number of fact mentions infused.  ``repetitions`` controls
    how hard the fine-tuning pushes each fact (more mentions = stronger
    recall, per the SLM's frequency-dependent memory).
    """
    rng = np.random.default_rng(seed)
    mentions: List[TextMention] = []
    for entity_id in world.popularity.items_in_band(band):
        entity = world.truth.entity(entity_id)
        for predicate in predicates:
            if predicate not in TEMPLATES:
                continue
            for obj in world.truth.objects(entity_id, predicate):
                if isinstance(obj, str) and world.truth.has_entity(obj):
                    object_text = world.truth.entity(obj).name
                else:
                    object_text = str(obj)
                templates = TEMPLATES[predicate]
                for _ in range(repetitions):
                    template = templates[int(rng.integers(0, len(templates)))]
                    mentions.append(
                        TextMention(
                            sentence=template.format(s=entity.name, o=object_text),
                            subject_text=entity.name,
                            object_text=object_text,
                            predicate=predicate,
                        )
                    )
    model.fit(mentions)
    return len(mentions)
