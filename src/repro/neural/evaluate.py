"""Hallucination / miss / accuracy accounting (the Sec. 4 study).

Every answer falls in exactly one of three buckets, matching the paper's
reporting: *correct*, *hallucinated* (an answer was given and it is wrong),
or *missing* (the system declined).  Reports are computed overall and per
popularity band, which is how the 50%-head vs 15%-tail accuracy contrast
is produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.neural.qa import Question


@dataclass
class BandReport:
    """Outcome counts for one slice of questions."""

    band: str
    n_questions: int = 0
    n_correct: int = 0
    n_hallucinated: int = 0
    n_missing: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction answered correctly."""
        return self.n_correct / self.n_questions if self.n_questions else 0.0

    @property
    def hallucination_rate(self) -> float:
        """Fraction answered wrongly (an answer was given)."""
        return self.n_hallucinated / self.n_questions if self.n_questions else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction not answered at all."""
        return self.n_missing / self.n_questions if self.n_questions else 0.0


def _is_correct(answer: str, gold: Sequence[str]) -> bool:
    lowered = answer.lower().strip()
    return any(lowered == candidate for candidate in gold)


def evaluate_qa(system, questions: Sequence[Question], band: str = "all") -> BandReport:
    """Run a QA system over questions and bucket every outcome."""
    report = BandReport(band=band, n_questions=len(questions))
    for question in questions:
        response = system.answer(question)
        if response.text is None:
            report.n_missing += 1
        elif _is_correct(response.text, question.gold):
            report.n_correct += 1
        else:
            report.n_hallucinated += 1
    return report


def evaluate_by_band(system, questions: Sequence[Question]) -> Dict[str, BandReport]:
    """Per-band reports plus the overall one (key ``"all"``)."""
    reports: Dict[str, BandReport] = {}
    for band in ("head", "torso", "tail"):
        slice_questions = [question for question in questions if question.band == band]
        reports[band] = evaluate_qa(system, slice_questions, band=band)
    reports["all"] = evaluate_qa(system, questions, band="all")
    return reports
