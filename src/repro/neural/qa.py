"""Question answering over the two knowledge forms (Sec. 4).

Four serving strategies:

* :class:`LMQA` — parametric only ("will KGs be replaced with LLMs?");
* :class:`KGQA` — symbolic only (precise but bounded by KG coverage);
* :class:`RetrievalAugmentedQA` — knowledge-enhanced LM: consult the KG
  first, fall back to the LM (the [6, 37, 38] direction);
* :class:`DualRouterQA` — the paper's "future" sketch: route by where the
  knowledge most plausibly lives — the LM's own familiarity decides whether
  its answer is trustworthy, torso/tail and fresh knowledge go to triples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.datagen.world import World
from repro.neural.slm import LMAnswer, SimulatedLM


@dataclass(frozen=True)
class Question:
    """One factoid question with gold answers.

    ``subject_name`` is the surface form given to systems; ``gold`` holds
    acceptable answer strings; ``band`` the popularity band of the subject.
    ``subject_id`` is evaluation metadata — systems must NOT use it unless
    ``resolved`` is set, which marks ids produced by an actual
    disambiguation step (e.g. the natural-language front end), not gold
    knowledge.
    """

    subject_id: str
    subject_name: str
    predicate: str
    gold: Tuple[str, ...]
    band: str
    resolved: bool = False


def build_question_set(
    world: World,
    predicates: Sequence[str] = ("directed_by", "release_year", "birth_place", "genre"),
    per_band: int = 60,
    seed: int = 0,
) -> List[Question]:
    """Sample a band-balanced question set from the world's facts."""
    rng = np.random.default_rng(seed)
    by_band: Dict[str, List[Question]] = {"head": [], "torso": [], "tail": []}
    for entity in world.truth.entities():
        band = world.popularity.band(entity.entity_id)
        for predicate in predicates:
            objects = world.truth.objects(entity.entity_id, predicate)
            if not objects:
                continue
            gold = []
            for obj in objects:
                if isinstance(obj, str) and world.truth.has_entity(obj):
                    gold.append(world.truth.entity(obj).name.lower())
                else:
                    gold.append(str(obj).lower())
            by_band[band].append(
                Question(
                    subject_id=entity.entity_id,
                    subject_name=entity.name,
                    predicate=predicate,
                    gold=tuple(sorted(gold)),
                    band=band,
                )
            )
    questions: List[Question] = []
    for band in ("head", "torso", "tail"):
        pool = by_band[band]
        if len(pool) > per_band:
            chosen = rng.choice(len(pool), size=per_band, replace=False)
            pool = [pool[int(index)] for index in chosen]
        questions.extend(pool)
    return questions


@dataclass(frozen=True)
class QAResponse:
    """A system's answer to one question."""

    text: Optional[str]
    origin: str  # "lm" | "kg" | "abstain"


class LMQA:
    """Parametric-only question answering."""

    def __init__(self, model: SimulatedLM):
        self._model = model

    def answer(self, question: Question) -> QAResponse:
        """Ask the simulated LM directly."""
        response = self._model.answer(question.subject_name, question.predicate)
        if response.abstained:
            return QAResponse(text=None, origin="abstain")
        return QAResponse(text=response.text, origin="lm")


class KGQA:
    """Symbolic-only question answering over a KG."""

    def __init__(self, graph: KnowledgeGraph):
        self._graph = graph

    def lookup(self, question: Question) -> List[str]:
        """All KG answers for the question's (subject, predicate).

        A resolved ``subject_id`` (e.g. from disambiguation) is trusted
        directly; otherwise every same-named entity contributes, which is
        where homonym hallucination comes from.
        """
        if (
            question.resolved
            and question.subject_id
            and self._graph.has_entity(question.subject_id)
        ):
            candidates = [self._graph.entity(question.subject_id)]
        else:
            candidates = self._graph.find_by_name(question.subject_name)
        answers: List[str] = []
        for entity in candidates:
            for value in self._graph.objects(entity.entity_id, question.predicate):
                if isinstance(value, str) and self._graph.has_entity(value):
                    answers.append(self._graph.entity(value).name)
                else:
                    answers.append(str(value))
        return answers

    def answer(self, question: Question) -> QAResponse:
        """Exact KG lookup; abstains when the KG lacks the fact."""
        answers = self.lookup(question)
        if not answers:
            return QAResponse(text=None, origin="abstain")
        return QAResponse(text=answers[0], origin="kg")


class RetrievalAugmentedQA:
    """Knowledge-enhanced LM: retrieve from the KG, fall back to the LM."""

    def __init__(self, graph: KnowledgeGraph, model: SimulatedLM):
        self._kg = KGQA(graph)
        self._lm = LMQA(model)

    def answer(self, question: Question) -> QAResponse:
        """KG first (grounded), LM as fallback."""
        kg_response = self._kg.answer(question)
        if kg_response.text is not None:
            return kg_response
        return self._lm.answer(question)


class DualRouterQA:
    """The dual neural KG router.

    Routing rule from Sec. 4: knowledge the LM is *familiar* with (head)
    may be served parametrically; torso-to-tail and recent knowledge "may
    best reside as triples".  Familiarity is the LM's own memory strength —
    no oracle popularity needed.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        model: SimulatedLM,
        familiarity_threshold: float = 6.0,
    ):
        self._kg = KGQA(graph)
        self._lm = LMQA(model)
        self._model = model
        self._threshold = familiarity_threshold

    def answer(self, question: Question) -> QAResponse:
        """Familiar -> LM (with KG verification); unfamiliar -> KG."""
        familiarity = self._model.familiarity(question.subject_name, question.predicate)
        kg_response = self._kg.answer(question)
        if familiarity >= self._threshold:
            lm_response = self._lm.answer(question)
            if lm_response.text is not None:
                # Blend: if the KG can verify, prefer agreement; on
                # disagreement trust the explicit triple.
                if kg_response.text is not None and (
                    kg_response.text.lower() != lm_response.text.lower()
                ):
                    return kg_response
                return lm_response
        if kg_response.text is not None:
            return kg_response
        return self._lm.answer(question)
