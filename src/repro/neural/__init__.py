"""Dual neural knowledge graphs (Sec. 4).

The paper's study of LLM QA behavior (hallucination ~20%, unanswered ~50%,
head-vs-tail accuracy 50% -> 15%) is reproduced against a *simulated
language model* (:mod:`repro.neural.slm`): an associative fact memory
trained on a popularity-weighted synthetic corpus, whose recall strength
grows with mention frequency and whose failure modes are abstention
(missing knowledge) and confabulation (hallucination).  DESIGN.md records
why this substitution preserves the measured behavior: the paper's own
analysis attributes the head/tail gap to fact frequency in training data.

On top of the SLM:

* :mod:`repro.neural.qa` — QA harnesses: LM-only, KG-only,
  retrieval-augmented (knowledge-enhanced LM), and the dual-routed
  strategy of "the future" paragraph;
* :mod:`repro.neural.infusion` — head-knowledge infusion by corpus
  augmentation (the K-Adapter/KG-BART direction);
* :mod:`repro.neural.evaluate` — hallucination/miss/accuracy accounting by
  popularity band.
"""

from repro.neural.slm import LMAnswer, SimulatedLM
from repro.neural.qa import (
    DualRouterQA,
    KGQA,
    LMQA,
    Question,
    RetrievalAugmentedQA,
    build_question_set,
)
from repro.neural.infusion import infuse_head_knowledge
from repro.neural.evaluate import BandReport, evaluate_qa, evaluate_by_band
from repro.neural.nlq import NaturalLanguageQA, parse_question

__all__ = [
    "NaturalLanguageQA",
    "parse_question",
    "LMAnswer",
    "SimulatedLM",
    "DualRouterQA",
    "KGQA",
    "LMQA",
    "Question",
    "RetrievalAugmentedQA",
    "build_question_set",
    "infuse_head_knowledge",
    "BandReport",
    "evaluate_qa",
    "evaluate_by_band",
]
