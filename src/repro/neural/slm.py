"""The simulated language model (SLM).

A stand-in for GPT-style models in the Sec. 4 experiments.  The SLM is an
associative memory over fact mentions in its training corpus:

* **storage** — counts of (subject surface form, predicate) -> object,
  accumulated from corpus sentences; entities sharing a surface name
  collide in storage, exactly like parametric knowledge does;
* **recall** — probability of retrieving a stored fact grows with its
  mention count (``count / (count + k)``), giving the frequency dependence
  the paper identifies: "LLMs can only learn knowledge when it appears
  often in the training data";
* **failure modes** — when recall fails the model either *abstains* (the
  ~50% "cannot answer" mass) or *confabulates* a plausible object sampled
  from the predicate's global object distribution (the ~20% hallucination
  mass); a stored-but-corrupted fact (name collision, noisy corpus
  association) also surfaces as hallucination, which is why even head
  entities hallucinate (the paper's 21%-for-head surprise);
* **training cutoff** — the corpus is whatever it was trained on; facts
  born later simply do not exist in it (the GPT-4 freshness lag).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.text import TextMention


@dataclass(frozen=True)
class LMAnswer:
    """One SLM response."""

    text: Optional[str]           # None = abstained ("I don't know")
    confidence: float
    from_memory: bool             # True when recalled, False when confabulated

    @property
    def abstained(self) -> bool:
        """True when the model declined to answer."""
        return self.text is None


@dataclass
class SimulatedLM:
    """Associative fact memory with frequency-dependent recall."""

    recall_halfpoint: float = 1.5   # mention count at which recall = 50%
    abstain_bias: float = 0.85      # P(abstain | recall failed)
    association_noise: float = 0.08 # weight of noise-sentence associations
    seed: int = 0
    _memory: Dict[Tuple[str, str], Dict[str, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float)), init=False, repr=False
    )
    _predicate_prior: Dict[str, Dict[str, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float)), init=False, repr=False
    )
    _rng: np.random.Generator = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def fit(self, mentions: Sequence[TextMention]) -> "SimulatedLM":
        """Absorb a corpus (can be called repeatedly; counts accumulate)."""
        for mention in mentions:
            subject = mention.subject_text.lower()
            if mention.predicate is None:
                # Noise co-occurrence leaks weak associations into memory
                # under every predicate the subject is ever asked about —
                # modeled by a small global bump at answer time instead of
                # per-predicate storage; record the co-occurring object.
                self._memory[(subject, "__cooccur__")][mention.object_text] += (
                    self.association_noise
                )
                continue
            self._memory[(subject, mention.predicate)][mention.object_text] += 1.0
            self._predicate_prior[mention.predicate][mention.object_text] += 1.0
        return self

    def familiarity(self, subject: str, predicate: str) -> float:
        """Total stored mention mass for (subject, predicate)."""
        return sum(self._memory.get((subject.lower(), predicate), {}).values())

    def answer(self, subject: str, predicate: str) -> LMAnswer:
        """Answer "what is the <predicate> of <subject>?".

        Deterministic given the model's seed and call sequence.
        """
        key = (subject.lower(), predicate)
        distribution = dict(self._memory.get(key, {}))
        # Noise associations bleed in (weakly) whatever the predicate.
        for obj, weight in self._memory.get((subject.lower(), "__cooccur__"), {}).items():
            distribution[obj] = distribution.get(obj, 0.0) + weight
        strength = sum(distribution.values())
        p_recall = strength / (strength + self.recall_halfpoint)
        if distribution and self._rng.random() < p_recall:
            # Recall succeeds: sample from the (possibly collided) memory.
            objects = sorted(distribution)
            weights = np.array([distribution[obj] for obj in objects])
            probabilities = weights / weights.sum()
            choice = objects[int(self._rng.choice(len(objects), p=probabilities))]
            return LMAnswer(
                text=choice,
                confidence=float(probabilities.max()),
                from_memory=True,
            )
        # Recall failed: abstain or confabulate.
        if self._rng.random() < self.abstain_bias or predicate not in self._predicate_prior:
            return LMAnswer(text=None, confidence=0.0, from_memory=False)
        prior = self._predicate_prior[predicate]
        objects = sorted(prior)
        weights = np.array([prior[obj] for obj in objects])
        probabilities = weights / weights.sum()
        choice = objects[int(self._rng.choice(len(objects), p=probabilities))]
        return LMAnswer(text=choice, confidence=0.1, from_memory=False)

    def n_facts(self) -> int:
        """Number of distinct (subject, predicate) slots in memory."""
        return sum(1 for key in self._memory if key[1] != "__cooccur__")
