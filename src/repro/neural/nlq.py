"""Natural-language factoid questions over the dual KG.

Knowledge-based QA is the paper's first-listed industry success (Sec. 5):
"knowledge-based QA, which improves the way we address people's
information needs".  This module adds the natural-language front end to
the QA strategies of :mod:`repro.neural.qa`:

* template-based question understanding ("who directed X?" ->
  ``(X, directed_by)``), the pattern-matching layer production assistants
  actually shipped with;
* contextual entity disambiguation for homonym subjects ("the Jane Doe
  born in 1975"), reusing
  :class:`~repro.integrate.disambiguation.EntityDisambiguator`;
* answer rendering back to text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.graph import KnowledgeGraph
from repro.integrate.disambiguation import EntityDisambiguator
from repro.neural.qa import Question

#: (regex, predicate) templates.  The subject group is named ``s``;
#: an optional qualifier group ``q`` captures disambiguating context like
#: "born in 1975".
QUESTION_TEMPLATES: Tuple[Tuple[str, str], ...] = (
    (r"^who directed (?P<s>.+?)\??$", "directed_by"),
    (r"^who stars in (?P<s>.+?)\??$", "stars"),
    (r"^who performed (?P<s>.+?)\??$", "performed_by"),
    (r"^when was (?P<s>.+?) released\??$", "release_year"),
    (r"^what year was (?P<s>.+?) released\??$", "release_year"),
    (r"^where was (?P<s>.+?) born\??$", "birth_place"),
    (r"^when was (?P<s>.+?) born\??$", "birth_year"),
    (r"^what genre is (?P<s>.+?)\??$", "genre"),
    (r"^how long is (?P<s>.+?)\??$", "runtime"),
)

_QUALIFIER = re.compile(r"^(?P<s>.+?)\s*\(the one (?P<attr>born in|from)\s+(?P<val>[^)]+)\)$")


@dataclass(frozen=True)
class ParsedQuestion:
    """The structured reading of a natural-language question."""

    subject_mention: str
    predicate: str
    context: Dict[str, object]


def parse_question(text: str) -> Optional[ParsedQuestion]:
    """Template-match a question; returns None when no template fits."""
    normalized = " ".join(text.strip().lower().split())
    for pattern, predicate in QUESTION_TEMPLATES:
        match = re.match(pattern, normalized)
        if match is None:
            continue
        mention = match.group("s").strip()
        context: Dict[str, object] = {}
        qualifier = _QUALIFIER.match(mention)
        if qualifier is not None:
            mention = qualifier.group("s").strip()
            value = qualifier.group("val").strip()
            if qualifier.group("attr") == "born in":
                try:
                    context["birth_year"] = int(value)
                except ValueError:
                    context["birth_place"] = value
            else:
                context["birth_place"] = value
        return ParsedQuestion(subject_mention=mention, predicate=predicate, context=context)
    return None


@dataclass
class NaturalLanguageQA:
    """Question text in, answer text out, over any qa-strategy backend.

    ``backend`` is any object with ``answer(question) -> QAResponse`` from
    :mod:`repro.neural.qa` (KG-only, LM-only, retrieval-augmented, dual).
    The KG is additionally used for mention disambiguation when given.
    """

    backend: object
    graph: Optional[KnowledgeGraph] = None
    _disambiguator: Optional[EntityDisambiguator] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.graph is not None:
            self._disambiguator = EntityDisambiguator(self.graph)

    def answer(self, text: str) -> Optional[str]:
        """Answer a natural-language question, or None when not understood
        or not answerable."""
        parsed = parse_question(text)
        if parsed is None:
            return None
        subject_name = parsed.subject_mention
        subject_id = ""
        if self._disambiguator is not None:
            resolved = self._disambiguator.resolve(
                parsed.subject_mention, context=parsed.context or None
            )
            if resolved is not None:
                subject_id = resolved
                subject_name = self.graph.entity(resolved).name
        question = Question(
            subject_id=subject_id,
            subject_name=subject_name,
            predicate=parsed.predicate,
            gold=(),
            band="unknown",
            resolved=bool(subject_id),
        )
        response = self.backend.answer(question)
        return response.text

    def answer_all(self, texts: Sequence[str]) -> List[Optional[str]]:
        """Batch convenience wrapper."""
        return [self.answer(text) for text in texts]
