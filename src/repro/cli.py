"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # the experiment registry
    python -m repro run FIG2             # run one experiment's benchmark
    python -m repro run all              # run the whole benchmark suite
    python -m repro info T-LLMQA         # claim + bench path for one id
    python -m repro trace FIG4           # traced in-process run -> JSONL
    python -m repro report FIG4A         # traced run -> md/json/prom report
    python -m repro bench                # perf workloads -> BENCH_core.json
    python -m repro bench --quick        # small scales (CI smoke)
    python -m repro serve WORLD          # publish a fixture KG, serve HTTP
    python -m repro loadgen WORLD        # load-test -> BENCH_serve.json

``run`` shells out to pytest with ``--benchmark-only`` so the output is
identical to running the benchmark directly.  ``trace`` instead runs a
compact in-process workload with observability enabled and writes
``results/trace_<id>.jsonl`` (spans plus a final metrics record) next to
a printed per-span summary table.  ``report`` runs the same workload but
writes ``results/report_<id>.md`` / ``.json`` / ``.prom`` — span tree,
metric tables, quality snapshots, lineage samples — and, when a previous
``report_<id>.json`` exists (or ``--baseline`` points at one), diffs the
quality snapshots against it and exits non-zero on regressions.
``bench`` runs the core performance workloads (batch ingestion,
merge-heavy linkage, the query mix, fusion), appends a git-SHA-keyed
entry to the ``BENCH_core.json`` trajectory, and exits non-zero when any
workload's throughput regresses beyond ``--tolerance`` vs the previous
same-mode entry (``--warn-only`` downgrades that to a warning).
``serve`` builds one of the serving fixtures (``WORLD``, ``FIG4A``),
publishes it as an immutable snapshot across ``--shards`` replicas, and
serves the four-route JSON API over HTTP until interrupted (or for
``--duration`` seconds).  ``loadgen`` drives a running server (pass its
URL) or an in-process service (pass a fixture id) with a deterministic
request mix in a closed or open loop, prints throughput and latency
percentiles, and appends an entry to the ``BENCH_serve.json`` trajectory
with the same regression gate as ``bench``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence

from repro.evalx.registry import EXPERIMENTS


def _repo_root() -> str:
    """The repository root: where DESIGN.md and benchmarks/ live."""
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro -> src -> repo root
    return os.path.dirname(os.path.dirname(here))


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the experiment registry."""
    if not EXPERIMENTS:
        print("no experiments registered")
        return 0
    width = max(len(experiment_id) for experiment_id in EXPERIMENTS)
    for experiment_id, experiment in sorted(EXPERIMENTS.items()):
        print(f"{experiment_id:<{width}}  {experiment.paper_reference:<24} {experiment.bench_module}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print one experiment's claim and bench target."""
    experiment = EXPERIMENTS.get(args.experiment_id.upper())
    if experiment is None:
        print(f"unknown experiment id {args.experiment_id!r}; try `list`", file=sys.stderr)
        return 2
    print(f"id:        {experiment.experiment_id}")
    print(f"reference: {experiment.paper_reference}")
    print(f"stage:     {experiment.stage.name.lower()} ({experiment.stage.describe()})")
    print(f"bench:     {experiment.bench_module}")
    print(f"claim:     {experiment.claim}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment's benchmark (or the full suite) via pytest."""
    root = _repo_root()
    if args.experiment_id.lower() == "all":
        target = os.path.join(root, "benchmarks")
    else:
        experiment = EXPERIMENTS.get(args.experiment_id.upper())
        if experiment is None:
            print(f"unknown experiment id {args.experiment_id!r}; try `list`", file=sys.stderr)
            return 2
        target = os.path.join(root, experiment.bench_module)
    command = [
        sys.executable,
        "-m",
        "pytest",
        target,
        "--benchmark-only",
        "-q",
        "-s",
    ]
    print("+ " + " ".join(command))
    return subprocess.call(command, cwd=root)


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment in-process with observability on; write the trace."""
    import json

    from repro.evalx.tables import render_table
    from repro.evalx.tracerun import TRACE_WORKLOADS, run_trace

    experiment_id = args.experiment_id.upper()
    if experiment_id not in TRACE_WORKLOADS:
        print(
            f"no trace workload for experiment {args.experiment_id!r}; "
            f"traceable ids: {', '.join(sorted(TRACE_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    result = run_trace(experiment_id)

    output_path = args.output
    if output_path is None:
        directory = os.path.join(_repo_root(), "results")
        os.makedirs(directory, exist_ok=True)
        output_path = os.path.join(
            directory, f"trace_{experiment_id.lower().replace('-', '_')}.jsonl"
        )
    else:
        parent = os.path.dirname(os.path.abspath(output_path))
        os.makedirs(parent, exist_ok=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        for record in result.spans:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.write(
            json.dumps({"kind": "metrics", **result.snapshot}, sort_keys=True) + "\n"
        )

    print(
        render_table(
            title=f"trace {experiment_id} - per-span summary",
            columns=["span", "calls", "wall_s", "wall_mean_s", "cpu_s"],
            rows=result.span_summary_rows(),
            note=f"{len(result.spans)} spans -> {output_path}",
        )
    )
    counters = result.snapshot.get("counters", {})
    if counters:
        print()
        print(
            render_table(
                title=f"trace {experiment_id} - counters",
                columns=["counter", "value"],
                rows=[[name, value] for name, value in counters.items()],
            )
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Traced run -> report artifacts; exit 1 on baseline regressions."""
    from repro.evalx.report import build_report, load_baseline, write_report
    from repro.evalx.tracerun import TRACE_WORKLOADS, run_trace
    from repro.obs.quality import RegressionThresholds

    experiment_id = args.experiment_id.upper()
    if experiment_id not in TRACE_WORKLOADS:
        print(
            f"no trace workload for experiment {args.experiment_id!r}; "
            f"traceable ids: {', '.join(sorted(TRACE_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2

    directory = args.output_dir or os.path.join(_repo_root(), "results")
    basename = f"report_{experiment_id.lower().replace('-', '_')}"
    baseline_path = args.baseline or os.path.join(directory, f"{basename}.json")
    baseline = load_baseline(baseline_path)

    result = run_trace(experiment_id)
    thresholds = RegressionThresholds(relative_tolerance=args.relative_tolerance)
    report = build_report(
        result,
        baseline=baseline,
        baseline_path=baseline_path if baseline is not None else None,
        thresholds=thresholds,
    )
    paths = write_report(report, directory, basename=basename)

    print(f"report {experiment_id}:")
    for kind in ("markdown", "json", "prometheus"):
        print(f"  {kind:<10} {paths[kind]}")
    if baseline is None:
        print("no baseline found; this run is the new baseline")
        return 0
    if report.has_regressions:
        print(
            f"{report.n_regressions} quality regression(s) vs {baseline_path}",
            file=sys.stderr,
        )
        for diff in report.diffs:
            for delta in diff.regressions:
                print(
                    f"  {diff.snapshot_name}: {delta.metric} "
                    f"{delta.baseline} -> {delta.current}",
                    file=sys.stderr,
                )
        return 1
    print(f"no regressions vs {baseline_path}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the core perf workloads; append a BENCH_core.json trajectory entry."""
    from repro.evalx import bench
    from repro.evalx.tables import render_table

    run = bench.run_bench(
        quick=args.quick, workloads=args.workload or None, repeats=args.repeats
    )
    entry = run.to_entry()
    output_path = args.output or os.path.join(_repo_root(), bench.TRAJECTORY_BASENAME)
    document = bench.load_trajectory(output_path)
    baseline = bench.previous_entry(document, quick=args.quick)
    bench.append_entry(output_path, entry)

    rows = []
    for name, result in sorted(run.results.items()):
        speedup = result.speedup_vs_naive
        rows.append(
            [
                name,
                result.n_ops,
                f"{result.wall_s:.4f}",
                f"{result.ops_per_s:.1f}",
                f"{speedup:.2f}x" if speedup is not None else "-",
            ]
        )
    mode = "quick" if args.quick else "full"
    print(
        render_table(
            title=f"bench core ({mode}) @ {entry['git_sha'][:12]}",
            columns=["workload", "ops", "wall_s", "ops_per_s", "vs_naive"],
            rows=rows,
            note=f"entry {len(document['entries']) + 1} -> {output_path}",
        )
    )
    regressions = bench.check_regressions(entry, baseline, tolerance=args.tolerance)
    if not regressions:
        if baseline is None:
            print("no previous same-mode entry; this run starts the trajectory")
        else:
            print(
                f"no regressions beyond {args.tolerance:.0%} vs entry "
                f"{baseline.get('git_sha', 'unknown')[:12]}"
            )
        return 0
    stream = sys.stdout if args.warn_only else sys.stderr
    print(
        f"{len(regressions)} throughput regression(s) beyond {args.tolerance:.0%}:",
        file=stream,
    )
    for regression in regressions:
        print(f"  {regression.describe()}", file=stream)
    if args.warn_only:
        print("warn-only mode: not failing the run")
        return 0
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Publish a fixture snapshot and serve the JSON API over HTTP."""
    import time

    from repro.obs import profiling
    from repro.serve.context import AccessLog
    from repro.serve.server import start_server
    from repro.serve.service import SERVE_FIXTURES, build_fixture_service

    fixture_id = args.fixture_id.upper()
    if fixture_id not in SERVE_FIXTURES:
        print(
            f"unknown serve fixture {args.fixture_id!r}; "
            f"available: {', '.join(sorted(SERVE_FIXTURES))}",
            file=sys.stderr,
        )
        return 2
    scale = "quick" if args.quick else "full"
    print(f"building fixture {fixture_id} ({scale}, {args.shards} shard(s))...")
    service = build_fixture_service(
        fixture_id, n_shards=args.shards, scale=scale, with_lm=not args.no_lm
    )
    # A server someone deliberately started should be observable out of
    # the box: /metrics and /statusz are live surfaces, and head sampling
    # keeps the per-request cost inside the <5% budget.
    if not args.no_obs:
        profiling.enable()
    service.trace_sample = args.trace_sample
    if args.access_log:
        service.access_log = AccessLog(args.access_log, sample=args.access_log_sample)
    server, _thread = start_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    snapshot = service.store.current()
    assert snapshot is not None
    print(
        f"serving {fixture_id} snapshot v{snapshot.version} "
        f"({len(snapshot.graph)} triples, {args.shards} shard(s)) "
        f"on http://{host}:{port}"
    )
    if args.access_log:
        print(f"access log -> {args.access_log}")
    print(
        "routes: /lookup /paths /query /ask /stats /statusz /metrics /healthz"
        "  (Ctrl-C to stop)"
    )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if service.access_log is not None:
            service.access_log.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Load-test a server (URL) or fixture (id); extend BENCH_serve.json."""
    from repro.evalx import loadgen
    from repro.evalx.tables import render_table
    from repro.serve.server import HTTPClient, InProcessClient

    target = args.target
    if target.startswith("http://") or target.startswith("https://"):
        if args.obs_compare:
            print(
                "--obs-compare needs an in-process fixture target (it must "
                "flip observability on the service it is measuring)",
                file=sys.stderr,
            )
            return 2
        client = HTTPClient(target)
        where = target
    else:
        from repro.serve.service import SERVE_FIXTURES, build_fixture_service

        fixture_id = target.upper()
        if fixture_id not in SERVE_FIXTURES:
            print(
                f"loadgen target must be a URL or a fixture id "
                f"({', '.join(sorted(SERVE_FIXTURES))}); got {target!r}",
                file=sys.stderr,
            )
            return 2
        scale = "quick" if args.quick else "full"
        if args.obs_compare:
            return _loadgen_obs_compare(args, fixture_id, scale)
        print(f"building fixture {fixture_id} ({scale}, {args.shards} shard(s))...")
        service = build_fixture_service(fixture_id, n_shards=args.shards, scale=scale)
        client = InProcessClient(service)
        where = f"in-process {fixture_id}"

    report = loadgen.run_loadgen(
        client,
        duration_s=args.duration,
        mode=args.mode,
        rps=args.rps,
        concurrency=args.concurrency,
        seed=args.seed,
    )

    rows = []
    for route in sorted({outcome.route for outcome in report.outcomes}):
        summary = report.latency_summary(route)
        rows.append(
            [
                route,
                summary["n"],
                f"{summary['n'] / report.duration_s:.1f}",
                f"{summary['p50_ms']:.2f}",
                f"{summary['p95_ms']:.2f}",
                f"{summary['p99_ms']:.2f}",
            ]
        )
    overall = report.latency_summary()
    rows.append(
        [
            "overall",
            report.n_requests,
            f"{report.throughput_rps:.1f}",
            f"{overall['p50_ms']:.2f}",
            f"{overall['p95_ms']:.2f}",
            f"{overall['p99_ms']:.2f}",
        ]
    )
    print(
        render_table(
            title=f"loadgen {args.mode} loop vs {where} ({report.duration_s:.1f}s)",
            columns=["route", "n", "rps", "p50_ms", "p95_ms", "p99_ms"],
            rows=rows,
            note=(
                f"statuses {report.status_counts()} "
                f"degraded {report.degraded_counts() or '{}'} "
                f"5xx {report.n_server_errors}"
            ),
        )
    )

    output_path = args.output or os.path.join(_repo_root(), loadgen.TRAJECTORY_BASENAME)
    entry, regressions = loadgen.record_trajectory(
        report, output_path, tolerance=args.tolerance
    )
    print(f"trajectory entry ({'quick' if entry['quick'] else 'full'}) -> {output_path}")
    exit_code = 0
    if report.n_server_errors:
        print(f"{report.n_server_errors} server error(s) (5xx)", file=sys.stderr)
        exit_code = 1
    if regressions:
        print(
            f"{len(regressions)} throughput regression(s) beyond {args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for regression in regressions:
            print(f"  {regression.describe()}", file=sys.stderr)
        exit_code = 1
    if args.warn_only and exit_code:
        print("warn-only mode: not failing the run")
        return 0
    return exit_code


def _loadgen_obs_compare(args: argparse.Namespace, fixture_id: str, scale: str) -> int:
    """Back-to-back obs-off/obs-on closed loops; gate the p95 overhead.

    Both runs append to the trajectory (tagged ``"obs": "off"/"on"``), so
    ``BENCH_serve.json`` carries the overhead evidence alongside the
    regular entries.
    """
    from repro.evalx import loadgen
    from repro.evalx.tables import render_table
    from repro.serve.admission import AdmissionController
    from repro.serve.service import build_fixture_service

    # Wide-open admission: a closed loop saturates the default ladder into
    # ~100% sheds, and sheds are force-sampled by design — that measures
    # the always-on shed-trace path, not the serving overhead the gate is
    # about.
    def build():
        return build_fixture_service(
            fixture_id,
            n_shards=args.shards,
            scale=scale,
            admission=AdmissionController(rate=1_000_000.0, max_concurrent=64),
        )

    # Many short interleaved rounds beat few long ones: single-core VMs
    # jitter in scheduler epochs that span seconds, and fine interleaving
    # spreads each epoch across both labels before pooling.
    rounds = 9
    round_duration = max(0.5, args.duration / 3.0)
    print(
        f"obs-compare: {rounds} interleaved off/on {round_duration:.1f}s "
        f"single-worker closed-loop rounds over HTTP vs fresh {fixture_id} "
        f"({scale}, {args.shards} shard(s))..."
    )
    comparison = loadgen.measure_obs_overhead(
        build,
        duration_s=round_duration,
        seed=args.seed,
        max_p95_overhead=args.max_obs_overhead,
        rounds=rounds,
    )
    rows = []
    for label in ("off", "on"):
        report = comparison[label]
        overall = report.latency_summary()
        rows.append(
            [
                f"obs {label}",
                report.n_requests,
                f"{report.throughput_rps:.1f}",
                f"{overall['p50_ms']:.2f}",
                f"{overall['p95_ms']:.2f}",
                f"{overall['p99_ms']:.2f}",
            ]
        )
    print(
        render_table(
            title=f"loadgen obs-compare vs in-process {fixture_id}",
            columns=["run", "n", "rps", "p50_ms", "p95_ms", "p99_ms"],
            rows=rows,
            note=(
                f"pooled p95 overhead {comparison['p95_overhead']:+.1%} "
                f"(gate {comparison['max_p95_overhead']:.0%}; rounds "
                + ", ".join(f"{o:+.1%}" for o in comparison["round_overheads"])
                + ")"
            ),
        )
    )
    output_path = args.output or os.path.join(_repo_root(), loadgen.TRAJECTORY_BASENAME)
    for label in ("off", "on"):
        entry, _regressions = loadgen.record_trajectory(
            comparison[label], output_path, tolerance=args.tolerance
        )
        print(f"trajectory entry (obs {label}) -> {output_path}")
    if comparison["passed"]:
        print(
            f"observability overhead within budget: "
            f"{comparison['p95_overhead']:+.1%} p95"
        )
        return 0
    print(
        f"observability overhead {comparison['p95_overhead']:+.1%} p95 exceeds "
        f"the {comparison['max_p95_overhead']:.0%} gate",
        file=sys.stderr,
    )
    if args.warn_only:
        print("warn-only mode: not failing the run")
        return 0
    return 1


def cmd_slo(args: argparse.Namespace) -> int:
    """Print a serving endpoint's SLO summary; optionally gate on burn."""
    from repro.evalx.tables import render_table

    target = args.target
    if target.startswith("http://") or target.startswith("https://"):
        from repro.serve.server import HTTPClient

        status_code, payload = HTTPClient(target).statusz()
        if status_code != 200:
            print(f"/statusz returned {status_code}: {payload}", file=sys.stderr)
            return 2
        where = target
    else:
        from repro.evalx import loadgen
        from repro.obs import profiling
        from repro.serve.server import InProcessClient
        from repro.serve.service import SERVE_FIXTURES, build_fixture_service

        fixture_id = target.upper()
        if fixture_id not in SERVE_FIXTURES:
            print(
                f"slo target must be a URL or a fixture id "
                f"({', '.join(sorted(SERVE_FIXTURES))}); got {target!r}",
                file=sys.stderr,
            )
            return 2
        scale = "quick" if args.quick else "full"
        print(f"building fixture {fixture_id} ({scale}, {args.shards} shard(s))...")
        service = build_fixture_service(fixture_id, n_shards=args.shards, scale=scale)
        previous_enabled = profiling.enabled()
        profiling.reset_all()
        profiling.enable()
        try:
            print(f"driving {args.duration:.0f}s of traffic to fill the SLO window...")
            loadgen.run_loadgen(
                InProcessClient(service),
                duration_s=args.duration,
                mode="closed",
                concurrency=args.concurrency,
                seed=args.seed,
            )
            payload = service.statusz()
        finally:
            if not previous_enabled:
                profiling.disable()
        where = f"in-process {fixture_id}"

    slo = payload.get("slo", {}) if isinstance(payload, dict) else {}
    routes = slo.get("routes", {}) if isinstance(slo, dict) else {}
    rows = [
        [
            route,
            block.get("requests", 0),
            block.get("rate_rps", 0.0),
            block.get("errors", 0),
            block.get("shed", 0),
            block.get("degraded", 0),
            f"{block.get('p95_ms', 0.0):.2f}",
            f"{block.get('budget_burn_rate', 0.0):.2f}",
            "yes" if block.get("burning") else "no",
        ]
        for route, block in sorted(routes.items())
    ]
    print(
        render_table(
            title=f"slo {where} (window {slo.get('window_s', '?')}s)",
            columns=[
                "route", "req", "rps", "err", "shed", "degr", "p95_ms", "burn", "burning",
            ],
            rows=rows or [["(no routes)", 0, 0, 0, 0, 0, "-", "-", "-"]],
            note=(
                f"degradation level {payload.get('degradation_level', '?')}; "
                f"snapshot v{payload.get('snapshot_version', '?')}; "
                f"worst burn {slo.get('worst_burn_rate', 0.0)}"
            ),
        )
    )
    worst_burn = float(slo.get("worst_burn_rate", 0.0) or 0.0)
    if args.fail_on_burn and worst_burn > args.burn_threshold:
        print(
            f"error budget burning: worst burn rate {worst_burn} exceeds "
            f"threshold {args.burn_threshold}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Generations of Knowledge Graphs' (VLDB 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.set_defaults(func=cmd_list)

    info_parser = subparsers.add_parser("info", help="describe one experiment")
    info_parser.add_argument("experiment_id")
    info_parser.set_defaults(func=cmd_info)

    run_parser = subparsers.add_parser("run", help="run an experiment's benchmark")
    run_parser.add_argument("experiment_id", help="an experiment id, or 'all'")
    run_parser.set_defaults(func=cmd_run)

    trace_parser = subparsers.add_parser(
        "trace", help="run an experiment in-process and write a JSONL trace"
    )
    trace_parser.add_argument("experiment_id", help="a traceable experiment id")
    trace_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="trace file path (default: results/trace_<id>.jsonl)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    report_parser = subparsers.add_parser(
        "report", help="run an experiment and write md/json/prom run reports"
    )
    report_parser.add_argument("experiment_id", help="a traceable experiment id")
    report_parser.add_argument(
        "-o",
        "--output-dir",
        default=None,
        help="directory for report artifacts (default: results/)",
    )
    report_parser.add_argument(
        "--baseline",
        default=None,
        help="baseline report JSON to diff against "
        "(default: the existing report_<id>.json in the output directory)",
    )
    report_parser.add_argument(
        "--relative-tolerance",
        type=float,
        default=0.02,
        help="allowed relative drop in count-like quality metrics (default: 0.02)",
    )
    report_parser.set_defaults(func=cmd_report)

    bench_parser = subparsers.add_parser(
        "bench", help="run core perf workloads and extend BENCH_core.json"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="small scales, one repeat (CI smoke)"
    )
    bench_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="trajectory file (default: BENCH_core.json at the repo root)",
    )
    bench_parser.add_argument(
        "--workload",
        action="append",
        default=None,
        help="run only this workload (repeatable; default: all)",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per workload, best-of wins (default: 3, quick: 1)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative throughput drop vs the previous entry (default: 0.20)",
    )
    bench_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions but exit 0 (PR smoke mode)",
    )
    bench_parser.set_defaults(func=cmd_bench)

    serve_parser = subparsers.add_parser(
        "serve", help="publish a fixture KG snapshot and serve the JSON API"
    )
    serve_parser.add_argument("fixture_id", help="a serve fixture id (WORLD, FIG4A)")
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "-p", "--port", type=int, default=8901, help="port (0 = OS-assigned; default: 8901)"
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1, help="read-replica shard count (default: 1)"
    )
    serve_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then exit (default: until Ctrl-C)",
    )
    serve_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale (CI smoke)"
    )
    serve_parser.add_argument(
        "--no-lm", action="store_true", help="skip the LM; `ask` answers KG-only"
    )
    serve_parser.add_argument(
        "--no-obs",
        action="store_true",
        help="do not enable observability (spans, SLO windows, /metrics stay empty)",
    )
    serve_parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        help="head-sampling rate for request traces "
        "(default: REPRO_TRACE_SAMPLE env or 0.01)",
    )
    serve_parser.add_argument(
        "--access-log",
        default=None,
        help="write a structured JSONL access log to this path (default: off)",
    )
    serve_parser.add_argument(
        "--access-log-sample",
        type=float,
        default=1.0,
        help="fraction of OK requests logged; shed/error always logged (default: 1.0)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    loadgen_parser = subparsers.add_parser(
        "loadgen", help="load-test a serving endpoint and extend BENCH_serve.json"
    )
    loadgen_parser.add_argument(
        "target", help="a server URL (http://...) or a fixture id for in-process"
    )
    loadgen_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed loop (back-to-back workers) or open loop (scheduled arrivals)",
    )
    loadgen_parser.add_argument(
        "--rps", type=float, default=100.0, help="open-loop arrival rate (default: 100)"
    )
    loadgen_parser.add_argument(
        "--duration", type=float, default=10.0, help="seconds to run (default: 10)"
    )
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=8, help="worker threads (default: 8)"
    )
    loadgen_parser.add_argument(
        "--shards", type=int, default=1, help="shards for in-process targets (default: 1)"
    )
    loadgen_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale for in-process targets"
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=31, help="request-plan seed (default: 31)"
    )
    loadgen_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="trajectory file (default: BENCH_serve.json at the repo root)",
    )
    loadgen_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative throughput drop vs the previous entry (default: 0.20)",
    )
    loadgen_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions/errors but exit 0 (PR smoke mode)",
    )
    loadgen_parser.add_argument(
        "--obs-compare",
        action="store_true",
        help="run obs-off then obs-on closed loops against fresh fixtures and "
        "gate the p95 latency overhead (in-process targets only)",
    )
    loadgen_parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="allowed relative p95 overhead for --obs-compare (default: 0.05)",
    )
    loadgen_parser.set_defaults(func=cmd_loadgen)

    slo_parser = subparsers.add_parser(
        "slo", help="print a serving endpoint's rolling SLO summary"
    )
    slo_parser.add_argument(
        "target", help="a server URL (scrapes /statusz) or a fixture id "
        "(drives in-process traffic first)"
    )
    slo_parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="seconds of traffic to drive for fixture targets (default: 5)",
    )
    slo_parser.add_argument(
        "--concurrency", type=int, default=8, help="worker threads (default: 8)"
    )
    slo_parser.add_argument(
        "--shards", type=int, default=1, help="shards for fixture targets (default: 1)"
    )
    slo_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale (CI smoke)"
    )
    slo_parser.add_argument(
        "--seed", type=int, default=31, help="request-plan seed (default: 31)"
    )
    slo_parser.add_argument(
        "--fail-on-burn",
        action="store_true",
        help="exit non-zero when the worst burn rate exceeds --burn-threshold",
    )
    slo_parser.add_argument(
        "--burn-threshold",
        type=float,
        default=1.0,
        help="burn-rate threshold for --fail-on-burn (default: 1.0)",
    )
    slo_parser.set_defaults(func=cmd_slo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
