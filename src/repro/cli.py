"""Command-line interface: list and run the paper's experiments.

Usage::

    python -m repro list                 # the experiment registry
    python -m repro run FIG2             # run one experiment's benchmark
    python -m repro run all              # run the whole benchmark suite
    python -m repro info T-LLMQA         # claim + bench path for one id
    python -m repro trace FIG4           # traced in-process run -> JSONL
    python -m repro report FIG4A         # traced run -> md/json/prom report
    python -m repro bench                # perf workloads -> BENCH_core.json
    python -m repro bench --quick        # small scales (CI smoke)
    python -m repro runs list            # the persistent run registry
    python -m repro runs drift           # trajectory drift check (median+MAD)
    python -m repro serve WORLD          # publish a fixture KG, serve HTTP
    python -m repro loadgen WORLD        # load-test -> BENCH_serve.json

``run`` shells out to pytest with ``--benchmark-only`` so the output is
identical to running the benchmark directly.  ``trace`` instead runs a
compact in-process workload with observability enabled and writes
``results/trace_<id>.jsonl`` (spans plus a final metrics record) next to
a printed per-span summary table.  ``report`` runs the same workload but
writes ``results/report_<id>.md`` / ``.json`` / ``.prom`` — span tree,
metric tables, quality snapshots, lineage samples — and, when a previous
``report_<id>.json`` exists (or ``--baseline`` points at one), diffs the
quality snapshots against it and exits non-zero on regressions.
``trace``, ``report``, and ``bench`` each also append one record (git
SHA, per-stage wall/CPU, peak RSS, quality snapshots, flat metrics) to
the persistent run registry under ``results/runs/``, which ``runs
[list|show|diff|drift]`` queries — ``drift`` scores the latest run
against the rolling median+MAD trajectory and exits non-zero when a
metric drops off it, and ``report`` applies the same check as a second
regression gate.
``bench`` runs the core performance workloads (batch ingestion,
merge-heavy linkage, the query mix, fusion), appends a git-SHA-keyed
entry to the ``BENCH_core.json`` trajectory, and exits non-zero when any
workload's throughput regresses beyond ``--tolerance`` vs the previous
same-mode entry (``--warn-only`` downgrades that to a warning).
``serve`` builds one of the serving fixtures (``WORLD``, ``FIG4A``),
publishes it as an immutable snapshot across ``--shards`` replicas, and
serves the four-route JSON API over HTTP until interrupted (or for
``--duration`` seconds).  ``loadgen`` drives a running server (pass its
URL) or an in-process service (pass a fixture id) with a deterministic
request mix in a closed or open loop, prints throughput and latency
percentiles, and appends an entry to the ``BENCH_serve.json`` trajectory
with the same regression gate as ``bench``.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence

from repro.evalx.registry import EXPERIMENTS


def _repo_root() -> str:
    """The repository root: where DESIGN.md and benchmarks/ live."""
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro -> src -> repo root
    return os.path.dirname(os.path.dirname(here))


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the experiment registry."""
    if not EXPERIMENTS:
        print("no experiments registered")
        return 0
    width = max(len(experiment_id) for experiment_id in EXPERIMENTS)
    for experiment_id, experiment in sorted(EXPERIMENTS.items()):
        print(f"{experiment_id:<{width}}  {experiment.paper_reference:<24} {experiment.bench_module}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print one experiment's claim and bench target."""
    experiment = EXPERIMENTS.get(args.experiment_id.upper())
    if experiment is None:
        print(f"unknown experiment id {args.experiment_id!r}; try `list`", file=sys.stderr)
        return 2
    print(f"id:        {experiment.experiment_id}")
    print(f"reference: {experiment.paper_reference}")
    print(f"stage:     {experiment.stage.name.lower()} ({experiment.stage.describe()})")
    print(f"bench:     {experiment.bench_module}")
    print(f"claim:     {experiment.claim}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment's benchmark (or the full suite) via pytest."""
    root = _repo_root()
    if args.experiment_id.lower() == "all":
        target = os.path.join(root, "benchmarks")
    else:
        experiment = EXPERIMENTS.get(args.experiment_id.upper())
        if experiment is None:
            print(f"unknown experiment id {args.experiment_id!r}; try `list`", file=sys.stderr)
            return 2
        target = os.path.join(root, experiment.bench_module)
    command = [
        sys.executable,
        "-m",
        "pytest",
        target,
        "--benchmark-only",
        "-q",
        "-s",
    ]
    print("+ " + " ".join(command))
    return subprocess.call(command, cwd=root)


def _print_trace_summary(result, note: str) -> None:
    """The per-span summary + counters tables both trace paths print."""
    from repro.evalx.tables import render_table

    print(
        render_table(
            title=f"trace {result.experiment_id} - per-span summary",
            columns=["span", "calls", "wall_s", "wall_mean_s", "cpu_s"],
            rows=result.span_summary_rows(),
            note=note,
        )
    )
    counters = result.snapshot.get("counters", {})
    if counters:
        print()
        print(
            render_table(
                title=f"trace {result.experiment_id} - counters",
                columns=["counter", "value"],
                rows=[[name, value] for name, value in counters.items()],
            )
        )


def _append_run_record(args: argparse.Namespace, record) -> None:
    """Append one RunRecord to the persistent registry (unless --no-runs)."""
    from repro.obs import runs

    if getattr(args, "no_runs", False):
        return
    directory = getattr(args, "runs_dir", None) or runs.default_runs_dir(
        os.path.join(_repo_root(), "results")
    )
    registry = runs.RunRegistry(directory)
    registry.append(record)
    print(f"run {record.run_id} -> {registry.path}")


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment in-process with observability on; write the trace."""
    import json

    from repro.evalx.tracerun import TRACE_WORKLOADS, TraceResult, run_trace

    experiment_id = args.experiment_id.upper()

    if args.from_file is not None:
        # Inspection mode: summarize an existing trace file, run nothing.
        from repro.evalx.report import ReportInputError, load_trace_file

        try:
            loaded = load_trace_file(args.from_file)
        except ReportInputError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        snapshot = {
            key: value for key, value in loaded["metrics"].items() if key != "kind"
        }
        result = TraceResult(
            experiment_id=experiment_id, spans=loaded["spans"], snapshot=snapshot
        )
        _print_trace_summary(
            result, note=f"{len(result.spans)} spans <- {args.from_file}"
        )
        return 0

    if experiment_id not in TRACE_WORKLOADS:
        print(
            f"no trace workload for experiment {args.experiment_id!r}; "
            f"traceable ids: {', '.join(sorted(TRACE_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    result = run_trace(
        experiment_id,
        progress_log=args.progress_log,
        progress_tty=args.progress,
    )

    output_path = args.output
    if output_path is None:
        directory = os.path.join(_repo_root(), "results")
        os.makedirs(directory, exist_ok=True)
        output_path = os.path.join(
            directory, f"trace_{experiment_id.lower().replace('-', '_')}.jsonl"
        )
    else:
        parent = os.path.dirname(os.path.abspath(output_path))
        os.makedirs(parent, exist_ok=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        for record in result.spans:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.write(
            json.dumps({"kind": "metrics", **result.snapshot}, sort_keys=True) + "\n"
        )

    _print_trace_summary(result, note=f"{len(result.spans)} spans -> {output_path}")

    from repro.obs import profiling, runs

    _append_run_record(
        args,
        runs.RunRecord(
            kind="trace",
            experiment_id=experiment_id,
            config={"output": output_path},
            stages=runs.stages_from_spans(result.spans),
            resources=profiling.rusage(),
            quality=[dict(record) for record in result.quality],
            metrics={
                f"counter.{name}": float(value)
                for name, value in result.snapshot.get("counters", {}).items()
            },
        ),
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Traced run -> report artifacts; exit 1 on baseline or drift regressions."""
    from repro.evalx.report import (
        ReportInputError,
        build_report,
        load_baseline,
        write_report,
    )
    from repro.evalx.tracerun import TRACE_WORKLOADS, run_trace
    from repro.obs.quality import RegressionThresholds

    experiment_id = args.experiment_id.upper()
    if experiment_id not in TRACE_WORKLOADS:
        print(
            f"no trace workload for experiment {args.experiment_id!r}; "
            f"traceable ids: {', '.join(sorted(TRACE_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2

    directory = args.output_dir or os.path.join(_repo_root(), "results")
    basename = f"report_{experiment_id.lower().replace('-', '_')}"
    baseline_path = args.baseline or os.path.join(directory, f"{basename}.json")
    try:
        baseline = load_baseline(baseline_path)
    except ReportInputError as exc:
        print(str(exc), file=sys.stderr)
        return 1

    result = run_trace(
        experiment_id,
        progress_log=args.progress_log,
        progress_tty=args.progress,
    )
    thresholds = RegressionThresholds(relative_tolerance=args.relative_tolerance)
    report = build_report(
        result,
        baseline=baseline,
        baseline_path=baseline_path if baseline is not None else None,
        thresholds=thresholds,
    )
    paths = write_report(report, directory, basename=basename)

    print(f"report {experiment_id}:")
    for kind in ("markdown", "json", "prometheus"):
        print(f"  {kind:<10} {paths[kind]}")

    # The second regression gate: this run vs the registry *trajectory*
    # (rolling median + MAD), which catches slow drift the single-baseline
    # diff above cannot see.
    drift_alerts = []
    if not args.no_runs:
        from repro.obs import profiling, runs

        runs_dir = args.runs_dir or runs.default_runs_dir(directory)
        registry = runs.RunRegistry(runs_dir)
        record = registry.append(
            runs.RunRecord(
                kind="report",
                experiment_id=experiment_id,
                config={"baseline": baseline_path if baseline is not None else None},
                stages=runs.stages_from_spans(result.spans),
                resources=profiling.rusage(),
                quality=[dict(q) for q in result.quality],
                metrics={
                    f"counter.{name}": float(value)
                    for name, value in result.snapshot.get("counters", {}).items()
                },
            )
        )
        print(f"run {record.run_id} -> {registry.path}")
        drift_alerts = registry.drift(
            experiment_id=experiment_id,
            window=args.drift_window,
            threshold=args.drift_threshold,
        )

    exit_code = 0
    if baseline is None:
        print("no baseline found; this run is the new baseline")
    elif report.has_regressions:
        print(
            f"{report.n_regressions} quality regression(s) vs {baseline_path}",
            file=sys.stderr,
        )
        for diff in report.diffs:
            for delta in diff.regressions:
                print(
                    f"  {diff.snapshot_name}: {delta.metric} "
                    f"{delta.baseline} -> {delta.current}",
                    file=sys.stderr,
                )
        exit_code = 1
    else:
        print(f"no regressions vs {baseline_path}")

    drops = [alert for alert in drift_alerts if alert.direction == "drop"]
    if drops:
        print(
            f"{len(drops)} metric(s) drifted below the registry trajectory "
            f"(|z| > {args.drift_threshold:g}):",
            file=sys.stderr,
        )
        for alert in drops:
            print(f"  {alert.describe()}", file=sys.stderr)
        exit_code = 1
    for alert in drift_alerts:
        if alert.direction == "rise":
            print(f"drift (rise, not gating): {alert.describe()}")
    return exit_code


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the core perf workloads; append a BENCH_core.json trajectory entry."""
    from repro.evalx import bench
    from repro.evalx.tables import render_table

    run = bench.run_bench(
        quick=args.quick, workloads=args.workload or None, repeats=args.repeats
    )
    entry = run.to_entry()
    output_path = args.output or os.path.join(_repo_root(), bench.TRAJECTORY_BASENAME)
    document = bench.load_trajectory(output_path)
    baseline = bench.previous_entry(document, quick=args.quick)
    bench.append_entry(output_path, entry)

    rows = []
    for name, result in sorted(run.results.items()):
        speedup = result.speedup_vs_naive
        rows.append(
            [
                name,
                result.n_ops,
                f"{result.wall_s:.4f}",
                f"{result.ops_per_s:.1f}",
                f"{speedup:.2f}x" if speedup is not None else "-",
            ]
        )
    mode = "quick" if args.quick else "full"
    print(
        render_table(
            title=f"bench core ({mode}) @ {entry['git_sha'][:12]}",
            columns=["workload", "ops", "wall_s", "ops_per_s", "vs_naive"],
            rows=rows,
            note=f"entry {len(document['entries']) + 1} -> {output_path}",
        )
    )

    from repro.obs import profiling, runs

    _append_run_record(
        args,
        runs.RunRecord(
            kind="bench",
            experiment_id=f"BENCH-{mode.upper()}",
            config={
                "quick": bool(args.quick),
                "repeats": args.repeats,
                "workloads": sorted(run.results),
            },
            resources=profiling.rusage(),
            metrics={
                f"{name}.ops_per_s": float(result.ops_per_s)
                for name, result in run.results.items()
            },
        ),
    )

    regressions = bench.check_regressions(entry, baseline, tolerance=args.tolerance)
    if not regressions:
        if baseline is None:
            print("no previous same-mode entry; this run starts the trajectory")
        else:
            print(
                f"no regressions beyond {args.tolerance:.0%} vs entry "
                f"{baseline.get('git_sha', 'unknown')[:12]}"
            )
        return 0
    stream = sys.stdout if args.warn_only else sys.stderr
    print(
        f"{len(regressions)} throughput regression(s) beyond {args.tolerance:.0%}:",
        file=stream,
    )
    for regression in regressions:
        print(f"  {regression.describe()}", file=stream)
    if args.warn_only:
        print("warn-only mode: not failing the run")
        return 0
    return 1


def _graph_public_state(graph):
    """Backend-agnostic observable graph state (query answers, provenance,
    entities) — the same surface the equivalence tests pin."""
    graph._materialize_provenance()
    triples = sorted(graph.query(), key=lambda t: t._sort_key())
    return {
        "triples": triples,
        "provenance": {
            triple: records
            for triple in triples
            if (records := graph.provenance(triple))
        },
        "entities": sorted(
            (e.entity_id, e.name, e.entity_class, tuple(sorted(e.aliases)))
            for e in graph.entities()
        ),
    }


def _run_partitioned_build(args: argparse.Namespace, partitions: int):
    """One partitioned fixture build under a fresh observability scope.

    Returns ``(pipeline, context, wall_s, ledger_state, n_records)`` —
    everything ``cmd_build`` needs for reporting and the ``--check-equal``
    comparison.  Each call resets global observability state so two builds
    in one process (the N-shard run and its single-shard reference) record
    independent, comparable ledgers.
    """
    import time

    from repro.core.partition import (
        build_context,
        fixture_sources,
        partitioned_pipeline,
    )
    from repro.obs import enabled_scope, reset_all
    from repro.obs.lineage import get_ledger

    sources = fixture_sources(
        n_people=args.people, n_movies=args.movies, seed=args.seed
    )
    n_records = sum(len(source) for source in sources)
    reset_all()
    with enabled_scope():
        pipeline, context = partitioned_pipeline(sources, name="build")
        started = time.perf_counter()
        context = pipeline.run(context, partitions=partitions)
        wall_s = time.perf_counter() - started
        ledger_state = get_ledger().export_state()
    return pipeline, context, wall_s, ledger_state, n_records


def cmd_build(args: argparse.Namespace) -> int:
    """Partition-parallel fixture build; optionally prove it shard-invariant."""
    from repro.evalx.tables import render_table

    if args.partitions < 1:
        print("--partitions must be a positive integer", file=sys.stderr)
        return 2

    pipeline, context, wall_s, ledger_state, n_records = _run_partitioned_build(
        args, args.partitions
    )
    graph = context.artifacts["kg"]
    outcome = context.artifacts["exchange"]

    rows = []
    for report in pipeline.reports:
        rows.append([report.stage_name, f"{report.seconds:.4f}"])
    print(
        render_table(
            title=f"build --partitions {args.partitions}",
            columns=["stage", "seconds"],
            rows=rows,
            note=(
                f"{n_records} records -> {outcome.stats['n_triples']} triples, "
                f"{outcome.stats['n_entities']} entities in {wall_s:.3f}s "
                f"({n_records / wall_s:.0f} records/s)"
            ),
        )
    )

    equal = None
    if args.check_equal:
        import tempfile

        from repro.core import codec

        _, reference, _, reference_ledger, _ = _run_partitioned_build(args, 1)
        reference_graph = reference.artifacts["kg"]

        def snapshot_bytes(g) -> bytes:
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "check.rkgs")
                codec.save_graph(g, path, include_lineage=False)
                with open(path, "rb") as handle:
                    return handle.read()

        checks = {
            "state": _graph_public_state(graph)
            == _graph_public_state(reference_graph),
            "lineage": ledger_state == reference_ledger,
            "snapshot_bytes": snapshot_bytes(graph)
            == snapshot_bytes(reference_graph),
        }
        equal = all(checks.values())
        for name, ok in checks.items():
            print(f"check {name}: {'equal' if ok else 'DIFFERS'}")
        if equal:
            print(
                f"partitions={args.partitions} is byte-identical to the "
                "single-shard build"
            )
        else:
            print(
                f"partitions={args.partitions} DIVERGES from the single-shard "
                "build",
                file=sys.stderr,
            )

    if args.out:
        from repro.core import codec

        parent = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(parent, exist_ok=True)
        size = codec.save_graph(graph, args.out, include_lineage=True)
        print(f"snapshot -> {args.out} ({size} bytes)")

    from repro.obs import profiling, runs

    snapshot = context.artifacts.get("quality_snapshot")
    metrics = {
        f"exchange.{name}": float(value) for name, value in outcome.stats.items()
    }
    metrics["wall_s"] = round(wall_s, 6)
    metrics["records_per_s"] = round(n_records / wall_s, 3)
    _append_run_record(
        args,
        runs.RunRecord(
            kind="build",
            experiment_id=f"BUILD-P{args.partitions}",
            config={
                "partitions": args.partitions,
                "people": args.people,
                "movies": args.movies,
                "seed": args.seed,
                "check_equal": bool(args.check_equal),
            },
            stages=[
                {"name": report.stage_name, "wall_s": round(report.seconds, 6)}
                for report in pipeline.reports
            ],
            resources=profiling.rusage(),
            quality=[snapshot.to_dict()] if snapshot is not None else [],
            metrics=metrics,
        ),
    )
    if equal is False:
        return 1
    return 0


def cmd_stream(args: argparse.Namespace) -> int:
    """Continuous construction: drain fixture deltas, publish live, finalize."""
    import tempfile
    import time

    from repro.evalx.tables import render_table

    if args.batch_size < 1:
        print("--batch-size must be a positive integer", file=sys.stderr)
        return 2
    if args.cadence < 1:
        print("--cadence must be a positive integer", file=sys.stderr)
        return 2
    fixture_id = (args.fixture_id or "WORLD").upper()
    if fixture_id != "WORLD":
        print(
            f"unknown stream fixture {args.fixture_id!r}; streaming drains the "
            "WORLD fixture sources (size via --people/--movies/--seed)",
            file=sys.stderr,
        )
        return 2

    from repro.core.codec import TripleWAL
    from repro.core.partition import fixture_sources
    from repro.obs import enabled_scope, profiling, reset_all, runs
    from repro.obs.lineage import get_ledger
    from repro.serve.snapshot import SnapshotStore
    from repro.stream import (
        DeltaQueue,
        StreamIngestor,
        StreamPublisher,
        WALFollower,
        enqueue_all,
        micro_batches,
    )

    sources = fixture_sources(
        n_people=args.people, n_movies=args.movies, seed=args.seed
    )
    n_records = sum(len(source) for source in sources)
    wal_dir = args.wal_dir or tempfile.mkdtemp(prefix="repro-stream-wal-")

    server = None
    service = None
    if args.serve:
        from repro.serve.server import start_server
        from repro.serve.service import KGService

        service = KGService(n_shards=args.shards, name="stream")
        server, _thread = start_server(service, host=args.host, port=args.port)
        host, port = server.server_address[:2]
        print(f"serving the live stream on http://{host}:{port}")
    store = service.store if service is not None else SnapshotStore(
        n_shards=args.shards
    )

    reports = []
    reset_all()
    with enabled_scope():
        profiling.enable()
        wal = TripleWAL(wal_dir)
        ingestor = StreamIngestor(wal=wal)
        follower = WALFollower(wal_dir)
        publisher = StreamPublisher(store, follower, snapshot_path=args.out)
        queue = DeltaQueue()
        enqueue_all(queue, micro_batches(sources, args.batch_size, order_seed=args.order_seed))
        # Publish the (empty) WAL head immediately so every serving route
        # is live before the first delta lands.
        publisher.publish(queue_records=queue.pending_records())
        started = time.perf_counter()
        while True:
            delta = queue.get()
            if delta is None:
                break
            reports.append(ingestor.ingest(delta))
            if len(reports) % args.cadence == 0:
                publisher.publish(queue_records=queue.pending_records())
            if args.delta_interval:
                time.sleep(args.delta_interval)
        publisher.publish(queue_records=queue.pending_records())
        stream_wall_s = time.perf_counter() - started

    # Finalize under a fresh observability scope: the canonical exchange
    # over the drained union records the batch build's exact ledger.
    reset_all()
    with enabled_scope():
        profiling.enable()
        finalize_started = time.perf_counter()
        outcome = ingestor.finalize()
        ledger_state = get_ledger().export_state()
        stats = wal.checkpoint(outcome.graph)
        publisher.publish()  # base changed -> follower re-bootstraps canonical
        finalize_wall_s = time.perf_counter() - finalize_started

        freshness = publisher.freshness()
        rows = [
            ["records", n_records],
            ["deltas", len(reports)],
            ["relinks", ingestor.n_relinks],
            ["fused groups (total)", reports[-1].n_groups_total if reports else 0],
            ["publishes", publisher.n_publishes],
            ["staleness p50/p95 (s)",
             f"{freshness['staleness_p50_s']:.4f} / {freshness['staleness_p95_s']:.4f}"],
            ["catch-up p50/p95 (records)",
             f"{freshness['catchup_p50_records']:.0f} / {freshness['catchup_p95_records']:.0f}"],
            ["stream wall (s)", f"{stream_wall_s:.3f}"],
            ["finalize wall (s)", f"{finalize_wall_s:.3f}"],
        ]
        print(
            render_table(
                title=f"stream --batch-size {args.batch_size} --cadence {args.cadence}",
                columns=["metric", "value"],
                rows=rows,
                note=(
                    f"{n_records} records -> {stats['n_triples']} triples, "
                    f"{stats['n_entities']} entities; canonical base "
                    f"{stats['base_path']} ({stats['base_bytes']} bytes)"
                ),
            )
        )
        if args.out:
            print(f"snapshot -> {args.out}")

        equal = None
        if args.check_equal:
            from repro.core import codec

            _, reference, _, reference_ledger, _ = _run_partitioned_build(args, 1)
            reference_graph = reference.artifacts["kg"]

            def snapshot_bytes(g) -> bytes:
                with tempfile.TemporaryDirectory() as tmp:
                    path = os.path.join(tmp, "check.rkgs")
                    codec.save_graph(g, path, include_lineage=False)
                    with open(path, "rb") as handle:
                        return handle.read()

            checks = {
                "state": _graph_public_state(outcome.graph)
                == _graph_public_state(reference_graph),
                "lineage": ledger_state == reference_ledger,
                "snapshot_bytes": snapshot_bytes(outcome.graph)
                == snapshot_bytes(reference_graph),
            }
            equal = all(checks.values())
            for name, ok in checks.items():
                print(f"check {name}: {'equal' if ok else 'DIFFERS'}")
            if equal:
                print(
                    f"streamed build (batch-size {args.batch_size}) is "
                    "byte-identical to the one-shot batch build"
                )
            else:
                print(
                    f"streamed build (batch-size {args.batch_size}) DIVERGES "
                    "from the one-shot batch build",
                    file=sys.stderr,
                )

        metrics = {
            "wall_s": round(stream_wall_s, 6),
            "finalize_wall_s": round(finalize_wall_s, 6),
            "records_per_s": round(n_records / stream_wall_s, 3)
            if stream_wall_s
            else 0.0,
            "n_deltas": float(len(reports)),
            "n_relinks": float(ingestor.n_relinks),
            "n_publishes": float(publisher.n_publishes),
        }
        for name, value in freshness.items():
            metrics[f"stream.{name}"] = round(value, 6)
        _append_run_record(
            args,
            runs.RunRecord(
                kind="stream",
                experiment_id=f"STREAM-B{args.batch_size}",
                config={
                    "batch_size": args.batch_size,
                    "cadence": args.cadence,
                    "order_seed": args.order_seed,
                    "people": args.people,
                    "movies": args.movies,
                    "seed": args.seed,
                    "serve": bool(args.serve),
                    "check_equal": bool(args.check_equal),
                },
                stages=[
                    {"name": "stream", "wall_s": round(stream_wall_s, 6)},
                    {"name": "finalize", "wall_s": round(finalize_wall_s, 6)},
                ],
                resources=profiling.rusage(),
                quality=[],
                metrics=metrics,
            ),
        )

        if server is not None:
            if args.linger:
                print(f"lingering for {args.linger:.0f}s (canonical snapshot live)...")
                try:
                    time.sleep(args.linger)
                except KeyboardInterrupt:
                    pass
            server.shutdown()
    if equal is False:
        return 1
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """Query the persistent run registry: list, show, diff, drift."""
    import json
    import time as time_module

    from repro.evalx.tables import render_table
    from repro.obs import runs

    directory = args.runs_dir or runs.default_runs_dir(
        os.path.join(_repo_root(), "results")
    )
    registry = runs.RunRegistry(directory)
    action = args.runs_command

    if action == "list":
        records = registry.load()
        if args.experiment:
            wanted = args.experiment.upper()
            records = [
                record for record in records if record.experiment_id.upper() == wanted
            ]
        note = f"{len(records)} run(s) in {registry.path}"
        if registry.skipped_lines:
            note += f"; {registry.skipped_lines} corrupt line(s) skipped"
        if not records:
            print(note)
            return 0
        print(
            render_table(
                title="run registry",
                columns=[
                    "run", "kind", "experiment", "git_sha", "created", "quality", "metrics",
                ],
                rows=[
                    [
                        record.run_id,
                        record.kind,
                        record.experiment_id,
                        record.git_sha[:12] or "-",
                        time_module.strftime(
                            "%Y-%m-%d %H:%M:%S",
                            time_module.localtime(record.created_unix),
                        ),
                        len(record.quality),
                        len(record.metrics),
                    ]
                    for record in records
                ],
                note=note,
            )
        )
        return 0

    if action == "show":
        record = registry.get(args.run_id)
        if record is None:
            print(
                f"run {args.run_id!r} not in registry {registry.path}", file=sys.stderr
            )
            return 2
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0

    if action == "diff":
        from repro.obs.quality import RegressionThresholds

        try:
            diffs = registry.diff(
                args.run_a,
                args.run_b,
                RegressionThresholds(relative_tolerance=args.relative_tolerance),
            )
        except KeyError as exc:
            print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
            return 2
        if not diffs:
            print("no comparable quality snapshots between the two runs")
            return 0
        n_regressions = 0
        for diff in diffs:
            change_rows = diff.rows(only_changed=True)
            n_regressions += len(diff.regressions)
            print(
                render_table(
                    title=f"quality diff: {diff.snapshot_name} "
                    f"({args.run_a} -> {args.run_b})",
                    columns=["metric", "baseline", "current", "delta", "status"],
                    rows=change_rows
                    or [["(all metrics unchanged)", "-", "-", "-", "ok"]],
                    note=f"{len(diff.regressions)} regression(s)",
                )
            )
        return 1 if n_regressions else 0

    # drift
    alerts = registry.drift(
        experiment_id=args.experiment, window=args.window, threshold=args.threshold
    )
    if not alerts:
        where = f" for {args.experiment.upper()}" if args.experiment else ""
        print(f"no drift beyond |z| > {args.threshold:g}{where} in {registry.path}")
        return 0
    drops = [alert for alert in alerts if alert.direction == "drop"]
    rises = [alert for alert in alerts if alert.direction == "rise"]
    if drops:
        print(f"{len(drops)} metric(s) drifted DOWN off the trajectory:", file=sys.stderr)
        for alert in drops:
            print(f"  {alert.describe()}", file=sys.stderr)
    if rises:
        print(f"{len(rises)} metric(s) drifted up (informational):")
        for alert in rises:
            print(f"  {alert.describe()}")
    return 1 if drops else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Publish a fixture snapshot and serve the JSON API over HTTP."""
    import time

    from repro.core.codec import CodecError
    from repro.obs import profiling
    from repro.serve.context import AccessLog
    from repro.serve.server import start_server
    from repro.serve.service import (
        KGService,
        SERVE_FIXTURES,
        build_fixture_service,
    )

    follow_publisher = None
    if args.follow_wal is not None:
        if args.fixture_id is not None:
            print(
                "pass a fixture id or --follow-wal, not both "
                "(the WAL directory already holds its graph)",
                file=sys.stderr,
            )
            return 2
        from repro.stream import StreamPublisher, WALFollower

        # Enable observability before the boot publish so the follower's
        # staleness/catch-up metrics land on /metrics from version 1.
        if not args.no_obs:
            profiling.enable()
        service = KGService(n_shards=args.shards, name="serve.follow")
        if args.snapshot is not None:
            # Boot instantly from the snapshot; the follower's first
            # publish below replaces it with the WAL head.
            print(f"loading snapshot {args.snapshot} ({args.backend} backend)...")
            try:
                service.publish_from_file(args.snapshot, backend=args.backend)
            except CodecError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        print(f"following WAL {args.follow_wal} ({args.backend} backend)...")
        follower = WALFollower(args.follow_wal, backend=args.backend)
        follow_publisher = StreamPublisher(service.store, follower)
        follow_publisher.publish()
        fixture_id = f"wal:{args.follow_wal}"
    elif args.snapshot is not None:
        if args.fixture_id is not None:
            print(
                "pass a fixture id or --snapshot, not both "
                "(a snapshot file already holds its graph)",
                file=sys.stderr,
            )
            return 2
        service = KGService(n_shards=args.shards, name="serve.snapshot")
        print(f"loading snapshot {args.snapshot} ({args.backend} backend)...")
        try:
            service.publish_from_file(args.snapshot, backend=args.backend)
        except CodecError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        fixture_id = f"snapshot:{args.snapshot}"
    elif args.fixture_id is None:
        print(
            "serve needs a fixture id (WORLD, FIG4A) or --snapshot PATH",
            file=sys.stderr,
        )
        return 2
    else:
        fixture_id = args.fixture_id.upper()
        if fixture_id not in SERVE_FIXTURES:
            print(
                f"unknown serve fixture {args.fixture_id!r}; "
                f"available: {', '.join(sorted(SERVE_FIXTURES))}",
                file=sys.stderr,
            )
            return 2
        scale = "quick" if args.quick else "full"
        print(f"building fixture {fixture_id} ({scale}, {args.shards} shard(s))...")
        service = build_fixture_service(
            fixture_id, n_shards=args.shards, scale=scale, with_lm=not args.no_lm
        )
    # A server someone deliberately started should be observable out of
    # the box: /metrics and /statusz are live surfaces, and head sampling
    # keeps the per-request cost inside the <5% budget.
    if not args.no_obs:
        profiling.enable()
    service.trace_sample = args.trace_sample
    if args.access_log:
        service.access_log = AccessLog(args.access_log, sample=args.access_log_sample)
    server, _thread = start_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    snapshot = service.store.current()
    assert snapshot is not None
    print(
        f"serving {fixture_id} snapshot v{snapshot.version} "
        f"({len(snapshot.graph)} triples, {args.shards} shard(s)) "
        f"on http://{host}:{port}"
    )
    if args.access_log:
        print(f"access log -> {args.access_log}")
    print(
        "routes: /lookup /paths /query /ask /stats /statusz /buildz /metrics "
        "/healthz  (Ctrl-C to stop)"
    )
    stop_republish = None
    if follow_publisher is not None:
        import threading

        stop_republish = threading.Event()

        def _republish_loop() -> None:
            while not stop_republish.wait(args.publish_cadence):
                try:
                    follow_publisher.publish_if_changed()
                except Exception as exc:  # keep serving on a torn poll
                    print(f"wal republish error: {exc}", file=sys.stderr)

        threading.Thread(
            target=_republish_loop, name="wal-republish", daemon=True
        ).start()
        print(
            f"republishing from WAL every {args.publish_cadence:g}s "
            "(on change)"
        )
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if stop_republish is not None:
            stop_republish.set()
        server.shutdown()
        if service.access_log is not None:
            service.access_log.close()
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    """Build a serve fixture's graph and persist it as a binary snapshot."""
    import time

    from repro.core import codec
    from repro.serve.service import SERVE_FIXTURES

    fixture_id = args.fixture_id.upper()
    builder = SERVE_FIXTURES.get(fixture_id)
    if builder is None:
        print(
            f"unknown serve fixture {args.fixture_id!r}; "
            f"available: {', '.join(sorted(SERVE_FIXTURES))}",
            file=sys.stderr,
        )
        return 2
    scale = "quick" if args.quick else "full"
    print(f"building fixture {fixture_id} ({scale})...")
    started = time.perf_counter()
    graph, _model = builder(scale)
    build_s = time.perf_counter() - started
    started = time.perf_counter()
    n_bytes = codec.save_graph(graph, args.output)
    save_s = time.perf_counter() - started
    stats = graph.stats()
    print(
        f"saved {stats['n_triples']} triples / {stats['n_entities']} entities "
        f"({stats['n_id_terms']} id terms) -> {args.output} "
        f"({n_bytes} bytes; build {build_s:.2f}s, save {save_s:.3f}s)"
    )
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    """Load a binary snapshot and print its stats (restore validation)."""
    import time

    from repro.core import codec

    started = time.perf_counter()
    try:
        graph = codec.load_graph(args.path, backend=args.backend)
    except codec.CodecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    load_s = time.perf_counter() - started
    stats = graph.stats()
    print(
        f"loaded {args.path} in {load_s:.3f}s ({args.backend} backend): "
        f"{stats['n_triples']} triples, {stats['n_entities']} entities, "
        f"{stats['n_id_terms']} id terms, {stats['n_classes']} classes"
    )
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Fold a WAL directory's segments into its base snapshot."""
    from repro.core import codec

    wal = codec.TripleWAL(args.wal_dir)
    before = wal.stats()
    try:
        _graph, stats = wal.compact(
            backend=args.backend, allow_partial=args.allow_partial
        )
    except codec.CodecError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        wal.close()
    print(
        f"compacted {stats['n_segments_folded']} segment(s) "
        f"({before['wal_bytes']} WAL bytes) -> {stats['base_path']} "
        f"({stats['base_bytes']} bytes, {stats['n_triples']} triples, "
        f"{stats['n_entities']} entities)"
    )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Load-test a server (URL) or fixture (id); extend BENCH_serve.json."""
    from repro.evalx import loadgen
    from repro.evalx.tables import render_table
    from repro.serve.server import HTTPClient, InProcessClient

    target = args.target
    if target.startswith("http://") or target.startswith("https://"):
        if args.obs_compare:
            print(
                "--obs-compare needs an in-process fixture target (it must "
                "flip observability on the service it is measuring)",
                file=sys.stderr,
            )
            return 2
        client = HTTPClient(target)
        where = target
    else:
        from repro.serve.service import SERVE_FIXTURES, build_fixture_service

        fixture_id = target.upper()
        if fixture_id not in SERVE_FIXTURES:
            print(
                f"loadgen target must be a URL or a fixture id "
                f"({', '.join(sorted(SERVE_FIXTURES))}); got {target!r}",
                file=sys.stderr,
            )
            return 2
        scale = "quick" if args.quick else "full"
        if args.obs_compare:
            return _loadgen_obs_compare(args, fixture_id, scale)
        print(f"building fixture {fixture_id} ({scale}, {args.shards} shard(s))...")
        service = build_fixture_service(fixture_id, n_shards=args.shards, scale=scale)
        client = InProcessClient(service)
        where = f"in-process {fixture_id}"

    report = loadgen.run_loadgen(
        client,
        duration_s=args.duration,
        mode=args.mode,
        rps=args.rps,
        concurrency=args.concurrency,
        seed=args.seed,
    )

    rows = []
    for route in sorted({outcome.route for outcome in report.outcomes}):
        summary = report.latency_summary(route)
        rows.append(
            [
                route,
                summary["n"],
                f"{summary['n'] / report.duration_s:.1f}",
                f"{summary['p50_ms']:.2f}",
                f"{summary['p95_ms']:.2f}",
                f"{summary['p99_ms']:.2f}",
            ]
        )
    overall = report.latency_summary()
    rows.append(
        [
            "overall",
            report.n_requests,
            f"{report.throughput_rps:.1f}",
            f"{overall['p50_ms']:.2f}",
            f"{overall['p95_ms']:.2f}",
            f"{overall['p99_ms']:.2f}",
        ]
    )
    print(
        render_table(
            title=f"loadgen {args.mode} loop vs {where} ({report.duration_s:.1f}s)",
            columns=["route", "n", "rps", "p50_ms", "p95_ms", "p99_ms"],
            rows=rows,
            note=(
                f"statuses {report.status_counts()} "
                f"degraded {report.degraded_counts() or '{}'} "
                f"5xx {report.n_server_errors}"
            ),
        )
    )

    output_path = args.output or os.path.join(_repo_root(), loadgen.TRAJECTORY_BASENAME)
    entry, regressions = loadgen.record_trajectory(
        report, output_path, tolerance=args.tolerance
    )
    print(f"trajectory entry ({'quick' if entry['quick'] else 'full'}) -> {output_path}")
    exit_code = 0
    if report.n_server_errors:
        print(f"{report.n_server_errors} server error(s) (5xx)", file=sys.stderr)
        exit_code = 1
    if regressions:
        print(
            f"{len(regressions)} throughput regression(s) beyond {args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for regression in regressions:
            print(f"  {regression.describe()}", file=sys.stderr)
        exit_code = 1
    if args.warn_only and exit_code:
        print("warn-only mode: not failing the run")
        return 0
    return exit_code


def _loadgen_obs_compare(args: argparse.Namespace, fixture_id: str, scale: str) -> int:
    """Back-to-back obs-off/obs-on closed loops; gate the p95 overhead.

    Both runs append to the trajectory (tagged ``"obs": "off"/"on"``), so
    ``BENCH_serve.json`` carries the overhead evidence alongside the
    regular entries.
    """
    from repro.evalx import loadgen
    from repro.evalx.tables import render_table
    from repro.serve.admission import AdmissionController
    from repro.serve.service import build_fixture_service

    # Wide-open admission: a closed loop saturates the default ladder into
    # ~100% sheds, and sheds are force-sampled by design — that measures
    # the always-on shed-trace path, not the serving overhead the gate is
    # about.
    def build():
        return build_fixture_service(
            fixture_id,
            n_shards=args.shards,
            scale=scale,
            admission=AdmissionController(rate=1_000_000.0, max_concurrent=64),
        )

    # Many short interleaved rounds beat few long ones: single-core VMs
    # jitter in scheduler epochs that span seconds, and fine interleaving
    # spreads each epoch across both labels before pooling.
    rounds = 9
    round_duration = max(0.5, args.duration / 3.0)
    print(
        f"obs-compare: {rounds} interleaved off/on {round_duration:.1f}s "
        f"single-worker closed-loop rounds over HTTP vs fresh {fixture_id} "
        f"({scale}, {args.shards} shard(s))..."
    )
    comparison = loadgen.measure_obs_overhead(
        build,
        duration_s=round_duration,
        seed=args.seed,
        max_p95_overhead=args.max_obs_overhead,
        rounds=rounds,
    )
    rows = []
    for label in ("off", "on"):
        report = comparison[label]
        overall = report.latency_summary()
        rows.append(
            [
                f"obs {label}",
                report.n_requests,
                f"{report.throughput_rps:.1f}",
                f"{overall['p50_ms']:.2f}",
                f"{overall['p95_ms']:.2f}",
                f"{overall['p99_ms']:.2f}",
            ]
        )
    print(
        render_table(
            title=f"loadgen obs-compare vs in-process {fixture_id}",
            columns=["run", "n", "rps", "p50_ms", "p95_ms", "p99_ms"],
            rows=rows,
            note=(
                f"pooled p95 overhead {comparison['p95_overhead']:+.1%} "
                f"(gate {comparison['max_p95_overhead']:.0%}; rounds "
                + ", ".join(f"{o:+.1%}" for o in comparison["round_overheads"])
                + ")"
            ),
        )
    )
    output_path = args.output or os.path.join(_repo_root(), loadgen.TRAJECTORY_BASENAME)
    for label in ("off", "on"):
        entry, _regressions = loadgen.record_trajectory(
            comparison[label], output_path, tolerance=args.tolerance
        )
        print(f"trajectory entry (obs {label}) -> {output_path}")
    if comparison["passed"]:
        print(
            f"observability overhead within budget: "
            f"{comparison['p95_overhead']:+.1%} p95"
        )
        return 0
    print(
        f"observability overhead {comparison['p95_overhead']:+.1%} p95 exceeds "
        f"the {comparison['max_p95_overhead']:.0%} gate",
        file=sys.stderr,
    )
    if args.warn_only:
        print("warn-only mode: not failing the run")
        return 0
    return 1


def cmd_slo(args: argparse.Namespace) -> int:
    """Print a serving endpoint's SLO summary; optionally gate on burn."""
    from repro.evalx.tables import render_table

    target = args.target
    if target.startswith("http://") or target.startswith("https://"):
        from repro.serve.server import HTTPClient

        status_code, payload = HTTPClient(target).statusz()
        if status_code != 200:
            print(f"/statusz returned {status_code}: {payload}", file=sys.stderr)
            return 2
        where = target
    else:
        from repro.evalx import loadgen
        from repro.obs import profiling
        from repro.serve.server import InProcessClient
        from repro.serve.service import SERVE_FIXTURES, build_fixture_service

        fixture_id = target.upper()
        if fixture_id not in SERVE_FIXTURES:
            print(
                f"slo target must be a URL or a fixture id "
                f"({', '.join(sorted(SERVE_FIXTURES))}); got {target!r}",
                file=sys.stderr,
            )
            return 2
        scale = "quick" if args.quick else "full"
        print(f"building fixture {fixture_id} ({scale}, {args.shards} shard(s))...")
        service = build_fixture_service(fixture_id, n_shards=args.shards, scale=scale)
        previous_enabled = profiling.enabled()
        profiling.reset_all()
        profiling.enable()
        try:
            print(f"driving {args.duration:.0f}s of traffic to fill the SLO window...")
            loadgen.run_loadgen(
                InProcessClient(service),
                duration_s=args.duration,
                mode="closed",
                concurrency=args.concurrency,
                seed=args.seed,
            )
            payload = service.statusz()
        finally:
            if not previous_enabled:
                profiling.disable()
        where = f"in-process {fixture_id}"

    slo = payload.get("slo", {}) if isinstance(payload, dict) else {}
    routes = slo.get("routes", {}) if isinstance(slo, dict) else {}
    rows = [
        [
            route,
            block.get("requests", 0),
            block.get("rate_rps", 0.0),
            block.get("errors", 0),
            block.get("shed", 0),
            block.get("degraded", 0),
            f"{block.get('p95_ms', 0.0):.2f}",
            f"{block.get('budget_burn_rate', 0.0):.2f}",
            "yes" if block.get("burning") else "no",
        ]
        for route, block in sorted(routes.items())
    ]
    print(
        render_table(
            title=f"slo {where} (window {slo.get('window_s', '?')}s)",
            columns=[
                "route", "req", "rps", "err", "shed", "degr", "p95_ms", "burn", "burning",
            ],
            rows=rows or [["(no routes)", 0, 0, 0, 0, 0, "-", "-", "-"]],
            note=(
                f"degradation level {payload.get('degradation_level', '?')}; "
                f"snapshot v{payload.get('snapshot_version', '?')}; "
                f"worst burn {slo.get('worst_burn_rate', 0.0)}"
            ),
        )
    )
    worst_burn = float(slo.get("worst_burn_rate", 0.0) or 0.0)
    if args.fail_on_burn and worst_burn > args.burn_threshold:
        print(
            f"error budget burning: worst burn rate {worst_burn} exceeds "
            f"threshold {args.burn_threshold}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Generations of Knowledge Graphs' (VLDB 2023)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list registered experiments")
    list_parser.set_defaults(func=cmd_list)

    info_parser = subparsers.add_parser("info", help="describe one experiment")
    info_parser.add_argument("experiment_id")
    info_parser.set_defaults(func=cmd_info)

    run_parser = subparsers.add_parser("run", help="run an experiment's benchmark")
    run_parser.add_argument("experiment_id", help="an experiment id, or 'all'")
    run_parser.set_defaults(func=cmd_run)

    trace_parser = subparsers.add_parser(
        "trace", help="run an experiment in-process and write a JSONL trace"
    )
    trace_parser.add_argument("experiment_id", help="a traceable experiment id")
    trace_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="trace file path (default: results/trace_<id>.jsonl)",
    )
    trace_parser.add_argument(
        "--from-file",
        default=None,
        help="summarize an existing trace JSONL file instead of running",
    )
    trace_parser.add_argument(
        "--progress",
        action="store_true",
        help="show a live build-progress line on stderr while running",
    )
    trace_parser.add_argument(
        "--progress-log",
        default=None,
        help="append build-progress heartbeats (JSONL) to this path",
    )
    trace_parser.add_argument(
        "--no-runs",
        action="store_true",
        help="do not record this run in the persistent run registry",
    )
    trace_parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry directory (default: results/runs/)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    report_parser = subparsers.add_parser(
        "report", help="run an experiment and write md/json/prom run reports"
    )
    report_parser.add_argument("experiment_id", help="a traceable experiment id")
    report_parser.add_argument(
        "-o",
        "--output-dir",
        default=None,
        help="directory for report artifacts (default: results/)",
    )
    report_parser.add_argument(
        "--baseline",
        default=None,
        help="baseline report JSON to diff against "
        "(default: the existing report_<id>.json in the output directory)",
    )
    report_parser.add_argument(
        "--relative-tolerance",
        type=float,
        default=0.02,
        help="allowed relative drop in count-like quality metrics (default: 0.02)",
    )
    report_parser.add_argument(
        "--progress",
        action="store_true",
        help="show a live build-progress line on stderr while running",
    )
    report_parser.add_argument(
        "--progress-log",
        default=None,
        help="append build-progress heartbeats (JSONL) to this path",
    )
    report_parser.add_argument(
        "--no-runs",
        action="store_true",
        help="skip the run registry (and its trajectory drift gate)",
    )
    report_parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry directory (default: the output directory's runs/)",
    )
    report_parser.add_argument(
        "--drift-window",
        type=int,
        default=10,
        help="prior runs in the rolling drift window (default: 10)",
    )
    report_parser.add_argument(
        "--drift-threshold",
        type=float,
        default=3.0,
        help="modified z-score that flags trajectory drift (default: 3.0)",
    )
    report_parser.set_defaults(func=cmd_report)

    bench_parser = subparsers.add_parser(
        "bench", help="run core perf workloads and extend BENCH_core.json"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="small scales, one repeat (CI smoke)"
    )
    bench_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="trajectory file (default: BENCH_core.json at the repo root)",
    )
    bench_parser.add_argument(
        "--workload",
        action="append",
        default=None,
        help="run only this workload (repeatable; default: all)",
    )
    bench_parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per workload, best-of wins (default: 3, quick: 1)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative throughput drop vs the previous entry (default: 0.20)",
    )
    bench_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions but exit 0 (PR smoke mode)",
    )
    bench_parser.add_argument(
        "--no-runs",
        action="store_true",
        help="do not record this run in the persistent run registry",
    )
    bench_parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry directory (default: results/runs/)",
    )
    bench_parser.set_defaults(func=cmd_bench)

    build_parser = subparsers.add_parser(
        "build",
        help="partition-parallel fixture build (shard, link, fuse, stitch)",
    )
    build_parser.add_argument(
        "-p",
        "--partitions",
        type=int,
        default=1,
        help="shard count for the partitioned build (default: 1)",
    )
    build_parser.add_argument(
        "--check-equal",
        action="store_true",
        help="also run single-shard and verify state/lineage/bytes equality",
    )
    build_parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="write the built graph to this .rkgs snapshot path",
    )
    build_parser.add_argument(
        "--people",
        type=int,
        default=120,
        help="ground-truth people in the fixture world (default: 120)",
    )
    build_parser.add_argument(
        "--movies",
        type=int,
        default=80,
        help="ground-truth movies in the fixture world (default: 80)",
    )
    build_parser.add_argument(
        "--seed", type=int, default=11, help="fixture world seed (default: 11)"
    )
    build_parser.add_argument(
        "--no-runs",
        action="store_true",
        help="do not record this run in the persistent run registry",
    )
    build_parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry directory (default: results/runs/)",
    )
    build_parser.set_defaults(func=cmd_build)

    stream_parser = subparsers.add_parser(
        "stream",
        help="continuous construction: drain deltas, publish live snapshots",
    )
    stream_parser.add_argument(
        "fixture_id",
        nargs="?",
        default=None,
        help="stream fixture id (WORLD; sized via --people/--movies/--seed)",
    )
    stream_parser.add_argument(
        "--batch-size",
        type=int,
        default=25,
        help="records per delta micro-batch (default: 25)",
    )
    stream_parser.add_argument(
        "--cadence",
        type=int,
        default=2,
        help="publish a fresh serving snapshot every N deltas (default: 2)",
    )
    stream_parser.add_argument(
        "--order-seed",
        type=int,
        default=None,
        help="shuffle delta record order with this seed (default: source order)",
    )
    stream_parser.add_argument(
        "--delta-interval",
        type=float,
        default=0.0,
        help="sleep this many seconds between deltas (pacing for live demos/CI)",
    )
    stream_parser.add_argument(
        "--serve",
        action="store_true",
        help="serve the live snapshots over HTTP while streaming",
    )
    stream_parser.add_argument(
        "--linger",
        type=float,
        default=0.0,
        help="with --serve: keep serving this many seconds after the drain",
    )
    stream_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    stream_parser.add_argument(
        "-p",
        "--port",
        type=int,
        default=8902,
        help="port for --serve (0 = OS-assigned; default: 8902)",
    )
    stream_parser.add_argument(
        "--shards", type=int, default=1, help="serving shard count (default: 1)"
    )
    stream_parser.add_argument(
        "--wal-dir",
        default=None,
        help="WAL directory (default: a fresh temp dir); followable by "
        "`repro serve --follow-wal`",
    )
    stream_parser.add_argument(
        "--check-equal",
        action="store_true",
        help="also run the one-shot batch build and verify "
        "state/lineage/bytes equality",
    )
    stream_parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="write each published snapshot (and the canonical final one) "
        "to this .rkgs path",
    )
    stream_parser.add_argument(
        "--people",
        type=int,
        default=120,
        help="ground-truth people in the fixture world (default: 120)",
    )
    stream_parser.add_argument(
        "--movies",
        type=int,
        default=80,
        help="ground-truth movies in the fixture world (default: 80)",
    )
    stream_parser.add_argument(
        "--seed", type=int, default=11, help="fixture world seed (default: 11)"
    )
    stream_parser.add_argument(
        "--no-runs",
        action="store_true",
        help="do not record this run in the persistent run registry",
    )
    stream_parser.add_argument(
        "--runs-dir",
        default=None,
        help="run-registry directory (default: results/runs/)",
    )
    stream_parser.set_defaults(func=cmd_stream)

    runs_parser = subparsers.add_parser(
        "runs", help="query the persistent run registry (results/runs/)"
    )
    runs_subparsers = runs_parser.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_subparsers.add_parser("list", help="list recorded runs")
    runs_list.add_argument(
        "--experiment", default=None, help="only runs of this experiment id"
    )
    runs_list.add_argument(
        "--runs-dir", default=None, help="registry directory (default: results/runs/)"
    )
    runs_list.set_defaults(func=cmd_runs)

    runs_show = runs_subparsers.add_parser("show", help="print one run's full record")
    runs_show.add_argument("run_id", help="a run id from `runs list` (e.g. r0004)")
    runs_show.add_argument(
        "--runs-dir", default=None, help="registry directory (default: results/runs/)"
    )
    runs_show.set_defaults(func=cmd_runs)

    runs_diff = runs_subparsers.add_parser(
        "diff", help="diff two runs' quality snapshots (exit 1 on regressions)"
    )
    runs_diff.add_argument("run_a", help="baseline run id")
    runs_diff.add_argument("run_b", help="current run id")
    runs_diff.add_argument(
        "--relative-tolerance",
        type=float,
        default=0.02,
        help="allowed relative drop in count-like quality metrics (default: 0.02)",
    )
    runs_diff.add_argument(
        "--runs-dir", default=None, help="registry directory (default: results/runs/)"
    )
    runs_diff.set_defaults(func=cmd_runs)

    runs_drift = runs_subparsers.add_parser(
        "drift",
        help="score the latest run(s) vs the rolling trajectory "
        "(exit 1 on drop-direction drift)",
    )
    runs_drift.add_argument(
        "--experiment", default=None, help="only this experiment id (default: all)"
    )
    runs_drift.add_argument(
        "--window",
        type=int,
        default=10,
        help="prior runs in the rolling window (default: 10)",
    )
    runs_drift.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="modified z-score that flags drift (default: 3.0)",
    )
    runs_drift.add_argument(
        "--runs-dir", default=None, help="registry directory (default: results/runs/)"
    )
    runs_drift.set_defaults(func=cmd_runs)

    serve_parser = subparsers.add_parser(
        "serve", help="publish a fixture KG snapshot and serve the JSON API"
    )
    serve_parser.add_argument(
        "fixture_id",
        nargs="?",
        default=None,
        help="a serve fixture id (WORLD, FIG4A); omit with --snapshot",
    )
    serve_parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="boot from a `repro save` binary snapshot instead of building a fixture",
    )
    serve_parser.add_argument(
        "--backend",
        choices=("columnar", "dict"),
        default="columnar",
        help="storage backend for --snapshot boots (default: columnar)",
    )
    serve_parser.add_argument(
        "--follow-wal",
        default=None,
        metavar="DIR",
        help="tail this WAL directory and republish on change "
        "(combines with --snapshot for an instant boot view)",
    )
    serve_parser.add_argument(
        "--publish-cadence",
        type=float,
        default=1.0,
        help="with --follow-wal: poll/republish interval in seconds (default: 1.0)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "-p", "--port", type=int, default=8901, help="port (0 = OS-assigned; default: 8901)"
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1, help="read-replica shard count (default: 1)"
    )
    serve_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then exit (default: until Ctrl-C)",
    )
    serve_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale (CI smoke)"
    )
    serve_parser.add_argument(
        "--no-lm", action="store_true", help="skip the LM; `ask` answers KG-only"
    )
    serve_parser.add_argument(
        "--no-obs",
        action="store_true",
        help="do not enable observability (spans, SLO windows, /metrics stay empty)",
    )
    serve_parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        help="head-sampling rate for request traces "
        "(default: REPRO_TRACE_SAMPLE env or 0.01)",
    )
    serve_parser.add_argument(
        "--access-log",
        default=None,
        help="write a structured JSONL access log to this path (default: off)",
    )
    serve_parser.add_argument(
        "--access-log-sample",
        type=float,
        default=1.0,
        help="fraction of OK requests logged; shed/error always logged (default: 1.0)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    save_parser = subparsers.add_parser(
        "save", help="build a serve fixture and write a binary graph snapshot"
    )
    save_parser.add_argument("fixture_id", help="a serve fixture id (WORLD, FIG4A)")
    save_parser.add_argument(
        "-o",
        "--output",
        required=True,
        help="snapshot file to write (e.g. results/world.rkgs)",
    )
    save_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale (CI smoke)"
    )
    save_parser.set_defaults(func=cmd_save)

    load_parser = subparsers.add_parser(
        "load", help="load a binary graph snapshot and print its stats"
    )
    load_parser.add_argument("path", help="snapshot file written by `repro save`")
    load_parser.add_argument(
        "--backend",
        choices=("columnar", "dict"),
        default="columnar",
        help="storage backend to load into (default: columnar)",
    )
    load_parser.set_defaults(func=cmd_load)

    compact_parser = subparsers.add_parser(
        "compact", help="fold a WAL directory's segments into its base snapshot"
    )
    compact_parser.add_argument("wal_dir", help="WAL directory (base.rkgs + wal-*.log)")
    compact_parser.add_argument(
        "--backend",
        choices=("columnar", "dict"),
        default="columnar",
        help="storage backend for replay (default: columnar)",
    )
    compact_parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="tolerate corrupt/truncated records (keeps the valid prefix)",
    )
    compact_parser.set_defaults(func=cmd_compact)

    loadgen_parser = subparsers.add_parser(
        "loadgen", help="load-test a serving endpoint and extend BENCH_serve.json"
    )
    loadgen_parser.add_argument(
        "target", help="a server URL (http://...) or a fixture id for in-process"
    )
    loadgen_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed loop (back-to-back workers) or open loop (scheduled arrivals)",
    )
    loadgen_parser.add_argument(
        "--rps", type=float, default=100.0, help="open-loop arrival rate (default: 100)"
    )
    loadgen_parser.add_argument(
        "--duration", type=float, default=10.0, help="seconds to run (default: 10)"
    )
    loadgen_parser.add_argument(
        "--concurrency", type=int, default=8, help="worker threads (default: 8)"
    )
    loadgen_parser.add_argument(
        "--shards", type=int, default=1, help="shards for in-process targets (default: 1)"
    )
    loadgen_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale for in-process targets"
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=31, help="request-plan seed (default: 31)"
    )
    loadgen_parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="trajectory file (default: BENCH_serve.json at the repo root)",
    )
    loadgen_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative throughput drop vs the previous entry (default: 0.20)",
    )
    loadgen_parser.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions/errors but exit 0 (PR smoke mode)",
    )
    loadgen_parser.add_argument(
        "--obs-compare",
        action="store_true",
        help="run obs-off then obs-on closed loops against fresh fixtures and "
        "gate the p95 latency overhead (in-process targets only)",
    )
    loadgen_parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="allowed relative p95 overhead for --obs-compare (default: 0.05)",
    )
    loadgen_parser.set_defaults(func=cmd_loadgen)

    slo_parser = subparsers.add_parser(
        "slo", help="print a serving endpoint's rolling SLO summary"
    )
    slo_parser.add_argument(
        "target", help="a server URL (scrapes /statusz) or a fixture id "
        "(drives in-process traffic first)"
    )
    slo_parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="seconds of traffic to drive for fixture targets (default: 5)",
    )
    slo_parser.add_argument(
        "--concurrency", type=int, default=8, help="worker threads (default: 8)"
    )
    slo_parser.add_argument(
        "--shards", type=int, default=1, help="shards for fixture targets (default: 1)"
    )
    slo_parser.add_argument(
        "--quick", action="store_true", help="small fixture scale (CI smoke)"
    )
    slo_parser.add_argument(
        "--seed", type=int, default=31, help="request-plan seed (default: 31)"
    )
    slo_parser.add_argument(
        "--fail-on-burn",
        action="store_true",
        help="exit non-zero when the worst burn rate exceeds --burn-threshold",
    )
    slo_parser.add_argument(
        "--burn-threshold",
        type=float,
        default=1.0,
        help="burn-rate threshold for --fail-on-burn (default: 1.0)",
    )
    slo_parser.set_defaults(func=cmd_slo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Configuration errors (bad env vars, unknown workloads, invalid
        # flag combinations) exit with the one-line actionable message
        # they carry — never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # `repro runs show ... | head` closing the pipe early is not an
        # error; detach stdout so the interpreter's flush-at-exit stays
        # quiet too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
