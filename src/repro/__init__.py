"""repro - an executable reproduction of "Generations of Knowledge Graphs:
The Crazy Ideas and the Business Impact" (Xin Luna Dong, VLDB 2023).

The library implements all three KG generations end-to-end:

* **entity-based KGs** (Sec. 2): :mod:`repro.core`, :mod:`repro.transform`,
  :mod:`repro.integrate`, :mod:`repro.extract`, :mod:`repro.fuse`;
* **text-rich KGs** (Sec. 3): :mod:`repro.core.textrich`,
  :mod:`repro.products`;
* **dual neural KGs** (Sec. 4): :mod:`repro.neural`;

plus the synthetic data substrate (:mod:`repro.datagen`), the from-scratch
ML layer (:mod:`repro.ml`), and the experiment registry
(:mod:`repro.evalx`).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro.datagen import build_world, WorldConfig
    from repro.core import KnowledgeGraph

    world = build_world(WorldConfig(n_movies=100))
    print(world.truth.stats())
"""

__version__ = "1.0.0"

from repro.core import (
    ConstructionPipeline,
    Entity,
    KnowledgeGraph,
    Ontology,
    TextRichKG,
    Triple,
)

__all__ = [
    "__version__",
    "ConstructionPipeline",
    "Entity",
    "KnowledgeGraph",
    "Ontology",
    "TextRichKG",
    "Triple",
]
