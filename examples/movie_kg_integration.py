"""Entity-based KG construction end-to-end (the Fig. 4(a) architecture).

Run:  python examples/movie_kg_integration.py

Generates a synthetic world, derives two heterogeneous structured sources
(a curated Freebase-like one and a noisy IMDb-like one), then runs the
full first-generation stack: knowledge transformation, random-forest
entity linkage with active learning, data fusion, and distantly-supervised
extraction from synthetic semi-structured websites.
"""

from repro.datagen.sources import default_source_pair
from repro.datagen.world import WorldConfig, build_world
from repro.evalx.architectures import build_entity_based_kg, evaluate_entity_kg_accuracy
from repro.integrate.active_linkage import label_budget_curve
from repro.integrate.linkage import build_linkage_task
from repro.integrate.schema_alignment import oracle_alignment
from repro.ml.active import uncertainty_sampling


def main() -> None:
    world = build_world(WorldConfig(n_people=200, n_movies=120, n_songs=60, seed=42))
    print(f"world: {world.truth.stats()}")

    # --- a taste of Fig. 2: how many labels does good linkage need? -----
    curated, second = default_source_pair(world)
    task = build_linkage_task(
        curated, second, "Movie", oracle_alignment(curated), oracle_alignment(second)
    )
    print(f"\nlinkage task: {len(task.pairs)} candidate pairs after blocking")
    for point in label_budget_curve(task, budgets=[30, 120, 480], strategy=uncertainty_sampling):
        print(
            f"  budget {point.budget:>4}: precision={point.precision:.3f} "
            f"recall={point.recall:.3f}"
        )

    # --- the whole Fig. 4(a) pipeline ------------------------------------
    print("\nrunning the Fig. 4(a) construction pipeline...")
    context = build_entity_based_kg(world, label_budget=400, n_sites=3, pages_per_site=20)
    pipeline = context.artifacts["pipeline"]
    for report in pipeline.reports:
        metrics = ", ".join(f"{k}={v:.0f}" for k, v in sorted(report.metrics.items()))
        print(f"  stage {report.stage_name:<28} {report.seconds:6.2f}s  {metrics}")
    for metric in sorted(context.metrics):
        print(f"  {metric} = {context.metrics[metric]:.1f}")

    kg = context.artifacts["kg"]
    print(f"\nfinal KG: {kg.stats()}")
    print(f"accuracy vs ground-truth world: {evaluate_entity_kg_accuracy(context):.3f}")

    # Show one integrated entity with provenance.
    movie = next(kg.entities("Movie"))
    print(f"\nsample entity: {movie.name} ({movie.entity_id})")
    for triple in kg.query(subject=movie.entity_id):
        sources = {p.source for p in kg.provenance(triple)}
        print(f"  {triple.predicate} = {triple.object}  (sources: {sorted(sources) or ['curated']})")


if __name__ == "__main__":
    main()
