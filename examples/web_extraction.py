"""Knowledge extraction from the (synthetic) web — Sec. 2.3/2.4 hands-on.

Run:  python examples/web_extraction.py

Generates semi-structured websites from the world, then walks through the
three technique generations the paper describes — wrapper induction,
distantly supervised ClosedIE, OpenIE — plus the web-scale fusion that
assigns calibrated confidence to everything and scores the trustworthiness
of sources (Knowledge-Based Trust).
"""

from repro.datagen.web import WebsiteConfig, generate_site, generate_web_corpus
from repro.datagen.world import WorldConfig, build_world
from repro.extract.distant import CeresExtractor, DistantSupervisor, SeedKnowledge
from repro.extract.openie import OpenIEExtractor
from repro.extract.wrapper import WrapperInducer, annotate_by_truth
from repro.fuse.graphical import ExtractionObservation, GraphicalFusion
from repro.fuse.kbt import KnowledgeBasedTrust


def main() -> None:
    world = build_world(WorldConfig(n_people=150, n_movies=100, n_songs=40, seed=42))
    site = generate_site(
        world, WebsiteConfig(name="movies.example.com", domain="Movie", n_pages=30, seed=7)
    )
    print(f"site: {site.name} with {len(site.pages)} pages")

    # --- generation 1: wrapper induction (per-site annotations) ----------
    annotated, held_out = site.split(3)
    wrapper = WrapperInducer(site_name=site.name).induce(
        [(page.root, annotate_by_truth(page.root, page.closed_truth)) for page in annotated]
    )
    page = held_out[0]
    print(f"\nwrapper extraction from {page.url}:")
    print(f"  {wrapper.extract(page.root)}")

    # --- generation 2: distant supervision (no annotation at all) --------
    seed = SeedKnowledge.from_graph(
        world.truth,
        attributes=(
            "directed_by",
            "release_year",
            "genre",
            "runtime",
            "birth_year",
            "birth_place",
            "performed_by",
        ),
    )
    ceres = CeresExtractor(site_name=site.name).fit(
        [p.root for p in site.pages[:20]], DistantSupervisor(seed)
    )
    print(f"\nCeres extraction (trained on {ceres.n_training_pages_} pages, zero labels):")
    for attribute, (value, confidence) in sorted(ceres.extract(page.root).items()):
        print(f"  {attribute} = {value}  (confidence {confidence:.2f})")

    # --- OpenIE: unknown attributes, lower precision ----------------------
    open_pairs = OpenIEExtractor().extract(page.root)
    print("\nOpenIE pairs (note the boilerplate creeping in):")
    for pair in open_pairs[:8]:
        print(f"  {pair.attribute!r} = {pair.value!r}  ({pair.confidence:.2f})")

    # --- web-scale fusion + source trust ----------------------------------
    print("\nfusing extractions from a 6-site crawl...")
    sites = generate_web_corpus(world, n_sites=6, pages_per_site=20, seed=11)
    observations = []
    for crawl_site in sites:
        extractor = CeresExtractor(site_name=crawl_site.name).fit(
            [p.root for p in crawl_site.pages[:12]], DistantSupervisor(seed)
        )
        for crawl_page in crawl_site.pages[12:]:
            for attributed in extractor.extract_triples(crawl_page.root):
                observations.append(
                    ExtractionObservation(
                        subject=attributed.triple.subject,
                        attribute=attributed.triple.predicate,
                        value=str(attributed.triple.object),
                        source=crawl_site.name,
                        extractor="ceres",
                    )
                )
    fusion = GraphicalFusion()
    beliefs = fusion.fuse(observations)
    confident = fusion.high_confidence(beliefs, threshold=0.9)
    print(f"  {len(observations)} observations -> {len(confident)} beliefs at >=0.9")

    trust = KnowledgeBasedTrust()
    print("  source trust (KBT):")
    for source_trust in trust.evaluate_sources(observations):
        print(
            f"    {source_trust.source:<22} kbt={source_trust.kbt_score:.2f} "
            f"naive={source_trust.naive_score:.2f} n={source_trust.n_extractions}"
        )


if __name__ == "__main__":
    main()
