"""Quickstart: build a tiny knowledge graph, query it, and look around.

Run:  python examples/quickstart.py

Covers the core vocabulary of the library — ontologies, entities, triples,
pattern queries, and path queries — on a hand-built music/movie graph like
the paper's Figure 1(a).
"""

from repro.core import KnowledgeGraph, Ontology, Triple
from repro.core.query import PathQuery, TriplePattern, conjunctive_query


def main() -> None:
    # 1. An ontology with "clear semantics" (Sec. 2): classes + relations.
    ontology = Ontology(name="music_and_movies")
    ontology.add_class("Person")
    ontology.add_class("CreativeWork")
    ontology.add_class("Movie", parent="CreativeWork")
    ontology.add_class("Song", parent="CreativeWork")
    ontology.add_relation("directed_by", "Movie", "Person", functional=True)
    ontology.add_relation("stars", "Movie", "Person")
    ontology.add_relation("performed_by", "Song", "Person")
    ontology.add_relation("featured_in", "Song", "Movie")
    ontology.add_relation("release_year", "Movie", "number", functional=True)

    # 2. An entity-based KG: one node per real-world entity.
    kg = KnowledgeGraph(ontology=ontology, name="quickstart")
    kg.add_entity("p:lady_gaga", "Lady Gaga", "Person")
    kg.add_entity("p:cooper", "Bradley Cooper", "Person")
    kg.add_entity("m:asib", "A Star Is Born", "Movie")
    kg.add_entity("s:shallow", "Shallow", "Song")

    kg.add("m:asib", "directed_by", "p:cooper", validate=True)
    kg.add("m:asib", "stars", "p:cooper", validate=True)
    kg.add("m:asib", "stars", "p:lady_gaga", validate=True)
    kg.add("m:asib", "release_year", 2018, validate=True)
    kg.add("s:shallow", "performed_by", "p:lady_gaga", validate=True)
    kg.add("s:shallow", "featured_in", "m:asib", validate=True)

    print("KG stats:", kg.stats())

    # 3. Pattern queries: who starred in A Star Is Born?
    for triple in kg.query(subject="m:asib", predicate="stars"):
        print("stars:", kg.entity(str(triple.object)).name)

    # 4. Conjunctive query with variables: actors who also sing in
    #    the movies they star in (the cross-domain connection of Fig. 1a).
    solutions = conjunctive_query(
        kg,
        [
            TriplePattern("?movie", "stars", "?person"),
            TriplePattern("?song", "performed_by", "?person"),
            TriplePattern("?song", "featured_in", "?movie"),
        ],
    )
    for solution in solutions:
        print(
            "actor-singer:",
            kg.entity(solution["?person"]).name,
            "| song:",
            kg.entity(solution["?song"]).name,
        )

    # 5. Path queries: how are Lady Gaga and Bradley Cooper connected?
    paths = PathQuery(kg, max_length=2).paths("p:lady_gaga", "p:cooper")
    for path in paths:
        hops = " -> ".join(f"{relation}{'+' if direction > 0 else '-'}" for relation, direction, _ in path)
        print("connection:", hops)

    # 6. The knowledge panel — the application that launched industry KGs.
    from repro.core.panel import render_panel

    print()
    print(render_panel(kg, "m:asib").render())


if __name__ == "__main__":
    main()
