"""Dual neural KGs: triples + parametric knowledge serving QA (Sec. 4).

Run:  python examples/dual_neural_qa.py

Trains the simulated language model on a popularity-weighted corpus,
reproduces the head/torso/tail accuracy cliff and the hallucination/miss
split, then shows how knowledge infusion, retrieval augmentation, and the
dual router change the picture — including for facts born after the
model's training cutoff.
"""

from repro.datagen.text import generate_text_corpus
from repro.datagen.world import WorldConfig, build_world
from repro.neural.evaluate import evaluate_by_band, evaluate_qa
from repro.neural.infusion import infuse_head_knowledge
from repro.neural.qa import (
    DualRouterQA,
    KGQA,
    LMQA,
    RetrievalAugmentedQA,
    build_question_set,
)
from repro.neural.slm import SimulatedLM


def _print_band_report(title, reports) -> None:
    print(f"\n{title}")
    print(f"  {'band':<6} {'acc':>6} {'halluc':>7} {'miss':>6}")
    for band in ("head", "torso", "tail", "all"):
        report = reports[band]
        print(
            f"  {band:<6} {report.accuracy:>6.2f} {report.hallucination_rate:>7.2f} "
            f"{report.miss_rate:>6.2f}"
        )


def main() -> None:
    world = build_world(WorldConfig(n_people=300, n_movies=200, n_songs=100, seed=42))

    # The "LLM": an associative memory trained on a skewed corpus.
    corpus = generate_text_corpus(
        world, n_sentences=12000, noise_rate=0.15, popularity_weighted=True, seed=1
    )
    lm = SimulatedLM(seed=2).fit(corpus)
    print(f"simulated LM trained on {len(corpus)} sentences, {lm.n_facts()} fact slots")

    questions = build_question_set(world, per_band=80, seed=3)

    # 1. The paper's study: LM alone, by popularity band.
    _print_band_report("LM-only QA (the Sec. 4 study):", evaluate_by_band(LMQA(lm), questions))

    # 2. Pure KG serving: precise, bounded by coverage.
    _print_band_report("KG-only QA:", evaluate_by_band(KGQA(world.truth), questions))

    # 3. Knowledge-enhanced LM: retrieve triples first, LM as fallback.
    _print_band_report(
        "retrieval-augmented QA:",
        evaluate_by_band(RetrievalAugmentedQA(world.truth, lm), questions),
    )

    # 4. The dual router: familiarity-gated LM with triple verification.
    _print_band_report(
        "dual-router QA:", evaluate_by_band(DualRouterQA(world.truth, lm), questions)
    )

    # 5. Knowledge infusion: teach the LM head knowledge.
    n_infused = infuse_head_knowledge(lm, world, repetitions=8)
    head_questions = [question for question in questions if question.band == "head"]
    after = evaluate_qa(LMQA(lm), head_questions)
    print(
        f"\nafter infusing {n_infused} head-fact mentions: "
        f"head accuracy = {after.accuracy:.2f}, hallucination = {after.hallucination_rate:.2f}"
    )

    # 6. Natural-language questions through the dual router.
    from repro.neural.nlq import NaturalLanguageQA

    nlq = NaturalLanguageQA(
        backend=DualRouterQA(world.truth, lm), graph=world.truth
    )
    movie = next(world.truth.entities("Movie"))
    for question_text in (
        f"Who directed {movie.name}?",
        f"When was {movie.name} released?",
        f"What genre is {movie.name}?",
    ):
        print(f'  Q: "{question_text}" -> {nlq.answer(question_text)!r}')


if __name__ == "__main__":
    main()
