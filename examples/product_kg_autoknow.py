"""Text-rich KG construction for products (the Fig. 4(b) architecture).

Run:  python examples/product_kg_autoknow.py

Builds a synthetic product domain (deep noisy taxonomy, verbose profiles,
noisy catalog, behavior logs), then runs the second-generation stack:
OpenTag extraction, TXtract type-aware scaling, taxonomy enrichment from
customer behavior, knowledge cleaning, and the AutoKnow-style end-to-end
orchestration that assembles the text-rich KG.
"""

from repro.datagen.behavior import generate_behavior
from repro.datagen.products import ProductDomainConfig, build_product_domain
from repro.products.autoknow import AutoKnow
from repro.products.opentag import OpenTagModel, train_test_split
from repro.products.taxonomy_mining import HypernymMiner
from repro.products.txtract import TXtractModel


def main() -> None:
    domain = build_product_domain(ProductDomainConfig(n_products=400, seed=42))
    behavior = generate_behavior(domain, seed=43)
    print(f"domain: {len(domain.products)} products, {len(domain.types())} types")
    print(f"taxonomy: {domain.taxonomy.stats()}")

    # --- OpenTag on one type (Sec. 3.1) ----------------------------------
    coffee = domain.by_type("Coffee")
    train, test = train_test_split(coffee, test_fraction=0.3, seed=1)
    opentag = OpenTagModel(attributes=("flavor", "roast"), n_epochs=8).fit(train)
    print(f"\nOpenTag on Coffee flavor/roast: F1 = {opentag.micro_f1(test):.3f}")
    sample = test[0]
    print(f"  profile: {sample.title_text}")
    print(f"  extracted: {opentag.extract(sample)}")

    # --- TXtract across all types (Sec. 3.3) -----------------------------
    attributes = tuple(domain.attributes())
    train_all, test_all = train_test_split(domain.products, test_fraction=0.3, seed=2)
    pooled = OpenTagModel(attributes=attributes, n_epochs=5).fit(train_all)
    txtract = TXtractModel(attributes=attributes, n_epochs=5).fit(train_all)
    print(
        f"\none-size-fits-all: pooled OpenTag F1 = {pooled.micro_f1(test_all):.3f}, "
        f"TXtract F1 = {txtract.micro_f1(test_all):.3f}"
    )

    # --- taxonomy enrichment from behavior (Sec. 3.1) --------------------
    mined = HypernymMiner().mine(domain, behavior)
    print(f"\nmined hypernym edges (top 5 of {len(mined)}):")
    for edge in mined[:5]:
        print(f"  {edge.child} -> {edge.parent}  (score {edge.score:.2f})")

    # --- the whole AutoKnow pipeline (Sec. 3.5) ---------------------------
    print("\nrunning AutoKnow-style self-driving collection...")
    autoknow = AutoKnow(n_epochs=5)
    report = autoknow.run(domain, behavior=behavior)
    print(f"  catalog triples:      {report.n_catalog_triples}")
    print(f"  final triples:        {report.n_final_triples}  (x{report.growth_factor:.2f})")
    print(f"  types covered:        {report.n_types_covered}")
    print(f"  taxonomy edges added: {report.n_taxonomy_edges_added}")
    print(f"  added-knowledge accuracy: {report.final_accuracy:.3f}")

    # Query the resulting text-rich KG.
    kg = autoknow.kg_
    some_flavor = kg.distinct_values("flavor")[:5]
    print(f"\ndistinct flavor values in the KG: {some_flavor} ...")
    product = domain.products[0]
    print(f"values for {product.product_id} ({product.leaf_type}):")
    for record in kg.values(product.product_id):
        print(f"  {record.attribute} = {record.value}  [{record.source}]")

    # --- the e-business features the KG feeds (Sec. 3.2) -----------------
    from repro.products.companion import CompanionRecommender
    from repro.products.search import ProductSearch

    search = ProductSearch(kg)
    print('\nsearch: "mocha coffee"')
    hits = search.search("mocha coffee", top_k=3)
    for hit in hits:
        print(f"  {hit.score:4.1f}  {hit.title}  {list(hit.matched)}")
    if len(hits) >= 2:
        print("\nproduct comparison:")
        for row in search.compare([hits[0].topic_id, hits[1].topic_id]):
            print("  " + " | ".join(str(cell) for cell in row))

    recommender = CompanionRecommender.build(domain, behavior)
    query = domain.by_type("Coffee")[0]
    print(f"\nrecommendations for {query.title_text!r}:")
    for rec in recommender.substitutes(query.product_id, top_k=2):
        print(f"  substitute: {rec.product_id}  ({rec.reason})")
    for rec in recommender.complements(query.product_id):
        print(f"  complement: {rec.product_id}  ({rec.reason})")


if __name__ == "__main__":
    main()
