"""Tests for the active-learning label-budget curve (Fig. 2 machinery)."""

import pytest

from repro.integrate.active_linkage import BudgetPoint, label_budget_curve, labels_to_reach
from repro.integrate.linkage import build_linkage_task
from repro.integrate.schema_alignment import oracle_alignment
from repro.ml.active import random_sampling, uncertainty_sampling


@pytest.fixture(scope="module")
def task(source_pair):
    freebase, imdb = source_pair
    return build_linkage_task(
        freebase, imdb, "Movie", oracle_alignment(freebase), oracle_alignment(imdb)
    )


class TestBudgetCurve:
    def test_points_per_budget(self, task):
        points = label_budget_curve(task, budgets=[20, 60], seed=1)
        assert [point.budget for point in points] == [20, 60]

    def test_labels_used_within_budget(self, task):
        points = label_budget_curve(task, budgets=[30], seed=1)
        assert points[0].labels_used <= 30

    def test_quality_improves_with_budget(self, task):
        points = label_budget_curve(task, budgets=[15, 200], seed=2)
        assert points[-1].f1 >= points[0].f1 - 0.05

    def test_active_reaches_target_with_fewer_labels(self, task):
        """The Fig. 2 claim, in miniature."""
        budgets = [15, 40, 100, 250]
        active = label_budget_curve(
            task, budgets, strategy=uncertainty_sampling, seed=3
        )
        passive = label_budget_curve(task, budgets, strategy=random_sampling, seed=3)
        target = 0.9
        active_needed = labels_to_reach(active, target)
        passive_needed = labels_to_reach(passive, target)
        if active_needed is not None and passive_needed is not None:
            assert active_needed <= passive_needed
        else:
            # At minimum active learning must not be strictly worse.
            assert active_needed is not None or passive_needed is None

    def test_labels_to_reach_unreached(self):
        points = [BudgetPoint(budget=10, labels_used=10, precision=0.5, recall=0.5, f1=0.5)]
        assert labels_to_reach(points, 0.99) is None

    def test_labels_to_reach_minimum(self):
        points = [
            BudgetPoint(budget=10, labels_used=10, precision=1, recall=1, f1=0.95),
            BudgetPoint(budget=5, labels_used=5, precision=1, recall=1, f1=0.96),
        ]
        assert labels_to_reach(points, 0.9) == 5
