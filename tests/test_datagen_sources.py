"""Tests for derived structured sources."""

import pytest

from repro.datagen.sources import (
    SourceConfig,
    conflicting_sources,
    default_source_pair,
    derive_source,
    true_match,
)


class TestDeriveSource:
    def test_records_carry_world_ids(self, small_world):
        source = derive_source(small_world, SourceConfig(name="s", seed=1))
        assert all(record.world_id for record in source.records)

    def test_coverage_respects_classes(self, small_world):
        source = derive_source(
            small_world, SourceConfig(name="s", entity_classes=("Person",), seed=1)
        )
        assert {record.entity_class for record in source.records} == {"Person"}

    def test_head_covered_more_than_tail(self, small_world):
        source = derive_source(
            small_world,
            SourceConfig(name="s", coverage_base=0.95, coverage_floor=0.05, seed=2),
        )
        covered = {record.world_id for record in source.records}
        head = small_world.popularity.items_in_band("head")
        tail = small_world.popularity.items_in_band("tail")
        classes = {"Movie", "Person"}
        head = [e for e in head if small_world.truth.entity(e).entity_class in classes]
        tail = [e for e in tail if small_world.truth.entity(e).entity_class in classes]
        head_rate = sum(1 for e in head if e in covered) / len(head)
        tail_rate = sum(1 for e in tail if e in covered) / len(tail)
        assert head_rate > tail_rate

    def test_field_map_applied(self, small_world):
        source = derive_source(
            small_world,
            SourceConfig(name="s", field_map={"name": "title"}, seed=1),
        )
        movie_records = source.by_class("Movie")
        assert all("title" in record.fields for record in movie_records)
        assert source.canonical_field("title") == "name"

    def test_split_person_names(self, small_world):
        source = derive_source(
            small_world,
            SourceConfig(name="s", entity_classes=("Person",), split_person_name=True, seed=1),
        )
        record = source.records[0]
        assert "first_name" in record.fields and "last_name" in record.fields
        assert "name" not in record.fields

    def test_no_noise_preserves_values(self, small_world):
        source = derive_source(
            small_world,
            SourceConfig(
                name="clean",
                entity_classes=("Movie",),
                name_variation_rate=0.0,
                value_noise_rate=0.0,
                missing_rate=0.0,
                coverage_base=1.0,
                coverage_floor=1.0,
                seed=1,
            ),
        )
        for record in source.records[:20]:
            truth = small_world.record_for(record.world_id)
            assert record.fields["name"] == truth["name"]
            assert record.fields["release_year"] == truth["release_year"]

    def test_name_variation_rate(self, small_world):
        noisy = derive_source(
            small_world,
            SourceConfig(
                name="noisy",
                entity_classes=("Movie",),
                name_variation_rate=1.0,
                coverage_base=1.0,
                coverage_floor=1.0,
                seed=1,
            ),
        )
        differing = sum(
            1
            for record in noisy.records
            if record.fields.get("name") != small_world.record_for(record.world_id)["name"]
        )
        assert differing / len(noisy.records) > 0.6

    def test_deterministic(self, small_world):
        first = derive_source(small_world, SourceConfig(name="s", seed=9))
        second = derive_source(small_world, SourceConfig(name="s", seed=9))
        assert [record.fields for record in first.records] == [
            record.fields for record in second.records
        ]

    def test_field_names_enumeration(self, small_world):
        source = derive_source(small_world, SourceConfig(name="s", seed=1))
        assert "name" in source.field_names()


class TestPairHelpers:
    def test_default_pair_overlap(self, source_pair):
        freebase, imdb = source_pair
        freebase_ids = {record.world_id for record in freebase.records}
        imdb_ids = {record.world_id for record in imdb.records}
        assert freebase_ids & imdb_ids  # linkable overlap exists

    def test_true_match_oracle(self, source_pair):
        freebase, imdb = source_pair
        record = freebase.records[0]
        twin = next(
            (candidate for candidate in imdb.records if candidate.world_id == record.world_id),
            None,
        )
        if twin is not None:
            assert true_match(record, twin)
        other = next(
            candidate for candidate in imdb.records if candidate.world_id != record.world_id
        )
        assert not true_match(record, other)

    def test_conflicting_sources_grades(self, small_world):
        sources = conflicting_sources(small_world, n_sources=3, seed=5)
        assert len(sources) == 3
        assert all(len(source) > 0 for source in sources)
