"""Tests for GNN-based zero-shot extraction."""

import pytest

from repro.datagen.web import WebsiteConfig, generate_site
from repro.datagen.world import WorldConfig, build_world
from repro.extract.zeroshot import OTHER, TOPIC, VALUE, ZeroShotExtractor, label_page_nodes


@pytest.fixture(scope="module")
def corpus():
    world = build_world(WorldConfig(n_people=80, n_movies=60, n_songs=40, seed=31))
    train_sites = [
        generate_site(
            world,
            WebsiteConfig(name="train-a", domain="Movie", template="table", n_pages=12, seed=32),
        ),
        generate_site(
            world,
            WebsiteConfig(name="train-b", domain="Person", template="dl", label_style=1, n_pages=12, seed=33),
        ),
    ]
    # Unseen domain AND unseen template: the zero-shot setting.
    test_site = generate_site(
        world,
        WebsiteConfig(name="test-c", domain="Song", template="div", label_style=2, n_pages=10, seed=34),
    )
    return train_sites, test_site


def _training_pages(sites):
    pages = []
    for site in sites:
        for page in site.pages:
            value_texts = set(page.closed_truth.values()) | set(page.open_truth.values())
            pages.append((page.root, value_texts, page.topic_name))
    return pages


class TestLabeling:
    def test_labels_roles(self, corpus):
        train_sites, _test = corpus
        page = train_sites[0].pages[0]
        labels = label_page_nodes(
            page.root, set(page.closed_truth.values()), page.topic_name
        )
        assert VALUE in labels
        assert TOPIC in labels
        assert labels.count(OTHER) > labels.count(VALUE)


class TestZeroShotExtractor:
    @pytest.fixture(scope="class")
    def fitted(self, corpus):
        train_sites, test_site = corpus
        extractor = ZeroShotExtractor(n_iterations=180, seed=1)
        extractor.fit(_training_pages(train_sites))
        return extractor, test_site

    def test_transfers_to_unseen_domain(self, fitted):
        extractor, test_site = fitted
        recovered = total = 0
        for page in test_site.pages:
            pairs = extractor.extract(page.root)
            values = {pair.value for pair in pairs}
            for truth in page.closed_truth.values():
                total += 1
                if truth in values:
                    recovered += 1
        assert total > 0
        # Zero-shot: meaningfully better than nothing, below ClosedIE.
        assert recovered / total > 0.4

    def test_detects_topic_on_unseen_site(self, fitted):
        extractor, test_site = fitted
        hits = sum(
            1
            for page in test_site.pages
            if extractor.detect_topic(page.root) == page.topic_name
        )
        assert hits / len(test_site.pages) > 0.5

    def test_pairs_carry_labels(self, fitted):
        extractor, test_site = fitted
        for page in test_site.pages[:3]:
            for pair in extractor.extract(page.root):
                assert pair.attribute
                assert 0.0 <= pair.confidence <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ZeroShotExtractor().extract(None)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            ZeroShotExtractor().fit([])
