"""The load generator: plans, both loops, trajectory entries, overload."""

import json

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.evalx.loadgen import (
    LoadgenReport,
    RequestOutcome,
    TRAJECTORY_BASENAME,
    build_request_plan,
    record_trajectory,
    run_loadgen,
)
from repro.serve.admission import AdmissionController
from repro.serve.server import InProcessClient
from repro.serve.service import KGService


def make_client(admission=None):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="lg")
    for index in range(20):
        graph.add_entity(f"e{index}", f"Node {index}", "Thing")
        graph.add(f"e{index}", "label", f"value-{index % 5}")
    for index in range(19):
        graph.add(f"e{index}", "next_to", f"e{index + 1}")
    service = KGService(admission=admission)
    service.publish(graph)
    return InProcessClient(service)


SAMPLE = [
    {"entity_id": f"e{i}", "name": f"Node {i}", "class": "Thing", "predicates": ["label"]}
    for i in range(10)
]


class TestRequestPlan:
    def test_deterministic_for_same_seed(self):
        first = build_request_plan(SAMPLE, n_requests=50, seed=9)
        second = build_request_plan(SAMPLE, n_requests=50, seed=9)
        assert first == second

    def test_different_seeds_differ(self):
        assert build_request_plan(SAMPLE, 50, seed=1) != build_request_plan(
            SAMPLE, 50, seed=2
        )

    def test_respects_mix(self):
        plan = build_request_plan(SAMPLE, 80, mix={"lookup": 1.0}, seed=3)
        assert {planned.route for planned in plan} == {"lookup"}

    def test_covers_all_routes_by_default(self):
        plan = build_request_plan(SAMPLE, 200, seed=4)
        assert {planned.route for planned in plan} == {"lookup", "query", "paths", "ask"}

    def test_rejects_empty_vocabulary(self):
        with pytest.raises(ValueError):
            build_request_plan([{"entity_id": "e0", "name": "n", "predicates": []}], 10)

    def test_rejects_zero_weight_mix(self):
        with pytest.raises(ValueError):
            build_request_plan(SAMPLE, 10, mix={"lookup": 0.0})


class TestLoops:
    def test_closed_loop_collects_outcomes(self):
        report = run_loadgen(
            make_client(), duration_s=0.5, mode="closed", concurrency=2
        )
        assert report.n_requests > 0
        assert report.throughput_rps > 0
        assert report.mode == "closed"
        assert report.n_server_errors == 0

    def test_open_loop_tracks_target_rate(self):
        report = run_loadgen(
            make_client(), duration_s=1.0, mode="open", rps=40.0, concurrency=4
        )
        assert report.mode == "open"
        assert report.target_rps == 40.0
        # Scheduled arrivals: ~40 requests in ~1s, generous tolerance.
        assert 20 <= report.n_requests <= 60

    def test_uses_stats_entity_sample_by_default(self):
        report = run_loadgen(make_client(), duration_s=0.3, concurrency=1)
        assert report.n_requests > 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_loadgen(make_client(), duration_s=0.1, mode="sideways")
        with pytest.raises(ValueError):
            run_loadgen(make_client(), duration_s=0)


class TestOverloadLadder:
    def test_sustained_overload_degrades_with_zero_5xx(self):
        """The acceptance gate: overload -> shed/stale, never a 5xx."""
        admission = AdmissionController(rate=50.0, burst=20.0, max_concurrent=4)
        client = make_client(admission=admission)
        report = run_loadgen(client, duration_s=1.0, mode="closed", concurrency=8)
        # Far more attempts than 50 tokens/s: the ladder must engage...
        assert report.n_requests > 200
        assert report.degraded_counts(), "expected degraded serving under overload"
        # ...and absolutely nothing may 5xx.
        assert report.n_server_errors == 0
        statuses = set(report.status_counts())
        assert statuses <= {"200", "429"}


class TestReport:
    def make_report(self):
        report = LoadgenReport(
            mode="closed", duration_s=2.0, target_rps=None, concurrency=2
        )
        for index in range(10):
            report.outcomes.append(
                RequestOutcome(
                    route="lookup" if index % 2 else "ask",
                    status_code=200,
                    latency_ms=float(index + 1),
                    cached=index % 3 == 0,
                )
            )
        report.outcomes.append(
            RequestOutcome(route="ask", status_code=429, latency_ms=0.5, degraded="rejected")
        )
        return report

    def test_latency_summary(self):
        summary = self.make_report().latency_summary()
        assert summary["n"] == 11
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]

    def test_entry_shape(self):
        entry = self.make_report().to_entry()
        assert entry["quick"] is True  # 2s <= quick threshold
        assert set(entry["workloads"]) == {"route_ask", "route_lookup", "overall"}
        assert entry["workloads"]["overall"]["n_ops"] == 11
        assert entry["status_counts"] == {"200": 10, "429": 1}
        assert entry["degraded"] == {"rejected": 1}
        assert entry["n_server_errors"] == 0
        json.dumps(entry)  # trajectory entries must serialize

    def test_server_error_count(self):
        report = self.make_report()
        report.outcomes.append(
            RequestOutcome(route="lookup", status_code=500, latency_ms=1.0)
        )
        assert report.n_server_errors == 1


class TestTrajectory:
    def test_record_appends_and_gates(self, tmp_path):
        path = str(tmp_path / TRAJECTORY_BASENAME)
        fast = self.report_with_rate(rate=1000.0)
        entry, regressions = record_trajectory(fast, path)
        assert regressions == []  # first entry: no baseline
        document = json.loads((tmp_path / TRAJECTORY_BASENAME).read_text())
        assert len(document["entries"]) == 1

        slow = self.report_with_rate(rate=10.0)
        _entry, regressions = record_trajectory(slow, path)
        assert regressions, "100x throughput drop must trip the gate"
        document = json.loads((tmp_path / TRAJECTORY_BASENAME).read_text())
        assert len(document["entries"]) == 2

    def report_with_rate(self, rate):
        report = LoadgenReport(
            mode="closed", duration_s=1.0, target_rps=None, concurrency=1
        )
        for index in range(int(rate)):
            report.outcomes.append(
                RequestOutcome(route="lookup", status_code=200, latency_ms=1.0)
            )
        return report
