"""SLO tracking: rolling RED windows, targets, and burn-rate semantics."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_ROUTES,
    SLOTarget,
    SLOTracker,
    default_targets,
    get_slo_tracker,
    reset_slo_tracker,
)


class FakeClock:
    """A settable monotonic clock for deterministic window tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_tracker(window_s=10.0, targets=None):
    clock = FakeClock()
    tracker = SLOTracker(targets=targets, window_s=window_s, clock=clock)
    return tracker, clock


class TestTargets:
    def test_availability_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLOTarget(route="lookup", availability=1.0)
        with pytest.raises(ValueError):
            SLOTarget(route="lookup", availability=0.0)
        with pytest.raises(ValueError):
            SLOTarget(route="lookup", latency_p95_ms=0)

    def test_error_budget_is_the_complement(self):
        assert SLOTarget(route="lookup", availability=0.99).error_budget == pytest.approx(0.01)

    def test_default_targets_cover_every_route(self):
        targets = default_targets()
        assert set(targets) == set(DEFAULT_ROUTES)
        # ask may traverse the LM path: looser latency bound.
        assert targets["ask"].latency_p95_ms > targets["lookup"].latency_p95_ms

    def test_tracker_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            SLOTracker(window_s=0)


class TestRollingWindow:
    def test_counts_inside_the_window(self):
        tracker, _clock = make_tracker()
        for _ in range(8):
            tracker.record("lookup", "ok", 200)
        tracker.record("lookup", "shed", 429)
        tracker.record("lookup", "error", 500)
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        assert block["requests"] == 10
        assert block["shed"] == 1 and block["errors"] == 1
        assert block["rate_rps"] == pytest.approx(1.0)  # 10 over a 10s window

    def test_old_seconds_age_out(self):
        tracker, clock = make_tracker(window_s=10.0)
        tracker.record("lookup", "ok", 200)
        clock.advance(5.0)
        tracker.record("lookup", "ok", 200)
        registry = MetricsRegistry()
        assert tracker.route_summary("lookup", registry=registry)["requests"] == 2
        clock.advance(7.0)  # first record now 12s old, second 7s old
        assert tracker.route_summary("lookup", registry=registry)["requests"] == 1
        clock.advance(10.0)
        assert tracker.route_summary("lookup", registry=registry)["requests"] == 0

    def test_ring_reuses_buckets_across_laps(self):
        tracker, clock = make_tracker(window_s=5.0)
        # Two full laps of the ring: stale stamps must zero before reuse.
        for _ in range(12):
            tracker.record("lookup", "ok", 200)
            clock.advance(1.0)
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        assert block["requests"] == 5  # only the trailing window survives

    def test_degraded_only_counts_ok_responses(self):
        tracker, _clock = make_tracker()
        tracker.record("lookup", "ok", 200, degraded="stale")
        tracker.record("lookup", "shed", 429, degraded="rejected")  # shed, not degraded
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        assert block["degraded"] == 1 and block["shed"] == 1

    def test_concurrent_records_are_not_lost(self):
        tracker, _clock = make_tracker()

        def hammer():
            for _ in range(500):
                tracker.record("query", "ok", 200)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        block = tracker.route_summary("query", registry=MetricsRegistry())
        assert block["requests"] == 2000


class TestBurnRate:
    def test_healthy_traffic_does_not_burn(self):
        tracker, _clock = make_tracker()
        for _ in range(100):
            tracker.record("lookup", "ok", 200)
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        assert block["unhealthy_ratio"] == 0.0
        assert block["budget_burn_rate"] == 0.0
        assert block["burning"] is False

    def test_burn_flips_when_the_ladder_engages(self):
        """Degraded-but-200 responses spend budget: burn > 1.0 means the
        service is answering but paying for it — the pageable signal."""
        tracker, _clock = make_tracker()
        for index in range(100):
            degraded = "stale" if index < 5 else None
            tracker.record("lookup", "ok", 200, degraded=degraded)
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        # 5% unhealthy against a 1% budget: burning 5x as fast as allowed.
        assert block["budget_burn_rate"] == pytest.approx(5.0)
        assert block["burning"] is True

    def test_burn_exactly_at_budget_is_not_burning(self):
        tracker, _clock = make_tracker()
        for index in range(100):
            tracker.record("lookup", "error" if index == 0 else "ok",
                           500 if index == 0 else 200)
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        assert block["budget_burn_rate"] == pytest.approx(1.0)
        assert block["burning"] is False

    def test_latency_gate_reads_the_histogram(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("serve.route.lookup.seconds")
        for _ in range(100):
            histogram.observe(0.4)  # 400ms against a 250ms target
        tracker, _clock = make_tracker()
        tracker.record("lookup", "ok", 200)
        block = tracker.route_summary("lookup", registry=registry)
        assert block["p95_ms"] > 250.0
        assert block["latency_ok"] is False

    def test_empty_histogram_passes_the_latency_gate(self):
        tracker, _clock = make_tracker()
        block = tracker.route_summary("lookup", registry=MetricsRegistry())
        assert block["latency_ok"] is True


class TestSummary:
    def test_silent_routes_report_zero_not_absence(self):
        tracker, _clock = make_tracker()
        tracker.record("lookup", "ok", 200)
        summary = tracker.summary(registry=MetricsRegistry())
        assert set(summary["routes"]) == set(DEFAULT_ROUTES)
        assert summary["routes"]["paths"]["requests"] == 0

    def test_untargeted_route_rides_along_with_defaults(self):
        tracker, _clock = make_tracker(targets={"lookup": SLOTarget(route="lookup")})
        tracker.record("custom", "ok", 200)
        summary = tracker.summary(registry=MetricsRegistry())
        assert "custom" in summary["routes"]
        assert summary["routes"]["custom"]["target_availability"] == 0.99

    def test_worst_burn_rate_and_burning_flag(self):
        tracker, _clock = make_tracker()
        tracker.record("lookup", "ok", 200)
        for _ in range(10):
            tracker.record("ask", "shed", 429)
        summary = tracker.summary(registry=MetricsRegistry())
        assert summary["worst_burn_rate"] == summary["routes"]["ask"]["budget_burn_rate"]
        assert summary["worst_burn_rate"] > 1.0
        assert summary["burning"] is True

    def test_reset_drops_windows_but_keeps_targets(self):
        tracker, _clock = make_tracker()
        tracker.record("lookup", "shed", 429)
        tracker.reset()
        summary = tracker.summary(registry=MetricsRegistry())
        assert summary["routes"]["lookup"]["requests"] == 0
        assert set(tracker.targets) == set(DEFAULT_ROUTES)

    def test_global_tracker_reset_helper(self):
        tracker = get_slo_tracker()
        tracker.record("lookup", "ok", 200)
        reset_slo_tracker()
        summary = tracker.summary(registry=MetricsRegistry())
        assert summary["routes"]["lookup"]["requests"] == 0
