"""Tests for experiment infrastructure."""

import pytest

from repro.evalx.registry import EXPERIMENTS
from repro.evalx.tables import ResultTable, render_table


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row(1, 0.5)
        rendered = table.render()
        assert "== T ==" in rendered
        assert "0.500" in rendered

    def test_row_arity_checked(self):
        table = ResultTable(title="T", columns=["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_column_values(self):
        table = ResultTable(title="T", columns=["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column_values("b") == [2, 4]

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            ResultTable(title="T", columns=["a"]).column_values("z")

    def test_note_rendered(self):
        table = ResultTable(title="T", columns=["a"], note="hello")
        table.add_row(1)
        assert "note: hello" in table.render()

    def test_show_prints_exactly_the_rendering(self, capsys):
        table = ResultTable(title="T", columns=["a"])
        table.add_row(1)
        table.show()
        assert capsys.readouterr().out == "\n" + table.render() + "\n"


class TestRenderTable:
    def test_returns_string_without_printing(self, capsys):
        rendered = render_table("T", ["a", "b"], [[1, 0.5], [2, 0.25]], note="n")
        assert capsys.readouterr().out == ""
        assert "== T ==" in rendered
        assert "0.250" in rendered
        assert "note: n" in rendered

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [[1, 2]])


class TestRegistry:
    def test_every_figure_registered(self):
        assert {"FIG2", "FIG3", "FIG4", "FIG5"} <= set(EXPERIMENTS)

    def test_section_claims_registered(self):
        expected = {
            "T-WEB",
            "T-LINKPRED",
            "T-OPENTAG",
            "T-TXTRACT",
            "T-ADATAG",
            "T-PAM",
            "T-AUTOKNOW",
            "T-LLMQA",
            "T-DUAL",
            "T-GROWTH",
            "T-SUCCESS",
        }
        assert expected <= set(EXPERIMENTS)

    def test_bench_modules_exist(self):
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for experiment in EXPERIMENTS.values():
            assert os.path.exists(os.path.join(root, experiment.bench_module)), (
                f"{experiment.experiment_id} points at a missing bench "
                f"{experiment.bench_module}"
            )

    def test_claims_non_empty(self):
        assert all(experiment.claim for experiment in EXPERIMENTS.values())
