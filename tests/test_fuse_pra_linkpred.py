"""Tests for PRA and TransE link prediction."""

import numpy as np
import pytest

from repro.fuse.linkpred import TransEModel
from repro.fuse.pra import PathRankingModel
from repro.ml.metrics import roc_auc


@pytest.fixture(scope="module")
def graph(small_world):
    return small_world.truth


def _directed_pairs(graph):
    positives = [
        (triple.subject, str(triple.object))
        for triple in graph.query(predicate="directed_by")
    ]
    rng = np.random.default_rng(5)
    objects = sorted({obj for _s, obj in positives})
    existing = set(positives)
    negatives = []
    for subject, _obj in positives:
        for _ in range(2):
            candidate = objects[int(rng.integers(0, len(objects)))]
            if (subject, candidate) not in existing:
                negatives.append((subject, candidate))
    return positives, negatives


class TestPathRanking:
    @pytest.fixture(scope="class")
    def model(self, graph):
        return PathRankingModel("directed_by", max_path_length=3, seed=1).fit(graph)

    def test_learns_discriminative_paths(self, model):
        assert model.paths_

    def test_separates_true_from_corrupted(self, graph, model):
        positives, negatives = _directed_pairs(graph)
        sample_pos = positives[:30]
        sample_neg = negatives[:30]
        scores = model.score_pairs(sample_pos + sample_neg)
        labels = [1] * len(sample_pos) + [0] * len(sample_neg)
        assert roc_auc(labels, scores) > 0.6

    def test_score_in_unit_interval(self, graph, model):
        positives, _ = _directed_pairs(graph)
        score = model.score(*positives[0])
        assert 0.0 <= score <= 1.0

    def test_unknown_relation_rejected(self, graph):
        with pytest.raises(ValueError):
            PathRankingModel("nonexistent").fit(graph)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PathRankingModel("directed_by").score("a", "b")


class TestTransE:
    @pytest.fixture(scope="class")
    def model(self, graph):
        return TransEModel(dim=20, n_epochs=60, seed=2).fit(graph)

    def test_true_triples_outscore_corrupted(self, graph, model):
        positives, negatives = _directed_pairs(graph)
        scores = [model.score(s, "directed_by", o) for s, o in positives[:40]]
        corrupt = [model.score(s, "directed_by", o) for s, o in negatives[:40]]
        labels = [1] * len(scores) + [0] * len(corrupt)
        assert roc_auc(labels, scores + corrupt) > 0.75

    def test_rank_objects_contains_truth_often(self, graph, model):
        positives, _ = _directed_pairs(graph)
        hits = 0
        for subject, obj in positives[:30]:
            top = [candidate for candidate, _score in model.rank_objects(subject, "directed_by", top_k=10)]
            if obj in top:
                hits += 1
        assert hits / 30 > 0.3

    def test_unknown_ids_score_low(self, model):
        assert model.score("nope", "directed_by", "alsono") == -10.0

    def test_entity_vectors_normalized(self, model):
        norms = np.linalg.norm(model.entity_vectors_, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TransEModel().score("a", "b", "c")

    def test_empty_graph_rejected(self):
        from repro.core.graph import KnowledgeGraph
        from repro.core.ontology import Ontology

        ontology = Ontology()
        ontology.add_class("T")
        empty = KnowledgeGraph(ontology=ontology)
        with pytest.raises(ValueError):
            TransEModel().fit(empty)
