"""Tests for web-table and annotated-page generators."""

import pytest

from repro.datagen.webextras import (
    SCHEMA_ORG_PROPS,
    generate_annotated_pages,
    generate_web_tables,
)


class TestWebTables:
    def test_shapes(self, small_world):
        tables = generate_web_tables(small_world, n_tables=4, rows_per_table=8, seed=1)
        assert len(tables) == 4
        for table in tables:
            assert len(table.header) == len(table.canonical_columns)
            assert all(len(row) == len(table.header) for row in table.rows)
            assert len(table.rows) == len(table.row_world_ids)

    def test_alternating_classes(self, small_world):
        tables = generate_web_tables(small_world, n_tables=4, seed=1)
        assert {table.entity_class for table in tables} == {"Movie", "Person"}

    def test_cells_mostly_match_truth(self, small_world):
        tables = generate_web_tables(small_world, n_tables=2, cell_noise_rate=0.0, seed=2)
        table = tables[0]
        for row, world_id in zip(table.rows, table.row_world_ids):
            record = small_world.record_for(world_id)
            for column, canonical in enumerate(table.canonical_columns):
                expected = record.get(canonical, "")
                if isinstance(expected, list):
                    expected = expected[0] if expected else ""
                assert row[column] == str(expected)

    def test_noise_corrupts_cells(self, small_world):
        clean = generate_web_tables(small_world, n_tables=2, cell_noise_rate=0.0, seed=3)
        noisy = generate_web_tables(small_world, n_tables=2, cell_noise_rate=0.5, seed=3)
        differences = sum(
            1
            for clean_table, noisy_table in zip(clean, noisy)
            for clean_row, noisy_row in zip(clean_table.rows, noisy_table.rows)
            if clean_row != noisy_row
        )
        assert differences > 0


class TestAnnotatedPages:
    def test_pages_have_itemprops(self, small_world):
        pages = generate_annotated_pages(small_world, n_pages=6, seed=1)
        for page in pages:
            props = [
                node.attributes.get("itemprop")
                for node in page.root.elements()
                if "itemprop" in node.attributes
            ]
            assert "name" in props

    def test_truth_excludes_misannotated(self, small_world):
        pages = generate_annotated_pages(
            small_world, n_pages=30, wrong_prop_rate=0.5, seed=2
        )
        # With heavy mis-annotation, truth should be visibly smaller than
        # the number of annotated values.
        total_truth = sum(len(page.truth) for page in pages)
        total_spans = sum(
            1
            for page in pages
            for node in page.root.elements()
            if node.attributes.get("itemprop") not in (None, "name")
        )
        assert total_truth < total_spans

    def test_prop_vocabulary_known(self, small_world):
        pages = generate_annotated_pages(small_world, n_pages=10, wrong_prop_rate=0.0, seed=3)
        allowed = set(SCHEMA_ORG_PROPS.values()) | {"name"}
        for page in pages:
            for node in page.root.elements():
                prop = node.attributes.get("itemprop")
                if prop is not None:
                    assert prop in allowed
