"""Fast paths must be byte-identical to the naive reference algorithms.

Every optimization in the performance layer (batch ingestion with deferred
index builds, index-walk merges, join reordering, pmap fan-out) claims to
change *speed only*.  These tests pin that claim: graph state, provenance,
lineage ledgers, and query answers are compared structure-for-structure
against the naive implementations the fast paths replaced.
"""

import os

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.query import PathQuery, TriplePattern, conjunctive_query
from repro.core.triple import Provenance, Triple
from repro.evalx import bench
from repro.obs import enabled_scope
from repro.obs.lineage import get_ledger


def _ledger_events():
    """The global ledger's event structure as plain comparable data."""
    ledger = get_ledger()
    return {
        key: [event.to_dict() for event in events]
        for key, events in ledger._events.items()
    }


def _index_snapshot(graph):
    """All three indexes as plain nested dicts (empty rows dropped)."""
    graph._ensure_indexes()

    def norm(index):
        return {
            key: {inner: set(values) for inner, values in row.items() if values}
            for key, row in index.items()
            if row
        }

    return norm(graph._spo), norm(graph._pos), norm(graph._osp)


def _graph_state(graph):
    return {
        "triples": set(graph._triples),
        "provenance": {
            triple: list(records)
            for triple, records in graph._provenance.items()
            if records
        },
        "entities": sorted(graph._entities),
        "aliases": {
            entity_id: set(entity.aliases)
            for entity_id, entity in graph._entities.items()
        },
        "name_index": {
            name: set(ids) for name, ids in graph._name_index.items() if ids
        },
        "indexes": _index_snapshot(graph),
    }


@pytest.fixture
def items():
    return bench.make_triples(n_entities=60, n_triples=700, seed=11)


class TestBatchIngestEquivalence:
    def test_state_identical_to_per_call_loop(self, items):
        fast = bench._empty_graph(60)
        fast.add_triples_batch(items)
        slow = bench._empty_graph(60)
        for triple, provenance in items:
            slow.add_triple(triple, provenance=provenance)
        assert _graph_state(fast) == _graph_state(slow)

    def test_lineage_ledger_identical(self, items):
        with enabled_scope():
            fast = bench._empty_graph(60)
            fast.add_triples_batch(items)
            fast_events = _ledger_events()
            fast_sequence = get_ledger()._sequence
        with enabled_scope():
            slow = bench._empty_graph(60)
            for triple, provenance in items:
                slow.add_triple(triple, provenance=provenance)
            slow_events = _ledger_events()
            slow_sequence = get_ledger()._sequence
        assert fast_events == slow_events
        assert fast_sequence == slow_sequence

    def test_returns_new_triple_count(self, items):
        graph = bench._empty_graph(60)
        n_new = graph.add_triples_batch(items)
        assert n_new == len(graph)
        assert graph.add_triples_batch(items) == 0  # all duplicates now

    def test_mixed_bare_and_provenanced_items(self):
        graph = bench._empty_graph(4)
        mixed = [
            Triple("e0", "p", "x"),
            (Triple("e1", "p", "y"), Provenance(source="s1")),
            (Triple("e2", "p", "z"), None),
        ]
        assert graph.add_triples_batch(mixed) == 3
        assert graph.provenance(Triple("e1", "p", "y")) == [Provenance(source="s1")]
        assert graph.provenance(Triple("e0", "p", "x")) == []

    def test_unknown_subject_raises_and_keeps_partial_state(self):
        graph = bench._empty_graph(2)
        batch = [
            (Triple("e0", "p", "x"), None),
            (Triple("ghost", "p", "y"), None),
            (Triple("e1", "p", "z"), None),
        ]
        with pytest.raises(ValueError, match="unknown subject"):
            graph.add_triples_batch(batch)
        # Items before the bad one landed, exactly like the per-call loop.
        assert Triple("e0", "p", "x") in graph
        assert Triple("e1", "p", "z") not in graph
        assert graph.query(subject="e0") == [Triple("e0", "p", "x")]

    def test_deferred_indexes_invisible_to_readers(self, items):
        graph = bench._empty_graph(60)
        graph.add_triples_batch(items)
        # Before any read the rows are pending; every read path drains them.
        sample = items[0][0]
        assert sample in graph
        assert graph.query(subject=sample.subject, predicate=sample.predicate)
        assert graph.pattern_cardinality(subject=sample.subject) > 0
        assert not graph._pending_index


class TestMergeEquivalence:
    def _linked_graph(self):
        graph = bench._build_graph(40, 400)
        return graph

    def test_fast_merge_matches_naive_scan(self):
        pairs = bench._merge_pairs(bench.WorkloadScale(40, 400, 12, 0, 0))
        with enabled_scope():
            fast = self._linked_graph()
            fast_rewrites = [
                fast.merge_entities(keep, drop) for keep, drop in pairs
            ]
            fast_state = _graph_state(fast)
            fast_events = _ledger_events()
        with enabled_scope():
            slow = self._linked_graph()
            slow_rewrites = [
                bench.naive_merge_entities(slow, keep, drop) for keep, drop in pairs
            ]
            slow_state = _graph_state(slow)
            slow_events = _ledger_events()
        assert fast_rewrites == slow_rewrites
        assert fast_state == slow_state
        assert fast_events == slow_events

    def test_merge_after_batch_ingest(self, items):
        fast = bench._empty_graph(60)
        fast.add_triples_batch(items)
        slow = bench._empty_graph(60)
        for triple, provenance in items:
            slow.add_triple(triple, provenance=provenance)
        fast.merge_entities("e0", "e1")
        bench.naive_merge_entities(slow, "e0", "e1")
        assert _graph_state(fast) == _graph_state(slow)

    def test_self_merge_rejected_by_both_paths(self):
        graph = self._linked_graph()
        with pytest.raises(ValueError, match="into itself"):
            graph.merge_entities("e0", "e0")
        with pytest.raises(ValueError, match="into itself"):
            bench.naive_merge_entities(graph, "e0", "e0")

    def test_self_loop_triple_rewrites_like_scan(self):
        for merge in (
            KnowledgeGraph.merge_entities,
            bench.naive_merge_entities,
        ):
            ontology = Ontology()
            ontology.add_class("Thing")
            graph = KnowledgeGraph(ontology=ontology)
            graph.add_entity("keep", "Keep", "Thing")
            graph.add_entity("drop", "Drop", "Thing")
            graph.add("drop", "knows", "drop")
            merge(graph, "keep", "drop")
            assert set(graph._triples) == {Triple("keep", "knows", "keep")}


class TestRemoveTriplePruning:
    def test_empty_rows_are_pruned(self):
        graph = bench._empty_graph(3)
        graph.add("e0", "p", "x")
        graph.add("e0", "q", "e1")
        assert graph.remove_triple(Triple("e0", "p", "x"))
        assert "p" not in graph._spo.get("e0", {})
        assert "p" not in graph._pos
        assert "x" not in graph._osp
        assert graph.remove_triple(Triple("e0", "q", "e1"))
        assert "e0" not in graph._spo
        assert "e1" not in graph._osp

    def test_remove_missing_is_false(self):
        graph = bench._empty_graph(2)
        assert not graph.remove_triple(Triple("e0", "p", "x"))


class TestQueryEquivalence:
    def test_conjunctive_reorder_same_solutions(self):
        graph = bench._build_graph(50, 600)
        patterns = [
            TriplePattern("?a", "related_to", "?b"),
            TriplePattern("?b", "part_of", "?c"),
            TriplePattern("?a", "label", "?name"),
        ]
        reordered = conjunctive_query(graph, patterns, reorder=True)
        in_order = conjunctive_query(graph, patterns, reorder=False)

        def canonical(solutions):
            return sorted(sorted(binding.items()) for binding in solutions)

        assert canonical(reordered) == canonical(in_order)
        assert reordered  # non-degenerate join

    def test_paths_match_recursive_reference(self):
        graph = bench._build_graph(25, 200)
        query = PathQuery(graph, max_length=3)

        def reference_paths(start, goal, max_paths):
            results = []

            def walk(node, path, visited):
                if len(results) >= max_paths:
                    return
                if node == goal and path:
                    results.append(path)
                    return
                if len(path) >= query.max_length:
                    return
                for relation, neighbor, outgoing in graph.neighbors(node):
                    if neighbor in visited and neighbor != goal:
                        continue
                    walk(
                        neighbor,
                        path + [(relation, 1 if outgoing else -1, neighbor)],
                        visited | {neighbor},
                    )

            walk(start, [], frozenset((start,)))
            return results

        checked = 0
        for start, goal in [("e0", "e5"), ("e3", "e9"), ("e1", "e2")]:
            fast = query.paths(start, goal, max_paths=10_000)
            slow = reference_paths(start, goal, max_paths=10_000)
            assert sorted(map(tuple, (map(tuple, p) for p in fast))) == sorted(
                map(tuple, (map(tuple, p) for p in slow))
            )
            checked += len(fast)
        assert checked > 0


def _public_state(graph):
    """Backend-agnostic observable state, built only from public APIs.

    ``_graph_state`` reaches into the dict backend's internals
    (``_triples``, ``_spo``); the columnar backend has neither, so
    cross-backend equivalence is pinned on what callers can actually
    see: query answers, provenance, entities, aliases, and name lookups.
    """
    graph._materialize_provenance()
    triples = sorted(graph.query(), key=lambda t: t._sort_key())
    return {
        "triples": triples,
        "provenance": {
            triple: records
            for triple in triples
            if (records := graph.provenance(triple))
        },
        "entities": sorted(e.entity_id for e in graph.entities()),
        "aliases": {
            e.entity_id: sorted(e.aliases) for e in graph.entities()
        },
        "names": {
            e.name: sorted(m.entity_id for m in graph.find_by_name(e.name))
            for e in graph.entities()
        },
    }


class TestColumnarBackendEquivalence:
    """The columnar store must be observably identical to the dict backend."""

    def _pair(self, items):
        graphs = []
        for backend in ("dict", "columnar"):
            graph = bench._empty_graph(60, backend=backend)
            graph.add_triples_batch(items)
            graphs.append(graph)
        return graphs

    def test_batch_ingest_state_identical(self, items):
        dict_graph, columnar_graph = self._pair(items)
        assert _public_state(dict_graph) == _public_state(columnar_graph)

    def test_lineage_ledger_identical(self, items):
        states = {}
        for backend in ("dict", "columnar"):
            with enabled_scope():
                graph = bench._empty_graph(60, backend=backend)
                graph.add_triples_batch(items)
                states[backend] = (_ledger_events(), get_ledger()._sequence)
        assert states["dict"] == states["columnar"]

    def test_per_call_ingest_state_identical(self, items):
        graphs = []
        for backend in ("dict", "columnar"):
            graph = bench._empty_graph(60, backend=backend)
            for triple, provenance in items:
                graph.add_triple(triple, provenance=provenance)
            graphs.append(graph)
        assert _public_state(graphs[0]) == _public_state(graphs[1])

    def test_merge_and_remove_state_identical(self, items):
        dict_graph, columnar_graph = self._pair(items)
        victims = [items[3][0], items[11][0], items[40][0]]
        merges = [("e0", "e1"), ("e2", "e3")]
        results = []
        for graph in (dict_graph, columnar_graph):
            removed = [graph.remove_triple(t) for t in victims]
            rewritten = [graph.merge_entities(k, d) for k, d in merges]
            results.append((removed, rewritten))
        assert results[0] == results[1]
        assert _public_state(dict_graph) == _public_state(columnar_graph)

    def test_query_answers_identical(self, items):
        dict_graph, columnar_graph = self._pair(items)
        probes = [
            {"subject": "e0"},
            {"predicate": "related_to"},
            {"obj": "e1"},
            {"subject": "e0", "predicate": "related_to"},
            {"predicate": "related_to", "obj": "e1"},
            {"subject": "ghost"},
            {},
        ]
        for probe in probes:
            assert sorted(
                dict_graph.query(**probe), key=lambda t: t._sort_key()
            ) == sorted(columnar_graph.query(**probe), key=lambda t: t._sort_key())
            assert dict_graph.pattern_cardinality(
                **probe
            ) == columnar_graph.pattern_cardinality(**probe)
        for entity_id in ("e0", "e7", "ghost"):
            assert sorted(dict_graph.neighbors(entity_id)) == sorted(
                columnar_graph.neighbors(entity_id)
            )

    def test_copy_preserves_backend_and_state(self, items):
        _, columnar_graph = self._pair(items)
        clone = columnar_graph.copy()
        assert clone.backend == "columnar"
        assert _public_state(clone) == _public_state(columnar_graph)
        # Mutating the clone must not leak into the original.
        sample = items[0][0]
        clone.remove_triple(sample)
        assert sample in columnar_graph

    def test_stats_report_id_table(self, items):
        dict_graph, columnar_graph = self._pair(items)
        for graph in (dict_graph, columnar_graph):
            stats = graph.stats()
            assert stats["n_id_terms"] > 0
            assert stats["n_triples"] == len(graph)


class TestMutationBeforeFirstIndexRead:
    """Satellite: mutations racing the deferred index build.

    ``add_triples_batch`` defers index rows (``_pending_index`` on the
    dict backend, the bulk-load column install on the columnar one).
    A ``remove_triple`` or ``merge_entities`` issued *before* the first
    index-backed read must neither resurrect removed rows nor leave
    orphaned drop-id rows once the indexes materialize.
    """

    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_remove_before_first_read_stays_removed(self, backend, items):
        graph = bench._empty_graph(60, backend=backend)
        graph.add_triples_batch(items)
        victim = items[0][0]
        assert graph.remove_triple(victim)  # no read has happened yet
        assert victim not in graph
        assert victim not in graph.query(subject=victim.subject)
        assert victim.object not in graph.objects(victim.subject, victim.predicate)
        if backend == "dict":
            assert not graph._pending_index

    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_merge_before_first_read_leaves_no_orphans(self, backend):
        graph = bench._empty_graph(4, backend=backend)
        graph.add_triples_batch(
            [
                Triple("e0", "p", "e1"),
                Triple("e1", "q", "x"),
                Triple("e2", "r", "e1"),
            ]
        )
        graph.merge_entities("e0", "e1")  # before any index-backed read
        assert not graph.has_entity("e1")
        assert graph.query(subject="e1") == []
        assert graph.query(obj="e1") == []
        assert set(graph.query()) == {
            Triple("e0", "p", "e0"),
            Triple("e0", "q", "x"),
            Triple("e2", "r", "e0"),
        }
        if backend == "dict":
            spo, pos, osp = _index_snapshot(graph)
            assert "e1" not in spo
            assert all("e1" not in row for row in pos.values())
            assert "e1" not in osp

    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_remove_then_readd_before_first_read(self, backend, items):
        graph = bench._empty_graph(60, backend=backend)
        graph.add_triples_batch(items)
        victim = items[5][0]
        assert graph.remove_triple(victim)
        assert graph.add_triple(victim)
        assert victim in graph
        assert victim in graph.query(subject=victim.subject)
        assert len(graph.query(subject=victim.subject)) == len(
            set(graph.query(subject=victim.subject))
        )

    @pytest.mark.parametrize("backend", ["dict", "columnar"])
    def test_interleaved_mutations_match_per_call_reference(self, backend, items):
        fast = bench._empty_graph(60, backend=backend)
        fast.add_triples_batch(items)
        fast.remove_triple(items[2][0])
        fast.merge_entities("e4", "e5")

        slow = bench._empty_graph(60, backend=backend)
        for triple, provenance in items:
            slow.add_triple(triple, provenance=provenance)
        slow.query()  # force indexes live before mutating
        slow.remove_triple(items[2][0])
        slow.merge_entities("e4", "e5")

        assert _public_state(fast) == _public_state(slow)


class TestPmapPipelineEquivalence:
    """Whole pipeline stages give identical results in every pmap mode."""

    @pytest.fixture
    def modes(self, monkeypatch):
        def run_in(mode, fn):
            monkeypatch.setenv("REPRO_PMAP_MODE", mode)
            try:
                return fn()
            finally:
                monkeypatch.delenv("REPRO_PMAP_MODE", raising=False)

        return run_in

    def test_fusion_identical_across_modes(self, modes):
        from repro.integrate.fusion import AccuFusion, majority_vote

        claims = bench.make_claims(n_items=80, n_sources=5, seed=5)

        def run():
            fusion = AccuFusion(n_iterations=4)
            return (
                majority_vote(claims),
                fusion.fuse(claims),
                dict(fusion.source_accuracy_),
            )

        serial = modes("serial", run)
        assert modes("thread", run) == serial
        assert modes("process", run) == serial

    def test_linkage_features_identical_across_modes(self, modes):
        from repro.integrate.blocking import BlockingStrategy, candidate_pairs

        left = [{"name": f"Movie number {i}", "release_year": 1990 + i % 9} for i in range(40)]
        right = [{"name": f"Movie number {i}", "release_year": 1990 + i % 9} for i in range(40)]
        strategy = BlockingStrategy()

        def run():
            return candidate_pairs(left, right, strategy)

        serial = modes("serial", run)
        assert serial  # blocking actually produced candidates
        assert modes("thread", run) == serial
        assert modes("process", run) == serial


class TestPartitionedBuildEquivalence:
    """The tentpole contract: ``partitions=N`` is byte-identical to ``=1``.

    Graph state, provenance, lineage ledger, quality snapshot, and the
    ``.rkgs`` snapshot bytes must all be invariant in the partition count
    — sharding the build may only change speed, never output.
    """

    @staticmethod
    def _build(partitions):
        from repro.core.partition import fixture_sources, partitioned_pipeline
        from repro.obs import reset_all

        sources = fixture_sources(n_people=40, n_movies=30, seed=11)
        reset_all()
        with enabled_scope():
            pipeline, context = partitioned_pipeline(sources, name="equiv")
            context = pipeline.run(context, partitions=partitions)
            ledger_state = get_ledger().export_state()
            snapshot = context.artifacts["quality_snapshot"].to_dict()
        reset_all()
        return context.artifacts["kg"], ledger_state, snapshot

    @staticmethod
    def _snapshot_bytes(graph, tmp_path, tag):
        from repro.core import codec

        path = str(tmp_path / f"{tag}.rkgs")
        codec.save_graph(graph, path, include_lineage=False)
        with open(path, "rb") as handle:
            return handle.read()

    def test_state_and_provenance_identical(self):
        reference, _, _ = self._build(1)
        sharded, _, _ = self._build(4)
        assert _public_state(sharded) == _public_state(reference)

    def test_lineage_ledger_identical(self):
        _, reference_ledger, _ = self._build(1)
        _, sharded_ledger, _ = self._build(4)
        assert sharded_ledger == reference_ledger

    def test_quality_snapshot_identical(self):
        _, _, reference_snapshot = self._build(1)
        _, _, sharded_snapshot = self._build(4)
        # Timing fields differ run to run; everything observable must not.
        for snapshot in (reference_snapshot, sharded_snapshot):
            snapshot.pop("captured_unix", None)
            snapshot.pop("capture_seconds", None)
        assert sharded_snapshot == reference_snapshot

    def test_snapshot_bytes_identical_across_counts(self, tmp_path):
        blobs = [
            self._snapshot_bytes(self._build(n)[0], tmp_path, f"p{n}")
            for n in (1, 4, 8)
        ]
        assert blobs[0] == blobs[1] == blobs[2]

    def test_process_mode_workers_identical(self, monkeypatch, tmp_path):
        """Real multiprocess fan-out must not change a byte either."""
        reference, reference_ledger, _ = self._build(1)
        monkeypatch.setenv("REPRO_PMAP_MODE", "process")
        monkeypatch.setenv("REPRO_PMAP_WORKERS", "2")
        sharded, sharded_ledger, _ = self._build(4)
        monkeypatch.delenv("REPRO_PMAP_MODE")
        monkeypatch.delenv("REPRO_PMAP_WORKERS")
        assert _public_state(sharded) == _public_state(reference)
        assert sharded_ledger == reference_ledger
        assert self._snapshot_bytes(sharded, tmp_path, "proc") == (
            self._snapshot_bytes(reference, tmp_path, "ref")
        )
