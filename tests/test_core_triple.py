"""Tests for triples and provenance."""

import pytest

from repro.core.triple import AttributedTriple, Provenance, Triple


class TestTriple:
    def test_tuple_roundtrip(self):
        triple = Triple("s", "p", "o")
        assert triple.as_tuple() == ("s", "p", "o")

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError):
            Triple("", "p", "o")
        with pytest.raises(ValueError):
            Triple("s", "", "o")
        with pytest.raises(ValueError):
            Triple("s", "p", "")

    def test_numeric_object_allowed(self):
        assert Triple("s", "year", 1999).object == 1999

    def test_immutability(self):
        triple = Triple("s", "p", "o")
        with pytest.raises(AttributeError):
            triple.subject = "x"

    def test_replace_subject(self):
        assert Triple("a", "p", "o").replace_subject("b") == Triple("b", "p", "o")

    def test_replace_object(self):
        assert Triple("a", "p", "o").replace_object("q") == Triple("a", "p", "q")

    def test_hashable_and_equal(self):
        assert len({Triple("s", "p", "o"), Triple("s", "p", "o")}) == 1

    def test_ordering_is_lexicographic(self):
        assert Triple("a", "p", "o") < Triple("b", "a", "a")

    def test_str(self):
        assert str(Triple("s", "p", "o")) == "(s, p, o)"


class TestProvenance:
    def test_defaults(self):
        provenance = Provenance(source="imdb")
        assert provenance.confidence == 1.0
        assert provenance.extractor is None

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            Provenance(source="x", confidence=1.5)
        with pytest.raises(ValueError):
            Provenance(source="x", confidence=-0.1)


class TestAttributedTriple:
    def test_confidence_shortcut(self):
        attributed = AttributedTriple(
            Triple("s", "p", "o"), Provenance(source="x", confidence=0.7)
        )
        assert attributed.confidence == 0.7

    def test_default_provenance(self):
        attributed = AttributedTriple(Triple("s", "p", "o"))
        assert attributed.provenance.source == "unknown"
