"""Tests for the fact-verbalization corpus generator."""

import pytest

from repro.datagen.text import TEMPLATES, generate_text_corpus


class TestGenerateTextCorpus:
    def test_size(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=200, seed=1)
        assert len(corpus) == 200

    def test_noise_rate_respected(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=400, noise_rate=0.5, seed=1)
        noise_fraction = sum(1 for m in corpus if m.is_noise) / len(corpus)
        assert 0.4 < noise_fraction < 0.6

    def test_zero_noise(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=100, noise_rate=0.0, seed=1)
        assert all(not mention.is_noise for mention in corpus)

    def test_fact_sentences_are_true(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=300, noise_rate=0.0, seed=2)
        name_to_ids = {}
        for entity in small_world.truth.entities():
            name_to_ids.setdefault(entity.name, []).append(entity.entity_id)
        verified = 0
        for mention in corpus[:100]:
            candidates = name_to_ids.get(mention.subject_text, [])
            object_texts = set()
            for entity_id in candidates:
                for value in small_world.truth.objects(entity_id, mention.predicate):
                    if isinstance(value, str) and small_world.truth.has_entity(value):
                        object_texts.add(small_world.truth.entity(value).name)
                    else:
                        object_texts.add(str(value))
            if mention.object_text in object_texts:
                verified += 1
        assert verified == 100  # every fact sentence verbalizes a true fact

    def test_popularity_weighting_skews_mentions(self, small_world):
        corpus = generate_text_corpus(
            small_world, n_sentences=1000, noise_rate=0.0, popularity_weighted=True, seed=3
        )
        head_names = {
            small_world.truth.entity(entity_id).name
            for entity_id in small_world.popularity.items_in_band("head")
        }
        head_fraction = sum(
            1 for mention in corpus if mention.subject_text in head_names
        ) / len(corpus)
        assert head_fraction > 0.55

    def test_sentence_contains_both_entities(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=50, seed=4)
        for mention in corpus:
            assert mention.subject_text in mention.sentence
            assert mention.object_text in mention.sentence

    def test_templates_cover_core_relations(self):
        for predicate in ("directed_by", "stars", "release_year", "performed_by"):
            assert predicate in TEMPLATES

    def test_deterministic(self, small_world):
        first = generate_text_corpus(small_world, n_sentences=50, seed=8)
        second = generate_text_corpus(small_world, n_sentences=50, seed=8)
        assert [m.sentence for m in first] == [m.sentence for m in second]
