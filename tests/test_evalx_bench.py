"""Tests for the ``repro bench`` trajectory harness."""

import json

import pytest

from repro.cli import main
from repro.evalx import bench


class TestWorkloads:
    def test_make_triples_deterministic(self):
        first = bench.make_triples(30, 200, seed=9)
        second = bench.make_triples(30, 200, seed=9)
        assert first == second
        assert len(first) == 200

    def test_run_bench_quick_single_workload(self):
        run = bench.run_bench(quick=True, workloads=["ingest_batch"], repeats=1)
        assert set(run.results) == {"ingest_batch"}
        result = run.results["ingest_batch"]
        assert result.wall_s > 0
        assert result.ops_per_s > 0
        assert result.speedup_vs_naive is not None and result.speedup_vs_naive > 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            bench.run_bench(quick=True, workloads=["nope"], repeats=1)

    def test_entry_shape(self):
        run = bench.run_bench(quick=True, workloads=["ingest_batch"], repeats=1)
        entry = run.to_entry()
        assert entry["quick"] is True
        assert "ingest_batch" in entry["workloads"]
        workload = entry["workloads"]["ingest_batch"]
        for key in ("wall_s", "n_ops", "ops_per_s", "speedup_vs_naive"):
            assert key in workload
        assert isinstance(entry["git_sha"], str)


class TestTrajectory:
    def _entry(self, ops_per_s, quick=False, sha="abc123"):
        return {
            "git_sha": sha,
            "timestamp": 0.0,
            "quick": quick,
            "workloads": {
                "ingest_batch": {
                    "wall_s": 1.0,
                    "n_ops": 100,
                    "ops_per_s": ops_per_s,
                    "speedup_vs_naive": 1.0,
                }
            },
            "metrics": {},
        }

    def test_append_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH_core.json")
        bench.append_entry(path, self._entry(100.0))
        bench.append_entry(path, self._entry(120.0, sha="def456"))
        document = bench.load_trajectory(path)
        assert document["schema"] == bench.SCHEMA_VERSION
        assert [e["git_sha"] for e in document["entries"]] == ["abc123", "def456"]

    def test_load_missing_file_is_empty_document(self, tmp_path):
        document = bench.load_trajectory(str(tmp_path / "nope.json"))
        assert document["entries"] == []

    def test_previous_entry_matches_mode(self, tmp_path):
        path = str(tmp_path / "BENCH_core.json")
        bench.append_entry(path, self._entry(100.0, quick=False, sha="full1"))
        bench.append_entry(path, self._entry(50.0, quick=True, sha="quick1"))
        document = bench.load_trajectory(path)
        assert bench.previous_entry(document, quick=False)["git_sha"] == "full1"
        assert bench.previous_entry(document, quick=True)["git_sha"] == "quick1"
        assert bench.previous_entry({"entries": []}, quick=False) is None

    def test_check_regressions_flags_big_drop(self):
        baseline = self._entry(100.0)
        slower = self._entry(70.0)  # 30% drop > 20% tolerance
        regressions = bench.check_regressions(slower, baseline, tolerance=0.20)
        assert len(regressions) == 1
        assert regressions[0].workload == "ingest_batch"
        assert "ingest_batch" in regressions[0].describe()

    def test_check_regressions_tolerates_small_drop(self):
        baseline = self._entry(100.0)
        slightly_slower = self._entry(90.0)  # 10% drop within tolerance
        assert bench.check_regressions(slightly_slower, baseline) == []
        assert bench.check_regressions(self._entry(150.0), baseline) == []
        assert bench.check_regressions(self._entry(10.0), None) == []


class TestCliBench:
    def test_bench_quick_writes_trajectory(self, tmp_path, capsys):
        path = str(tmp_path / "BENCH_core.json")
        code = main(
            ["bench", "--quick", "--workload", "ingest_batch", "--repeats", "1", "-o", path]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ingest_batch" in output
        assert "starts the trajectory" in output
        document = json.loads(open(path).read())
        assert len(document["entries"]) == 1
        assert document["entries"][0]["quick"] is True

    def test_bench_regression_gate(self, tmp_path, capsys, monkeypatch):
        path = str(tmp_path / "BENCH_core.json")
        args = ["bench", "--quick", "--workload", "fusion_accu", "--repeats", "1", "-o", path]
        assert main(args) == 0
        capsys.readouterr()

        # Fake a massive slowdown on the second run to trip the gate.
        real_run_bench = bench.run_bench

        def slowed(*call_args, **call_kwargs):
            run = real_run_bench(*call_args, **call_kwargs)
            for name, result in run.results.items():
                run.results[name] = bench.WorkloadResult(
                    name=result.name,
                    wall_s=result.wall_s * 1000.0,
                    n_ops=result.n_ops,
                    naive_wall_s=result.naive_wall_s,
                )
            return run

        monkeypatch.setattr(bench, "run_bench", slowed)
        assert main(args) == 1
        assert "regression" in capsys.readouterr().err
        assert main(args + ["--warn-only"]) == 0
