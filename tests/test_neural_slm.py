"""Tests for the simulated language model."""

import pytest

from repro.datagen.text import TextMention, generate_text_corpus
from repro.neural.slm import SimulatedLM


def _mention(subject, predicate, obj):
    return TextMention(
        sentence=f"{subject} {predicate} {obj} .",
        subject_text=subject,
        object_text=obj,
        predicate=predicate,
    )


class TestSimulatedLM:
    def test_frequent_fact_recalled(self):
        model = SimulatedLM(seed=1)
        model.fit([_mention("Silent River", "directed_by", "Jane Doe")] * 20)
        answers = [model.answer("Silent River", "directed_by") for _ in range(20)]
        correct = sum(1 for a in answers if a.text == "Jane Doe")
        assert correct >= 18

    def test_unknown_subject_abstains_or_confabulates(self):
        model = SimulatedLM(seed=1)
        model.fit([_mention("Silent River", "directed_by", "Jane Doe")] * 5)
        answers = [model.answer("Unknown Movie", "directed_by") for _ in range(30)]
        assert all(a.text is None or not a.from_memory for a in answers)

    def test_confabulation_draws_from_predicate_prior(self):
        model = SimulatedLM(seed=2, abstain_bias=0.0)
        model.fit(
            [_mention("A", "directed_by", "Jane Doe")] * 5
            + [_mention("B", "directed_by", "John Roe")] * 5
        )
        answers = [model.answer("Unknown", "directed_by") for _ in range(30)]
        texts = {a.text for a in answers}
        assert texts <= {"Jane Doe", "John Roe"}

    def test_rare_fact_often_missed(self):
        model = SimulatedLM(seed=3)
        model.fit([_mention("Obscure Film", "directed_by", "Jane Doe")])  # one mention
        answers = [model.answer("Obscure Film", "directed_by") for _ in range(40)]
        recalled = sum(1 for a in answers if a.from_memory)
        assert recalled < 30  # frequency-dependent recall

    def test_name_collision_causes_hallucination(self):
        """Two entities sharing a surface name collide in memory."""
        model = SimulatedLM(seed=4)
        model.fit(
            [_mention("Jane Doe", "birth_place", "Seattle")] * 10
            + [_mention("Jane Doe", "birth_place", "Boston")] * 10
        )
        answers = [model.answer("Jane Doe", "birth_place") for _ in range(40)]
        texts = {a.text for a in answers if a.text}
        assert len(texts) == 2  # both collided values surface

    def test_familiarity_counts_mentions(self):
        model = SimulatedLM()
        model.fit([_mention("A", "p", "x")] * 7)
        assert model.familiarity("a", "p") == 7.0
        assert model.familiarity("b", "p") == 0.0

    def test_noise_sentences_leak_associations(self):
        model = SimulatedLM(seed=5, abstain_bias=0.0, association_noise=1.0)
        noise = TextMention(
            sentence="A and B trended .", subject_text="A", object_text="B", predicate=None
        )
        model.fit([noise] * 30)
        answers = [model.answer("A", "anything") for _ in range(40)]
        assert any(a.text == "B" for a in answers)

    def test_incremental_fit_accumulates(self):
        model = SimulatedLM()
        model.fit([_mention("A", "p", "x")] * 3)
        model.fit([_mention("A", "p", "x")] * 4)
        assert model.familiarity("A", "p") == 7.0

    def test_n_facts_excludes_cooccurrence(self):
        model = SimulatedLM()
        noise = TextMention(sentence="s", subject_text="A", object_text="B", predicate=None)
        model.fit([_mention("A", "p", "x"), noise])
        assert model.n_facts() == 1

    def test_corpus_integration(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=500, seed=7)
        model = SimulatedLM(seed=8).fit(corpus)
        assert model.n_facts() > 50
