"""The serving spine end-to-end: router semantics, HTTP transport, overload."""

import threading

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.serve.admission import AdmissionController
from repro.serve.server import HTTPClient, InProcessClient, start_server
from repro.serve.service import KGService


class StubLM:
    """A fully familiar, always-answering LM (the shed-path foil)."""

    def __init__(self, text="lm-answer"):
        self.text = text
        self.calls = 0

    def familiarity(self, name, predicate):
        return 100.0

    def answer(self, name, predicate):
        self.calls += 1

        class _Reply:
            abstained = False
            text = self.text

        return _Reply()


def build_graph():
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="servetest")
    for index in range(10):
        graph.add_entity(f"e{index}", f"Node {index}", "Thing")
    for index in range(9):
        graph.add(f"e{index}", "next_to", f"e{index + 1}")
    graph.add("e0", "color", "red")
    graph.add("e1", "color", "blue")
    return graph


def make_service(model=None, admission=None, n_shards=1):
    service = KGService(n_shards=n_shards, admission=admission, model=model)
    service.publish(build_graph())
    return service


class TestRoutes:
    def test_lookup_by_id_and_name(self):
        client = InProcessClient(make_service())
        code, body = client.lookup("e0", "color")
        assert code == 200 and body["payload"]["values"] == ["red"]
        code, body = client.lookup("Node 0", "color")
        assert code == 200 and body["payload"]["values"] == ["red"]

    def test_lookup_renders_entity_objects_as_names(self):
        client = InProcessClient(make_service())
        _code, body = client.lookup("e0", "next_to")
        assert body["payload"]["values"] == ["Node 1"]

    def test_paths(self):
        client = InProcessClient(make_service())
        code, body = client.paths("e0", "e2", max_length=3)
        assert code == 200 and body["payload"]["n_paths"] >= 1

    def test_query(self):
        client = InProcessClient(make_service())
        code, body = client.query([["?s", "color", "?c"]])
        assert code == 200 and body["payload"]["n_bindings"] == 2

    def test_ask_without_model_is_kg_only(self):
        client = InProcessClient(make_service(model=None))
        code, body = client.ask("Node 0", "color")
        assert code == 200
        assert body["payload"] == {
            "subject": "Node 0",
            "predicate": "color",
            "answer": "red",
            "origin": "kg",
            "lm_shed": True,
        }

    def test_ask_with_model_takes_lm_path(self):
        model = StubLM()
        client = InProcessClient(make_service(model=model))
        _code, body = client.ask("Node 5", "color")  # no triple: LM answers
        assert body["payload"]["origin"] == "lm"
        assert model.calls >= 1

    def test_bad_requests(self):
        client = InProcessClient(make_service())
        assert client.lookup("", "color")[0] == 400
        assert client.paths("e0", "")[0] == 400
        assert client.query([])[0] == 400
        assert client.query([["only", "two"]])[0] == 400
        assert client.ask("", "")[0] == 400

    def test_unavailable_before_first_publish(self):
        service = KGService()
        client = InProcessClient(service)
        assert client.lookup("e0", "color")[0] == 503

    def test_responses_cached_on_repeat(self):
        client = InProcessClient(make_service())
        first = client.lookup("e0", "color")[1]
        second = client.lookup("e0", "color")[1]
        assert not first["cached"] and second["cached"]
        assert first["payload"] == second["payload"]

    def test_publish_invalidates_cached_responses(self):
        service = make_service()
        client = InProcessClient(service)
        client.lookup("e0", "color")
        assert client.lookup("e0", "color")[1]["cached"]

        graph = build_graph()
        graph.add("e0", "color", "green")
        service.publish(graph)

        _code, body = client.lookup("e0", "color")
        assert not body["cached"]
        assert body["snapshot_version"] == 2
        assert sorted(body["payload"]["values"]) == ["green", "red"]


class TestDegradation:
    def drained_admission(self, **kwargs):
        admission = AdmissionController(rate=0.001, burst=1.0, **kwargs)
        admission.bucket.try_acquire()  # empty the bucket: level 2 from now on
        return admission

    def test_shed_lm_keeps_answering_from_kg(self):
        model = StubLM()
        service = make_service(model=model, admission=self.drained_admission())
        client = InProcessClient(service)
        code, body = client.ask("Node 0", "color")
        assert code == 200
        assert body["payload"]["lm_shed"] is True
        assert body["payload"]["origin"] == "kg"
        assert model.calls == 0

    def test_shed_ask_does_not_poison_cache(self):
        """A degraded KG-only ask must not be served to healthy requests."""
        model = StubLM()
        admission = AdmissionController(rate=100.0, burst=50.0)
        service = make_service(model=model, admission=admission)
        client = InProcessClient(service)

        # Drain to stale level: the ask is answered KG-only, uncached.
        while admission.bucket.fill_fraction() > 0.05:
            admission.bucket.try_acquire()
        _code, degraded = client.ask("Node 5", "color")
        assert degraded["payload"]["lm_shed"] is True

        # Refill: a healthy request recomputes through the LM path.
        admission.bucket._tokens = admission.bucket.capacity
        _code, healthy = client.ask("Node 5", "color")
        assert healthy["payload"]["lm_shed"] is False
        assert healthy["payload"]["origin"] == "lm"
        assert not healthy["cached"]

    def test_stale_cache_served_when_degraded(self):
        admission = AdmissionController(rate=100.0, burst=50.0)
        service = make_service(admission=admission)
        client = InProcessClient(service)
        client.lookup("e0", "color")  # warm the cache while healthy

        graph = build_graph()
        graph.add("e0", "color", "green")
        service.publish(graph)  # cache entry is now one version behind

        while admission.bucket.fill_fraction() > 0.05:
            admission.bucket.try_acquire()
        code, body = client.lookup("e0", "color")
        assert code == 200
        assert body["degraded"] == "stale"
        assert body["payload"]["values"] == ["red"]  # yesterday's answer

    def test_queue_full_sheds_with_429_not_5xx(self):
        admission = AdmissionController(rate=10_000.0, max_concurrent=1)
        service = make_service(admission=admission)
        client = InProcessClient(service)
        blocker = admission.admit("lookup")  # occupy the only slot
        assert blocker.admitted
        try:
            code, body = client.lookup("e5", "color")
            assert code == 429
            assert body["status"] == "shed"
        finally:
            admission.release()

    def test_rejected_request_prefers_stale_answer(self):
        admission = AdmissionController(rate=10_000.0, max_concurrent=1)
        service = make_service(admission=admission)
        client = InProcessClient(service)
        client.lookup("e0", "color")  # warm
        occupied = admission.admit("lookup")
        assert occupied.admitted
        try:
            code, body = client.lookup("e0", "color")
            assert code == 200
            assert body["degraded"] == "stale"
        finally:
            admission.release()

    def test_handler_bugs_become_500_not_raise(self, monkeypatch):
        service = make_service()
        client = InProcessClient(service)
        monkeypatch.setattr(
            service.router,
            "_compute_lookup",
            lambda *args, **kwargs: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        code, body = client.lookup("e0", "color")
        assert code == 500
        assert "boom" in body["payload"]["error"]


class TestHTTPServer:
    @pytest.fixture()
    def http(self):
        service = make_service(model=StubLM())
        server, _thread = start_server(service, port=0)
        try:
            yield HTTPClient(f"http://127.0.0.1:{server.server_address[1]}")
        finally:
            server.shutdown()

    def test_all_four_endpoints(self, http):
        code, body = http.lookup("e0", "color")
        assert code == 200 and body["payload"]["values"] == ["red"]
        code, body = http.paths("e0", "e2")
        assert code == 200 and body["payload"]["n_paths"] >= 1
        code, body = http.query([["?s", "color", "?c"]])
        assert code == 200 and body["payload"]["n_bindings"] == 2
        code, body = http.ask("Node 0", "color")
        assert code == 200 and body["payload"]["answer"]

    def test_http_matches_in_process(self):
        service = make_service()
        server, _thread = start_server(service, port=0)
        try:
            http = HTTPClient(f"http://127.0.0.1:{server.server_address[1]}")
            local = InProcessClient(service)
            for call in (
                lambda c: c.lookup("e0", "color"),
                lambda c: c.query([["?s", "color", "?c"]]),
                lambda c: c.paths("e0", "e2"),
                lambda c: c.ask("Node 0", "color"),
            ):
                code_http, body_http = call(http)
                code_local, body_local = call(local)
                body_http.pop("elapsed_ms")
                body_local.pop("elapsed_ms")
                # The HTTP pass may hit cache entries the local pass warmed.
                body_http.pop("cached")
                body_local.pop("cached")
                assert (code_http, body_http) == (code_local, body_local)
        finally:
            server.shutdown()

    def test_bad_request_and_unknown_route(self, http):
        assert http.lookup("", "")[0] == 400
        code, body = http._get("/nope", {})
        assert code == 404

    def test_healthz_and_stats(self, http):
        code, body = http._get("/healthz", {})
        assert code == 200 and body["ok"] is True
        code, stats = http.stats()
        assert code == 200
        assert stats["snapshot"]["version"] == 1
        assert "cache" in stats and "admission" in stats

    def test_buildz_serves_build_progress(self, http):
        code, body = http.buildz()
        assert code == 200
        assert body["build"]["active"] is False
        assert "items_done" in body["build"]
        # HTTP and in-process views agree (build state is process-global).
        service = make_service()
        assert set(body) == set(InProcessClient(service).buildz()[1])

    def test_malformed_query_body_is_400(self, http):
        code, body = http._send(
            "POST",
            "/query",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        assert code == 400

    def test_concurrent_http_load_zero_5xx(self):
        """Hammer the HTTP server from threads; nothing may 5xx."""
        service = make_service(
            admission=AdmissionController(rate=50.0, burst=20.0, max_concurrent=4)
        )
        server, _thread = start_server(service, port=0)
        codes = []
        lock = threading.Lock()
        try:
            url = f"http://127.0.0.1:{server.server_address[1]}"

            def hammer():
                http = HTTPClient(url)
                for index in range(30):
                    code, _body = http.lookup(f"e{index % 10}", "color")
                    with lock:
                        codes.append(code)

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            server.shutdown()
        assert len(codes) == 180
        assert all(code < 500 for code in codes)
        assert any(code == 200 for code in codes)
