"""Tests for the semi-structured website generator."""

import pytest

from repro.datagen.web import (
    CLOSED_ATTRIBUTES,
    OPEN_ATTRIBUTES,
    SemiStructuredSite,
    WebsiteConfig,
    generate_site,
    generate_web_corpus,
)
from repro.extract.distant import page_topic


@pytest.fixture(scope="module")
def movie_site(small_world=None):
    from repro.datagen.world import WorldConfig, build_world

    world = build_world(WorldConfig(n_people=60, n_movies=60, n_songs=20, seed=5))
    site = generate_site(
        world,
        WebsiteConfig(name="movies.example.com", domain="Movie", n_pages=25, seed=7),
    )
    return world, site


class TestGenerateSite:
    def test_page_count(self, movie_site):
        _world, site = movie_site
        assert len(site.pages) == 25

    def test_topic_heading_matches_entity(self, movie_site):
        world, site = movie_site
        for page in site.pages[:10]:
            assert page_topic(page.root) == page.topic_name
            assert world.truth.entity(page.topic_world_id).name == page.topic_name

    def test_closed_truth_values_present_in_dom(self, movie_site):
        _world, site = movie_site
        for page in site.pages[:10]:
            texts = {node.text for node in page.root.text_nodes()}
            for value in page.closed_truth.values():
                assert value in texts

    def test_open_truth_present_in_dom(self, movie_site):
        _world, site = movie_site
        pages_with_open = [page for page in site.pages if page.open_truth]
        assert pages_with_open
        for page in pages_with_open[:5]:
            texts = {node.text for node in page.root.text_nodes()}
            for value in page.open_truth.values():
                assert value in texts

    def test_closed_attributes_subset_of_domain(self, movie_site):
        _world, site = movie_site
        allowed = set(CLOSED_ATTRIBUTES["Movie"])
        for page in site.pages:
            assert set(page.closed_truth) <= allowed

    def test_boilerplate_present(self, movie_site):
        _world, site = movie_site
        page = site.pages[0]
        widgets = page.root.find_by_class("widget")
        assert len(widgets) == 3

    def test_templates_render_differently(self):
        from repro.datagen.world import WorldConfig, build_world

        world = build_world(WorldConfig(n_people=30, n_movies=30, n_songs=10, seed=5))
        table_site = generate_site(
            world, WebsiteConfig(name="a", domain="Movie", template="table", n_pages=3, seed=1)
        )
        dl_site = generate_site(
            world, WebsiteConfig(name="b", domain="Movie", template="dl", n_pages=3, seed=1)
        )
        assert table_site.pages[0].root.find_by_tag("table")
        assert not dl_site.pages[0].root.find_by_tag("table")
        assert dl_site.pages[0].root.find_by_tag("dl")

    def test_unknown_template_rejected(self, movie_site):
        world, _site = movie_site
        with pytest.raises(ValueError):
            generate_site(world, WebsiteConfig(name="x", template="spiral", n_pages=2))

    def test_unknown_domain_rejected(self, movie_site):
        world, _site = movie_site
        with pytest.raises(ValueError):
            generate_site(world, WebsiteConfig(name="x", domain="Starship", n_pages=2))

    def test_split_helper(self, movie_site):
        _world, site = movie_site
        annotated, rest = site.split(5)
        assert len(annotated) == 5
        assert len(rest) == 20

    def test_label_styles_differ_across_sites(self, movie_site):
        world, _site = movie_site
        style0 = generate_site(
            world, WebsiteConfig(name="s0", domain="Movie", label_style=0, n_pages=2, seed=1)
        )
        style1 = generate_site(
            world, WebsiteConfig(name="s1", domain="Movie", label_style=1, n_pages=2, seed=1)
        )
        texts0 = {node.text for node in style0.pages[0].root.text_nodes()}
        texts1 = {node.text for node in style1.pages[0].root.text_nodes()}
        assert texts0 != texts1


class TestCorpus:
    def test_corpus_covers_domains_and_templates(self):
        from repro.datagen.world import WorldConfig, build_world

        world = build_world(WorldConfig(n_people=60, n_movies=40, n_songs=30, seed=6))
        sites = generate_web_corpus(world, n_sites=6, pages_per_site=5, seed=10)
        domains = {site.config.domain for site in sites}
        templates = {site.config.template for site in sites}
        assert domains == {"Movie", "Person", "Song"}
        assert templates == {"table", "dl", "div"}
