"""Tests for bootstrapped text-pattern extraction."""

import pytest

from repro.datagen.text import generate_text_corpus
from repro.datagen.world import WorldConfig, build_world
from repro.extract.textie import TextPatternExtractor, _find_mentions, _normalize_pattern


@pytest.fixture(scope="module")
def setup():
    world = build_world(WorldConfig(n_people=80, n_movies=60, n_songs=20, seed=41))
    corpus = generate_text_corpus(world, n_sentences=1500, noise_rate=0.25, seed=42)
    entity_names = [entity.name for entity in world.truth.entities()]
    # Seed facts: a slice of the fact sentences' truth, leaving plenty of
    # unseeded facts for bootstrapping to discover.
    seeds = set()
    for mention in corpus:
        if mention.predicate is not None and len(seeds) < 120:
            seeds.add((mention.subject_text, mention.predicate, mention.object_text))
    return world, corpus, entity_names, seeds


class TestMentionFinding:
    def test_finds_ordered_pairs(self):
        mentions = _find_mentions(
            "Silent River was directed by Jane Doe .", ["Silent River", "Jane Doe"]
        )
        assert mentions == [("Silent River", "was directed by", "Jane Doe")]

    def test_longest_name_wins(self):
        mentions = _find_mentions(
            "The Silent River stars Jane Doe .",
            ["Silent River", "The Silent River", "Jane Doe"],
        )
        assert mentions[0][0] == "The Silent River"

    def test_normalize_collapses_digits_and_space(self):
        assert _normalize_pattern("  was   released in 1999 by ") == "was released in # by"


class TestTextPatternExtractor:
    def test_learns_reliable_patterns(self, setup):
        _world, corpus, entity_names, seeds = setup
        extractor = TextPatternExtractor().fit(
            [mention.sentence for mention in corpus], seeds, entity_names
        )
        patterns = extractor.pattern_table()
        assert patterns
        predicates = {stats.predicate for stats in patterns}
        assert "directed_by" in predicates or "stars" in predicates

    def test_extraction_recovers_unseeded_facts(self, setup):
        world, corpus, entity_names, seeds = setup
        extractor = TextPatternExtractor().fit(
            [mention.sentence for mention in corpus], seeds, entity_names
        )
        triples = extractor.extract(
            [mention.sentence for mention in corpus], entity_names
        )
        new_facts = [
            attributed
            for attributed in triples
            if (attributed.triple.subject, attributed.triple.predicate, attributed.triple.object)
            not in seeds
        ]
        assert new_facts  # bootstrapping found facts beyond the seeds

    def test_extraction_is_noisy(self, setup):
        """The paper: text extraction is noisy, fusion must clean it."""
        world, corpus, entity_names, seeds = setup
        extractor = TextPatternExtractor(min_confidence=0.3).fit(
            [mention.sentence for mention in corpus], seeds, entity_names
        )
        triples = extractor.extract(
            [mention.sentence for mention in corpus], entity_names
        )
        truth = set()
        for mention in corpus:
            if mention.predicate:
                truth.add((mention.subject_text, mention.predicate, mention.object_text))
        wrong = sum(
            1
            for attributed in triples
            if (attributed.triple.subject, attributed.triple.predicate, attributed.triple.object)
            not in truth
        )
        assert 0 < len(triples)
        assert wrong >= 0  # noise possible; precision tracked in bench

    def test_confidence_in_unit_interval(self, setup):
        _world, corpus, entity_names, seeds = setup
        extractor = TextPatternExtractor().fit(
            [mention.sentence for mention in corpus], seeds, entity_names
        )
        for attributed in extractor.extract(
            [mention.sentence for mention in corpus[:200]], entity_names
        ):
            assert 0.0 < attributed.confidence <= 1.0

    def test_unfitted_raises(self, setup):
        _world, _corpus, entity_names, _seeds = setup
        with pytest.raises(RuntimeError):
            TextPatternExtractor().extract(["x"], entity_names)

    def test_min_support_filters(self, setup):
        _world, corpus, entity_names, seeds = setup
        strict = TextPatternExtractor(min_pattern_support=100).fit(
            [mention.sentence for mention in corpus], seeds, entity_names
        )
        lenient = TextPatternExtractor(min_pattern_support=2).fit(
            [mention.sentence for mention in corpus], seeds, entity_names
        )
        assert len(strict.patterns_) <= len(lenient.patterns_)
