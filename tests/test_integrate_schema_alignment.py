"""Tests for automatic schema alignment."""

import pytest

from repro.datagen.sources import SourceConfig, derive_source
from repro.integrate.schema_alignment import (
    SchemaMatcher,
    alignment_as_map,
    canonicalize_record,
    oracle_alignment,
)


@pytest.fixture(scope="module")
def renamed_source(small_world):
    return derive_source(
        small_world,
        SourceConfig(
            name="renamed",
            entity_classes=("Movie",),
            field_map={
                "name": "title",
                "release_year": "year",
                "directed_by": "director",
                "runtime": "length_minutes",
            },
            seed=3,
        ),
    )


def _reference_values(world):
    values = {"name": [], "release_year": [], "genre": [], "runtime": [], "directed_by": []}
    for entity in world.truth.entities("Movie"):
        record = world.record_for(entity.entity_id)
        for attribute in values:
            if attribute in record:
                value = record[attribute]
                values[attribute].append(value[0] if isinstance(value, list) else value)
    return values


class TestSchemaMatcher:
    def test_recovers_renamed_fields(self, small_world, renamed_source):
        matcher = SchemaMatcher()
        results = matcher.align(
            renamed_source,
            canonical_attributes=["name", "release_year", "genre", "runtime", "directed_by"],
            reference_values=_reference_values(small_world),
        )
        mapping = alignment_as_map(results)
        assert mapping.get("year") == "release_year"
        assert mapping.get("director") == "directed_by"
        assert mapping.get("genre") == "genre"

    def test_one_to_one(self, small_world, renamed_source):
        matcher = SchemaMatcher(min_score=0.1)
        results = matcher.align(
            renamed_source,
            canonical_attributes=["name", "release_year", "genre"],
            reference_values=_reference_values(small_world),
        )
        fields = [result.source_field for result in results]
        attributes = [result.attribute for result in results]
        assert len(fields) == len(set(fields))
        assert len(attributes) == len(set(attributes))

    def test_name_only_signal_without_reference(self, renamed_source):
        matcher = SchemaMatcher()
        results = matcher.align(
            renamed_source, canonical_attributes=["genre", "release_year"]
        )
        mapping = alignment_as_map(results)
        assert mapping.get("genre") == "genre"

    def test_scores_in_unit_interval(self, small_world, renamed_source):
        results = SchemaMatcher(min_score=0.0).align(
            renamed_source,
            canonical_attributes=["name", "genre"],
            reference_values=_reference_values(small_world),
        )
        assert all(0.0 <= result.score <= 1.0 for result in results)


class TestCanonicalize:
    def test_maps_fields(self, renamed_source):
        alignment = oracle_alignment(renamed_source)
        record = renamed_source.records[0]
        canonical = canonicalize_record(record, alignment)
        assert "name" in canonical

    def test_rejoins_split_names(self, small_world):
        source = derive_source(
            small_world,
            SourceConfig(
                name="split", entity_classes=("Person",), split_person_name=True, seed=4
            ),
        )
        record = source.records[0]
        canonical = canonicalize_record(record, {})
        assert "name" in canonical
        assert canonical["name"]

    def test_unmapped_fields_dropped(self, renamed_source):
        record = renamed_source.records[0]
        canonical = canonicalize_record(record, {"title": "name"})
        assert set(canonical) <= {"name"}

    def test_oracle_alignment_roundtrip(self, small_world, renamed_source):
        """Oracle alignment recovers canonical names from the generator."""
        alignment = oracle_alignment(renamed_source)
        assert alignment["year"] == "release_year"
        assert alignment["director"] == "directed_by"
