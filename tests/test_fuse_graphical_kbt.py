"""Tests for graphical-model fusion and Knowledge-Based Trust."""

import pytest

from repro.fuse.graphical import ExtractionObservation, GraphicalFusion
from repro.fuse.kbt import KnowledgeBasedTrust


def _obs(subject, attribute, value, source, extractor):
    return ExtractionObservation(subject, attribute, value, source, extractor)


def _scenario():
    """20 items over three sources and two extractors.

    'cleansrc' is always right but the 'flaky' extractor garbles it on six
    items; 'dirtysrc' is wrong on half the items; 'okaysrc' is a mostly
    right corroborator (wrong on 3 items).  Corroboration identifies the
    truth, which lets EM attribute cleansrc's garbles to the extractor —
    the extraction-vs-source disambiguation setting of Sec. 2.4."""
    observations = []
    for item in range(20):
        subject = f"e{item}"
        truth = f"v{item}"
        observations.append(_obs(subject, "a", truth, "cleansrc", "solid"))
        if item < 6:
            # flaky misreads the clean source.
            observations.append(_obs(subject, "a", f"garble{item}", "cleansrc", "flaky"))
        else:
            observations.append(_obs(subject, "a", truth, "cleansrc", "flaky"))
        dirty_value = truth if item % 2 == 0 else f"wrong{item}"
        observations.append(_obs(subject, "a", dirty_value, "dirtysrc", "solid"))
        observations.append(_obs(subject, "a", dirty_value, "dirtysrc", "flaky"))
        okay_value = truth if item % 7 else f"oops{item}"
        observations.append(_obs(subject, "a", okay_value, "okaysrc", "solid"))
    return observations


class TestGraphicalFusion:
    def test_truth_posteriors_favor_correct_values(self):
        fusion = GraphicalFusion()
        beliefs = fusion.fuse(_scenario())
        index = {(b.subject, b.value): b.probability for b in beliefs}
        correct = sum(
            1 for item in range(20) if index.get((f"e{item}", f"v{item}"), 0) > 0.5
        )
        assert correct >= 16

    def test_source_accuracies_ordered(self):
        fusion = GraphicalFusion()
        fusion.fuse(_scenario())
        assert fusion.source_accuracy_["cleansrc"] > fusion.source_accuracy_["dirtysrc"]

    def test_extractor_precisions_ordered(self):
        fusion = GraphicalFusion()
        fusion.fuse(_scenario())
        assert fusion.extractor_precision_["solid"] > fusion.extractor_precision_["flaky"]

    def test_empty_observations(self):
        assert GraphicalFusion().fuse([]) == []

    def test_posteriors_subnormalized_per_item(self):
        """Observed-value masses sum to <= 1; the residual is the held-out
        'truth is something nobody extracted' hypothesis."""
        fusion = GraphicalFusion()
        beliefs = fusion.fuse(_scenario())
        totals = {}
        for belief in beliefs:
            key = (belief.subject, belief.attribute)
            totals[key] = totals.get(key, 0.0) + belief.probability
        assert all(0.0 < total <= 1.0 + 1e-9 for total in totals.values())

    def test_lone_uncorroborated_claim_not_overconfident(self):
        """A single extraction with no corroboration must not reach the
        0.9 confidence bar — the calibration KV's threshold relies on."""
        fusion = GraphicalFusion()
        beliefs = fusion.fuse([_obs("e1", "a", "v", "somesrc", "someext")])
        assert beliefs[0].probability < 0.9

    def test_high_confidence_filter(self):
        fusion = GraphicalFusion()
        beliefs = fusion.fuse(_scenario())
        confident = fusion.high_confidence(beliefs, threshold=0.9)
        assert all(belief.probability >= 0.9 for belief in confident)
        assert len(confident) < len(beliefs)


class TestKnowledgeBasedTrust:
    def test_kbt_does_not_blame_source_for_extractor_errors(self):
        """The KBT insight: cleansrc's KBT score should stay high even
        though the flaky extractor garbled some of its pages, while the
        naive per-extraction score drops."""
        kbt = KnowledgeBasedTrust()
        trusts = {t.source: t for t in kbt.evaluate_sources(_scenario())}
        clean = trusts["cleansrc"]
        assert clean.kbt_score > clean.naive_score

    def test_ranking_puts_clean_first(self):
        kbt = KnowledgeBasedTrust()
        assert kbt.rank_sources(_scenario())[0] == "cleansrc"

    def test_extraction_counts(self):
        kbt = KnowledgeBasedTrust()
        trusts = {t.source: t for t in kbt.evaluate_sources(_scenario())}
        assert trusts["cleansrc"].n_extractions == 40
        assert trusts["dirtysrc"].n_extractions == 40
