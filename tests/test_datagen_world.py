"""Tests for the ground-truth world generator."""

import pytest

from repro.datagen.world import World, WorldConfig, build_world


class TestBuildWorld:
    def test_entity_counts(self, small_world):
        config = small_world.config
        assert len(small_world.entity_ids("Person")) == config.n_people
        assert len(small_world.entity_ids("Movie")) == config.n_movies
        assert len(small_world.entity_ids("Song")) == config.n_songs

    def test_deterministic(self):
        first = build_world(WorldConfig(n_people=20, n_movies=10, n_songs=5, seed=3))
        second = build_world(WorldConfig(n_people=20, n_movies=10, n_songs=5, seed=3))
        assert sorted(t.as_tuple() for t in first.truth.triples()) == sorted(
            t.as_tuple() for t in second.truth.triples()
        )

    def test_every_movie_has_director_and_year(self, small_world):
        for movie_id in small_world.entity_ids("Movie"):
            assert small_world.truth.objects(movie_id, "directed_by")
            assert small_world.truth.objects(movie_id, "release_year")

    def test_movies_have_multiple_actors(self, small_world):
        stars = [
            len(small_world.truth.objects(movie_id, "stars"))
            for movie_id in small_world.entity_ids("Movie")
        ]
        assert min(stars) >= 2

    def test_cross_domain_connection_exists(self, small_world):
        featured = [
            song_id
            for song_id in small_world.entity_ids("Song")
            if small_world.truth.objects(song_id, "featured_in")
        ]
        assert featured  # music connects to movies, as in Fig. 1(a)

    def test_popularity_covers_all_entities(self, small_world):
        for entity_id in small_world.entity_ids():
            assert small_world.popularity.weight(entity_id) > 0

    def test_record_resolves_entity_references(self, small_world):
        movie_id = small_world.entity_ids("Movie")[0]
        record = small_world.record_for(movie_id)
        director = record["directed_by"]
        # The record carries the director's *name*, not their id.
        assert not str(director).startswith("P")
        assert record["class"] == "Movie"

    def test_record_multivalued_attributes_sorted_lists(self, small_world):
        movie_id = small_world.entity_ids("Movie")[0]
        record = small_world.record_for(movie_id)
        assert isinstance(record["stars"], list)
        assert record["stars"] == sorted(record["stars"], key=str)

    def test_true_fact(self, small_world):
        movie_id = small_world.entity_ids("Movie")[0]
        facts = small_world.true_fact(movie_id, "release_year")
        assert len(facts) == 1

    def test_name_collisions_exist(self, small_world):
        """Homonyms are required for the disambiguation challenge."""
        names = [entity.name for entity in small_world.truth.entities("Person")]
        assert len(names) > len(set(names))

    def test_ontology_validates_generated_triples(self, small_world):
        ontology = small_world.truth.ontology
        for triple in list(small_world.truth.triples())[:200]:
            subject_class = small_world.truth.entity(triple.subject).entity_class
            assert ontology.validate_triple(triple, subject_class) == []
