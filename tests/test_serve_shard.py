"""Sharded replicas: partitioning correctness and shard-count invariance."""

import random

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.query import PathQuery, TriplePattern, conjunctive_query
from repro.serve.shard import ScatterGatherPlanner, build_shards, shard_of


def build_test_graph(n_entities=40, n_triples=220, seed=5):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="shardtest")
    for index in range(n_entities):
        graph.add_entity(f"e{index}", f"Entity {index}", "Thing")
    rng = random.Random(seed)
    for _ in range(n_triples):
        subject = f"e{rng.randrange(n_entities)}"
        if rng.random() < 0.7:
            graph.add(subject, rng.choice(["related_to", "part_of"]), f"e{rng.randrange(n_entities)}")
        else:
            graph.add(subject, "label", f"value-{rng.randrange(30)}")
    return graph


@pytest.fixture(scope="module")
def graph():
    return build_test_graph()


@pytest.fixture(scope="module")
def planner1(graph):
    return ScatterGatherPlanner(build_shards(graph, 1))


@pytest.fixture(scope="module")
def planner4(graph):
    return ScatterGatherPlanner(build_shards(graph, 4))


class TestShardOf:
    def test_deterministic(self):
        assert shard_of("e7", 4) == shard_of("e7", 4)

    def test_single_shard_short_circuits(self):
        assert shard_of("anything", 1) == 0

    def test_spreads_subjects(self):
        owners = {shard_of(f"e{i}", 4) for i in range(200)}
        assert owners == {0, 1, 2, 3}


class TestBuildShards:
    def test_one_shard_reuses_graph(self, graph):
        (only,) = build_shards(graph, 1)
        assert only is graph

    def test_triples_partition_exactly(self, graph):
        shards = build_shards(graph, 4)
        assert sum(len(shard) for shard in shards) == len(graph)
        for shard_index, shard in enumerate(shards):
            for triple in shard.triples():
                assert shard_of(triple.subject, 4) == shard_index

    def test_entities_replicated_everywhere(self, graph):
        shards = build_shards(graph, 3)
        for shard in shards:
            for entity in graph.entities():
                assert shard.has_entity(entity.entity_id)

    def test_rejects_zero_shards(self, graph):
        with pytest.raises(ValueError):
            build_shards(graph, 0)


class TestShardInvariance:
    """The acceptance gate: 1-shard and 4-shard answers are identical."""

    def test_lookup_invariant(self, graph, planner1, planner4):
        for index in range(0, 40, 3):
            subject = f"e{index}"
            for predicate in ("related_to", "part_of", "label"):
                assert planner1.objects(subject, predicate) == planner4.objects(
                    subject, predicate
                ), (subject, predicate)

    def test_scatter_query_invariant(self, graph, planner1, planner4):
        for predicate in ("related_to", "part_of", "label", "missing"):
            assert planner1.query(predicate=predicate) == planner4.query(
                predicate=predicate
            )
        assert planner1.query(obj="e3") == planner4.query(obj="e3")
        assert planner1.query() == planner4.query()

    def test_query_matches_unsharded_graph(self, graph, planner4):
        assert planner4.query(predicate="related_to") == graph.query(
            predicate="related_to"
        )
        assert planner4.query() == sorted(graph.query())

    def test_cardinality_is_exact(self, graph, planner4):
        for predicate in ("related_to", "part_of", "label"):
            assert planner4.pattern_cardinality(
                predicate=predicate
            ) == graph.pattern_cardinality(predicate=predicate)

    def test_neighbors_invariant(self, graph, planner1, planner4):
        for index in range(0, 40, 5):
            assert planner1.neighbors(f"e{index}") == planner4.neighbors(f"e{index}")

    def test_conjunctive_query_invariant(self, planner1, planner4):
        patterns = [
            TriplePattern("?x", "related_to", "?y"),
            TriplePattern("?y", "part_of", "?z"),
        ]
        assert planner1.conjunctive_query(patterns) == planner4.conjunctive_query(
            patterns
        )

    def test_conjunctive_query_matches_core(self, graph, planner4):
        patterns = [
            TriplePattern("?x", "related_to", "?y"),
            TriplePattern("?y", "part_of", "?z"),
        ]
        assert planner4.conjunctive_query(patterns) == conjunctive_query(
            graph, patterns
        )

    def test_paths_invariant(self, graph, planner1, planner4):
        cases = [("e0", "e9"), ("e3", "e17"), ("e5", "e5x-missing")]
        for start, goal in cases:
            if not graph.has_entity(goal):
                continue
            assert planner1.paths(start, goal, max_length=3, max_paths=10) == (
                planner4.paths(start, goal, max_length=3, max_paths=10)
            )

    def test_paths_match_core_pathquery(self, graph, planner4):
        expected = PathQuery(graph, max_length=3).paths("e0", "e9", max_paths=10)
        assert planner4.paths("e0", "e9", max_length=3, max_paths=10) == expected

    def test_entity_directory(self, graph, planner4):
        assert planner4.has_entity("e1")
        assert not planner4.has_entity("nope")
        assert planner4.entity("e1").name == "Entity 1"
        assert [e.entity_id for e in planner4.find_by_name("Entity 2")] == ["e2"]
