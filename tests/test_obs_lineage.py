"""Tests for the knowledge lineage ledger (repro.obs.lineage)."""

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.pipeline import ConstructionPipeline
from repro.core.triple import Provenance, Triple
from repro.integrate.fusion import AccuFusion, ValueClaim
from repro.obs import enabled_scope
from repro.obs.lineage import (
    LineageLedger,
    explain,
    get_ledger,
    record_fusion,
    record_merge,
    record_observation,
    record_rejection,
)


class TestLedger:
    def test_observation_explain_round_trip(self):
        ledger = LineageLedger()
        ledger.observation(
            "m1", "directed_by", "mann", source="imdb", extractor="wrapper", confidence=0.9
        )
        chain = ledger.explain("m1", "directed_by", "mann")
        assert (chain.subject, chain.predicate, chain.object) == ("m1", "directed_by", "mann")
        (event,) = chain.events
        assert event.kind == "observation"
        assert event.detail["source"] == "imdb"
        assert event.detail["extractor"] == "wrapper"
        assert event.detail["confidence"] == 0.9

    def test_untracked_triple_yields_empty_chain(self):
        chain = LineageLedger().explain("nobody", "p", "o")
        assert chain.events == []
        assert chain.verdict is None

    def test_object_is_stringified_for_keying(self):
        ledger = LineageLedger()
        ledger.observation("m1", "year", 1995, source="imdb")
        assert len(ledger.explain("m1", "year", "1995").events) == 1

    def test_merge_makes_pre_merge_events_reachable(self):
        ledger = LineageLedger()
        ledger.observation("m1_dup", "year", "1995", source="freebase")
        ledger.merge("m1", "m1_dup", n_rewritten=1)
        chain = ledger.explain("m1", "year", "1995")
        kinds = [event.kind for event in chain.events]
        assert kinds == ["observation", "merge"]
        assert chain.events[1].detail["dropped"] == "m1_dup"

    def test_merge_aliases_are_transitive(self):
        ledger = LineageLedger()
        ledger.observation("m1_oldest", "year", "1995", source="s1")
        ledger.merge("m1_dup", "m1_oldest")
        ledger.merge("m1", "m1_dup")
        assert any(
            event.kind == "observation"
            for event in ledger.explain("m1", "year", "1995").events
        )

    def test_fusion_verdict_and_trust_scores(self):
        ledger = LineageLedger()
        ledger.observation("m1", "year", "1995", source="imdb")
        ledger.fusion(
            "m1",
            "year",
            "1995",
            verdict="accepted",
            confidence=0.97,
            source_trust={"imdb": 0.9, "junk": 0.2},
            extractor_trust={"wrapper": 0.95},
        )
        chain = ledger.explain("m1", "year", "1995")
        assert chain.verdict == "accepted"
        fusion_event = chain.events[-1]
        assert fusion_event.detail["source_trust"] == {"imdb": 0.9, "junk": 0.2}
        assert fusion_event.detail["extractor_trust"] == {"wrapper": 0.95}

    def test_rejection_is_the_verdict(self):
        ledger = LineageLedger()
        ledger.rejection("p1", "flavor", "purple", reason="not in catalog vocabulary")
        chain = ledger.explain("p1", "flavor", "purple")
        assert chain.verdict == "rejected"
        assert chain.events[0].detail["reason"] == "not in catalog vocabulary"

    def test_fused_keys_filters_by_verdict(self):
        ledger = LineageLedger()
        ledger.fusion("a", "p", "x", verdict="accepted", confidence=0.9)
        ledger.fusion("b", "p", "y", verdict="rejected", confidence=0.1)
        assert ledger.fused_keys("accepted") == [("a", "p", "x")]
        assert ledger.fused_keys("rejected") == [("b", "p", "y")]

    def test_sample_chains_prefers_fused(self):
        ledger = LineageLedger()
        for index in range(5):
            ledger.observation(f"e{index}", "p", "v", source="s")
        ledger.fusion("winner", "p", "v", verdict="accepted", confidence=0.9)
        samples = ledger.sample_chains(3)
        assert samples[0].subject == "winner"
        assert len(samples) == 3

    def test_events_sorted_by_global_sequence(self):
        ledger = LineageLedger()
        ledger.observation("dup", "p", "v", source="s1")
        ledger.merge("keep", "dup")
        ledger.observation("keep", "p", "v", source="s2")
        sequences = [e.sequence for e in ledger.explain("keep", "p", "v").events]
        assert sequences == sorted(sequences)

    def test_reset_forgets_everything(self):
        ledger = LineageLedger()
        ledger.observation("a", "p", "x", source="s")
        ledger.merge("a", "b")
        ledger.reset()
        assert len(ledger) == 0
        assert ledger.explain("a", "p", "x").events == []

    def test_chain_serializes_and_describes(self):
        import json

        ledger = LineageLedger()
        ledger.observation("m1", "year", "1995", source="imdb", extractor="ceres")
        ledger.fusion("m1", "year", "1995", verdict="accepted", confidence=0.9)
        record = ledger.explain("m1", "year", "1995").to_dict()
        json.dumps(record)
        assert record["verdict"] == "accepted"
        assert [event["kind"] for event in record["events"]] == ["observation", "fusion"]
        lines = ledger.explain("m1", "year", "1995").describe()
        assert lines[0] == "(m1, year, 1995)"
        assert "source=imdb" in lines[1]


class TestGlobalHelpers:
    def test_helpers_no_op_while_disabled(self):
        get_ledger().reset()
        record_observation("x", "p", "o", source="s")
        record_merge("x", "y")
        record_fusion("x", "p", "o", verdict="accepted", confidence=1.0)
        record_rejection("x", "p", "o", reason="r")
        assert len(get_ledger()) == 0

    def test_helpers_record_while_enabled(self):
        with enabled_scope():
            record_observation("x", "p", "o", source="s")
            assert len(get_ledger()) == 1
        # enabled_scope resets global state on exit
        assert len(get_ledger()) == 0


class TestPipelineRoundTrip:
    def test_explain_round_trips_through_full_pipeline_run(self):
        """Observation -> merge -> fusion chain out of a real pipeline run."""
        with enabled_scope():
            ontology = Ontology()
            ontology.add_class("Movie")
            graph = KnowledgeGraph(ontology=ontology, name="roundtrip")

            def build(context):
                graph.add_entity("m1", "Heat", "Movie")
                graph.add_entity("m1_dup", "Heat (1995)", "Movie")
                graph.add_triple(
                    Triple("m1", "release_year", "1995"),
                    Provenance(source="imdb", extractor="wrapper", confidence=0.95),
                )
                graph.add_triple(
                    Triple("m1_dup", "release_year", "1995"),
                    Provenance(source="freebase"),
                )
                context.artifacts["kg"] = graph

            def link(context):
                graph.merge_entities("m1", "m1_dup")

            def fuse(context):
                claims = [
                    ValueClaim("m1", "release_year", "1995", "imdb"),
                    ValueClaim("m1", "release_year", "1995", "freebase"),
                    ValueClaim("m1", "release_year", "1996", "junk"),
                ]
                AccuFusion(n_iterations=4).fuse(claims)

            pipeline = (
                ConstructionPipeline("roundtrip")
                .add_function("build", build)
                .add_function("link", link)
                .add_function("fuse", fuse)
            )
            context = pipeline.run()

            chain = explain("m1", "release_year", "1995")
            kinds = [event.kind for event in chain.events]
            # Both source observations (one recorded under the pre-merge
            # subject), the linkage merge, and the fusion verdict.
            assert kinds.count("observation") == 2
            assert "merge" in kinds
            assert kinds[-1] == "fusion"
            assert chain.verdict == "accepted"
            sources = {
                event.detail["source"]
                for event in chain.events
                if event.kind == "observation"
            }
            assert sources == {"imdb", "freebase"}
            assert any(
                event.detail.get("extractor") == "wrapper"
                for event in chain.events
                if event.kind == "observation"
            )
            trust = chain.events[-1].detail["source_trust"]
            assert set(trust) == {"imdb", "freebase", "junk"}
            # The outvoted value carries a rejected fusion verdict.
            assert explain("m1", "release_year", "1996").verdict == "rejected"
            # The pipeline took its run-end quality snapshot of the graph.
            snapshot = context.artifacts["quality_snapshot"]
            assert snapshot.name == "roundtrip"
            assert snapshot.n_triples >= 1

    def test_disabled_pipeline_records_nothing(self):
        get_ledger().reset()
        ontology = Ontology()
        ontology.add_class("Movie")
        graph = KnowledgeGraph(ontology=ontology, name="dark")
        graph.add_entity("m1", "Heat", "Movie")
        graph.add_triple(
            Triple("m1", "release_year", "1995"), Provenance(source="imdb")
        )
        assert len(get_ledger()) == 0
        assert explain("m1", "release_year", "1995").events == []
