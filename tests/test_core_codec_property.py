"""Property-based tests for the binary snapshot codec and the WAL.

Random graphs — arbitrary term types, unicode strings, float/int/bool
objects, random provenance — must round-trip byte-exactly through the
snapshot format and replay exactly through the WAL, on both backends.
Random corruption (truncation at any byte, any single flipped byte) must
never produce a wrong graph: it either raises :class:`CodecError` or, for
byte flips that only touch a not-yet-read section, is caught by that
section's checksum when it is read.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import codec
from repro.core.codec import CodecError, TripleWAL
from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.triple import Provenance, Triple

_ENTITY_IDS = ["e0", "e1", "e2", "e3"]

_entity_ids = st.sampled_from(_ENTITY_IDS)
_predicates = st.sampled_from(["p", "q", "rel-r", "label"])
_objects = st.one_of(
    _entity_ids,
    st.text(min_size=1, max_size=12),  # full unicode (empty strings are not valid objects)
    st.integers(-(10**25), 10**25),  # exercises the bigint term tag
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
)
_provenances = st.one_of(
    st.none(),
    st.builds(
        Provenance,
        source=st.sampled_from(["web", "kb", "extract"]),
        extractor=st.one_of(st.none(), st.sampled_from(["ex1", "ex2"])),
        confidence=st.floats(min_value=0.0, max_value=1.0, width=32).map(float),
    ),
)
_items = st.lists(
    st.tuples(_entity_ids, _predicates, _objects, _provenances), max_size=40
)


def _build(items, backend):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="prop", backend=backend)
    for entity_id in _ENTITY_IDS:
        graph.add_entity(entity_id, entity_id.upper(), "Thing")
    graph.add_triples_batch(
        (Triple(s, p, o), prov) for s, p, o, prov in items
    )
    return graph


def _state(graph):
    graph._materialize_provenance()
    return (
        sorted(graph.query()),
        {
            triple: list(records)
            for triple, records in graph._provenance.items()
            if records
        },
        sorted(e.entity_id for e in graph.entities()),
    )


@given(items=_items, backend=st.sampled_from(["dict", "columnar"]))
@settings(max_examples=50, deadline=None)
def test_snapshot_roundtrip(tmp_path_factory, items, backend):
    graph = _build(items, backend)
    path = str(tmp_path_factory.mktemp("codec") / "graph.rkgs")
    codec.save_graph(graph, path, include_lineage=False)
    for load_backend in ("dict", "columnar"):
        loaded = codec.load_graph(path, backend=load_backend)
        assert _state(loaded) == _state(graph)


@given(items=_items)
@settings(max_examples=30, deadline=None)
def test_wal_replay_roundtrip(tmp_path_factory, items):
    wal_dir = str(tmp_path_factory.mktemp("wal"))
    wal = TripleWAL(wal_dir, segment_bytes=4096)
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="prop", backend="columnar")
    for entity_id in _ENTITY_IDS:
        graph.add_entity(entity_id, entity_id.upper(), "Thing")
        wal.append(
            {
                "op": "entity",
                "id": entity_id,
                "name": entity_id.upper(),
                "class": "Thing",
                "aliases": [],
            }
        )
    graph.attach_wal(wal)
    graph.add_triples_batch((Triple(s, p, o), prov) for s, p, o, prov in items)
    # A few per-call mutations so add/remove records interleave the batch.
    if items:
        s, p, o, _prov = items[0]
        graph.remove_triple(Triple(s, p, o))
        graph.add_triple(Triple(s, "readd", o))
    wal.close()
    recovered = TripleWAL(wal_dir).recover()
    assert _state(recovered) == _state(graph)


@given(
    items=_items,
    cut=st.floats(min_value=0.0, max_value=0.999),
)
@settings(max_examples=30, deadline=None)
def test_truncated_snapshot_never_loads_wrong(tmp_path_factory, items, cut):
    graph = _build(items, "columnar")
    path = str(tmp_path_factory.mktemp("codec") / "graph.rkgs")
    codec.save_graph(graph, path, include_lineage=False)
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[: int(size * cut)])
    with pytest.raises(CodecError):
        codec.load_graph(path)


@given(
    items=_items,
    position=st.floats(min_value=0.0, max_value=0.999),
    flip=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=50, deadline=None)
def test_flipped_byte_never_loads_wrong(tmp_path_factory, items, position, flip):
    graph = _build(items, "columnar")
    path = str(tmp_path_factory.mktemp("codec") / "graph.rkgs")
    codec.save_graph(graph, path, include_lineage=False)
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    index = int(len(blob) * position)
    blob[index] ^= flip
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    try:
        loaded = codec.load_graph(path)
    except CodecError:
        return  # rejected at load: the expected outcome
    # A flip inside the (lazily thawed) provenance payload surfaces when
    # provenance is first read; everything else was checksum-verified, so
    # the loaded triples must already be correct.
    try:
        assert _state(loaded)[0] == _state(graph)[0]
    except CodecError:
        return


@given(items=_items, cut_bytes=st.integers(min_value=1, max_value=64))
@settings(max_examples=25, deadline=None)
def test_truncated_wal_tail_keeps_prefix(tmp_path_factory, items, cut_bytes):
    wal_dir = str(tmp_path_factory.mktemp("wal"))
    wal = TripleWAL(wal_dir)
    wal.append(
        {"op": "entity", "id": "e0", "name": "E0", "class": "Thing", "aliases": []}
    )
    for s, p, o, _prov in items:
        wal.append({"op": "add", "s": "e0", "p": p, "o": o})
    wal.close()
    last = wal.segment_paths()[-1]
    size = os.path.getsize(last)
    with open(last, "rb") as handle:
        blob = handle.read()
    with open(last, "wb") as handle:
        handle.write(blob[: max(8, size - cut_bytes)])
    # Truncation of the final segment is the crash-mid-append case: the
    # surviving prefix replays — never an error, never garbage rows.  The
    # cut may even swallow the entity record, leaving an empty graph.
    recovered = TripleWAL(wal_dir).recover()
    assert len(recovered) <= len(items)
    for triple in recovered.query():
        assert triple.subject == "e0"
        assert recovered.has_entity("e0")
