"""Unit tests for the partition-parallel build: routing, the per-partition
pipeline, the exchange phase, and the sharded-EM fusion invariants."""

import pytest

from repro.core.partition import (
    CanonicalRecord,
    PartitionedBuild,
    clean_reason,
    fixture_sources,
    home_partition,
    ordered_pair,
    pair_score,
    partitioned_pipeline,
    run_partition,
    transform_record,
)
from repro.datagen.sources import SourceRecord
from repro.integrate.blocking import BlockingStrategy
from repro.integrate.exchange import fuse_sharded
from repro.integrate.fusion import AccuFusion, ValueClaim
from repro.obs import enabled_scope


def _record(record_id="r1", source="s", entity_class="Person", **fields):
    return CanonicalRecord(
        record_id=record_id, source=source, entity_class=entity_class, fields=fields
    )


class TestTransform:
    def test_field_map_reversed(self):
        record = SourceRecord(
            record_id="a",
            source="imdb",
            entity_class="Movie",
            fields={"primaryTitle": "Heat", "startYear": 1995},
            world_id="w1",
        )
        canonical = transform_record(
            record, {"name": "primaryTitle", "release_year": "startYear"}
        )
        assert canonical.fields == {"name": "Heat", "release_year": 1995}

    def test_split_names_rejoined(self):
        record = SourceRecord(
            record_id="a",
            source="fb",
            entity_class="Person",
            fields={"first_name": "Ada", "last_name": "Lovelace"},
            world_id="w1",
        )
        assert transform_record(record, {}).name == "Ada Lovelace"

    def test_single_token_name_not_duplicated(self):
        record = SourceRecord(
            record_id="a",
            source="fb",
            entity_class="Person",
            fields={"first_name": "Cher", "last_name": "Cher"},
            world_id="w1",
        )
        assert transform_record(record, {}).name == "Cher"


class TestCleanReason:
    @pytest.mark.parametrize(
        "attribute,value,expected",
        [
            ("name", "", "empty value"),
            ("runtime", None, "empty value"),
            ("birth_year", "soon", "non-numeric year"),
            ("release_year", 1200, "implausible year"),
            ("release_year", 1995, None),
            ("runtime", "long", "non-numeric runtime"),
            ("runtime", 0, "implausible runtime"),
            ("runtime", 136, None),
            ("genre", "Drama", None),
        ],
    )
    def test_reasons(self, attribute, value, expected):
        assert clean_reason(attribute, value) == expected


class TestPairScore:
    def test_cross_class_is_zero(self):
        left = _record("a", entity_class="Person", name="Heat")
        right = _record("b", entity_class="Movie", name="Heat")
        assert pair_score(left, right) == 0.0

    def test_identical_records_score_high(self):
        left = _record("a", name="Michael Mann", birth_year=1943)
        right = _record("b", name="Michael Mann", birth_year=1943)
        assert pair_score(left, right) == pytest.approx(1.0)

    def test_symmetric(self):
        left = _record("a", name="Robert De Niro", birth_year=1943)
        right = _record("b", name="R. De Niro", birth_year=1944)
        assert pair_score(left, right) == pair_score(right, left)

    def test_ordered_pair(self):
        assert ordered_pair("b", "a") == ("a", "b")
        assert ordered_pair("a", "b") == ("a", "b")


class TestRouting:
    def test_partition_stable_and_in_range(self):
        strategy = BlockingStrategy()
        record = _record("a", name="Al Pacino", birth_year=1940)
        for n in (1, 2, 4, 8):
            home = home_partition(record, strategy, n)
            assert 0 <= home < n
            assert home == home_partition(record, strategy, n)

    def test_single_partition_takes_everything(self):
        strategy = BlockingStrategy()
        assert home_partition(_record("a", name="X"), strategy, 1) == 0

    def test_keyless_record_falls_back_to_id(self):
        strategy = BlockingStrategy()
        record = _record("only-id")  # no name, no keys
        assert 0 <= home_partition(record, strategy, 4) < 4


class TestRunPartition:
    def _task(self):
        source = fixture_sources(n_people=12, n_movies=8, seed=3)[0]
        build = PartitionedBuild()
        return build, source

    def test_worker_is_pure_and_deterministic(self):
        from repro.core.partition import PartitionTask

        build, source = self._task()
        task = PartitionTask(
            index=0,
            n_partitions=1,
            records=sorted(source.records, key=lambda r: r.record_id),
            field_maps={source.name: dict(source.field_map)},
            strategy=build.strategy,
        )
        first, second = run_partition(task), run_partition(task)
        assert first.scores == second.scores
        assert first.claims == second.claims
        assert first.fragment_terms == second.fragment_terms

    def test_worker_records_no_lineage(self):
        from repro.core.partition import PartitionTask
        from repro.obs.lineage import get_ledger

        build, source = self._task()
        task = PartitionTask(
            index=0,
            n_partitions=1,
            records=sorted(source.records, key=lambda r: r.record_id),
            field_maps={source.name: dict(source.field_map)},
            strategy=build.strategy,
        )
        with enabled_scope():
            run_partition(task)
            assert get_ledger().export_state()["events"] == []


class TestStageValidation:
    def test_partitions_must_be_positive_int(self):
        build = PartitionedBuild()
        for bad in (0, -1, 1.5, "2"):
            with pytest.raises(ValueError, match="positive integer"):
                build.stages(bad)

    def test_pipeline_without_build_rejects_partitions(self):
        from repro.core.pipeline import ConstructionPipeline

        pipeline = ConstructionPipeline(name="plain")
        with pytest.raises(ValueError, match="no partition_build attached"):
            pipeline.run(partitions=2)


class TestFuseSharded:
    def _claims(self):
        claims = []
        for i in range(40):
            subject = f"e{i}"
            truth = f"v{i}"
            claims.append(
                ValueClaim(subject=subject, attribute="a", value=truth, source="good")
            )
            # A corroborating source breaks the 1-vs-1 symmetry so EM can
            # actually learn that "noisy" deserves less trust.
            claims.append(
                ValueClaim(subject=subject, attribute="a", value=truth, source="ok")
            )
            claims.append(
                ValueClaim(
                    subject=subject,
                    attribute="a",
                    value=truth if i % 4 else "wrong",
                    source="noisy",
                )
            )
        return claims

    def test_shard_count_invariant(self):
        claims = self._claims()
        reference = fuse_sharded(claims, 1)
        for n_shards in (2, 3, 8):
            assert fuse_sharded(claims, n_shards) == reference

    def test_claim_order_invariant(self):
        claims = self._claims()
        assert fuse_sharded(list(reversed(claims)), 4) == fuse_sharded(claims, 4)

    def test_matches_accu_fusion(self):
        """Sharded EM must reproduce the reference AccuFusion verdicts."""
        claims = self._claims()
        results, accuracy = fuse_sharded(claims, 4)
        fusion = AccuFusion()
        reference = fusion.fuse(claims)
        assert [(r.subject, r.attribute, r.value) for r in results] == sorted(
            (r.subject, r.attribute, r.value) for r in reference
        )
        assert accuracy == pytest.approx(fusion.source_accuracy_)
        assert accuracy["good"] > accuracy["noisy"]


class TestExchangeOutcome:
    def test_run_config_surfaces_in_reports_and_stats(self):
        sources = fixture_sources(n_people=20, n_movies=15, seed=5)
        pipeline, context = partitioned_pipeline(sources, name="unit")
        context = pipeline.run(context, partitions=3)
        outcome = context.artifacts["exchange"]
        assert outcome.stats["n_partitions"] == 3
        assert outcome.stats["n_triples"] == len(context.artifacts["kg"])
        assert outcome.stats["n_entities"] == len(
            list(context.artifacts["kg"].entities())
        )
        stage_names = [report.stage_name for report in pipeline.reports]
        assert stage_names == ["partition", "build_partitions", "exchange"]

    def test_every_triple_has_provenance(self):
        sources = fixture_sources(n_people=15, n_movies=10, seed=5)
        pipeline, context = partitioned_pipeline(sources, name="unit")
        context = pipeline.run(context, partitions=2)
        graph = context.artifacts["kg"]
        graph._materialize_provenance()
        for triple in graph.query():
            records = graph.provenance(triple)
            assert records
            assert all(p.extractor == "partition" for p in records)

    def test_source_accuracy_orders_by_injected_noise(self):
        """The noisier wiki source must earn lower learned trust."""
        sources = fixture_sources(n_people=40, n_movies=30, seed=11)
        pipeline, context = partitioned_pipeline(sources, name="unit")
        context = pipeline.run(context, partitions=4)
        accuracy = context.artifacts["exchange"].source_accuracy
        assert accuracy["wiki"] < accuracy["freebase"]
