"""Property: the partitioned build is invariant in shard count AND input order.

For any partition count and any permutation of the input — source order
and record order within each source — the built graph, the lineage
ledger, and the quality snapshot must be identical to the single-shard
build over the canonically ordered input.  This is the strong form of the
tentpole contract: not just ``N == 1`` on one fixture, but "nothing about
how the work was split or fed in can change a single observable bit".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import fixture_sources, partitioned_pipeline
from repro.datagen.sources import StructuredSource
from repro.obs import enabled_scope, reset_all
from repro.obs.lineage import get_ledger

_SOURCES = fixture_sources(n_people=12, n_movies=8, seed=3)
_N_RECORDS = sum(len(source) for source in _SOURCES)


def _permuted(order_seed: int):
    """The fixture sources with record and source order shuffled."""
    import random

    rng = random.Random(order_seed)
    permuted = []
    for source in _SOURCES:
        records = list(source.records)
        rng.shuffle(records)
        permuted.append(
            StructuredSource(
                name=source.name,
                field_map=dict(source.field_map),
                records=records,
            )
        )
    rng.shuffle(permuted)
    return permuted


def _build(sources, partitions):
    reset_all()
    with enabled_scope():
        pipeline, context = partitioned_pipeline(sources, name="prop")
        context = pipeline.run(context, partitions=partitions)
        ledger_state = get_ledger().export_state()
        snapshot = context.artifacts["quality_snapshot"].to_dict()
    reset_all()
    for volatile in ("captured_unix", "capture_seconds"):
        snapshot.pop(volatile, None)
    graph = context.artifacts["kg"]
    graph._materialize_provenance()
    triples = sorted(graph.query(), key=lambda t: t._sort_key())
    state = {
        "triples": triples,
        "provenance": {t: graph.provenance(t) for t in triples},
        "entities": sorted(
            (e.entity_id, e.name, e.entity_class, tuple(sorted(e.aliases)))
            for e in graph.entities()
        ),
    }
    return state, ledger_state, snapshot


_REFERENCE = _build(_SOURCES, 1)


@settings(max_examples=12, deadline=None)
@given(
    partitions=st.integers(min_value=1, max_value=8),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_partition_count_any_order_is_identical(partitions, order_seed):
    assert _N_RECORDS > 0
    result = _build(_permuted(order_seed), partitions)
    assert result[0] == _REFERENCE[0]  # graph state + provenance
    assert result[1] == _REFERENCE[1]  # lineage ledger
    assert result[2] == _REFERENCE[2]  # quality snapshot
