"""Tests for the mini-DOM and XPath-like addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extract.dom import (
    DomNode,
    element,
    layout_edges,
    node_features,
    parse_html,
    render_html,
    resolve_path,
    text_node,
)


def _page():
    root = element("html")
    body = root.append(element("body"))
    table = body.append(element("table", {"class": "infobox"}))
    row1 = table.append(element("tr"))
    row1.append(element("th")).append(text_node("Director"))
    row1.append(element("td")).append(text_node("Jane Doe"))
    row2 = table.append(element("tr"))
    row2.append(element("th")).append(text_node("Year"))
    row2.append(element("td")).append(text_node("1999"))
    return root


class TestDomNode:
    def test_text_content_normalizes(self):
        assert _page().text_content() == "Director Jane Doe Year 1999"

    def test_is_text(self):
        assert text_node("x").is_text
        assert not element("div").is_text

    def test_invalid_node_rejected(self):
        with pytest.raises(ValueError):
            DomNode()

    def test_text_node_cannot_have_children(self):
        with pytest.raises(ValueError):
            text_node("x").append(element("div"))

    def test_find_by_tag(self):
        assert len(_page().find_by_tag("tr")) == 2

    def test_find_by_class(self):
        assert len(_page().find_by_class("infobox")) == 1

    def test_depth_and_root(self):
        page = _page()
        cell = page.find_by_tag("td")[0]
        assert cell.depth() == 4  # html > body > table > tr > td
        assert cell.root() is page

    def test_sibling_index_same_tag_only(self):
        page = _page()
        rows = page.find_by_tag("tr")
        assert rows[0].sibling_index() == 1
        assert rows[1].sibling_index() == 2


class TestPaths:
    def test_absolute_path_format(self):
        page = _page()
        second_td = page.find_by_tag("td")[1]
        assert (
            second_td.absolute_path()
            == "/html[1]/body[1]/table[1]/tr[2]/td[1]"
        )

    def test_resolve_roundtrip_elements(self):
        page = _page()
        for node in page.elements():
            assert resolve_path(page, node.absolute_path()) is node

    def test_resolve_roundtrip_text(self):
        page = _page()
        for node in page.text_nodes():
            assert resolve_path(page, node.absolute_path()) is node

    def test_resolve_on_other_page_finds_analogous_node(self):
        first, second = _page(), _page()
        path = first.find_by_tag("td")[0].absolute_path()
        resolved = resolve_path(second, path)
        assert resolved is not None
        assert resolved.text_content() == "Jane Doe"

    def test_resolve_missing_returns_none(self):
        assert resolve_path(_page(), "/html[1]/body[1]/div[1]") is None

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            resolve_path(_page(), "body[1]")


class TestParser:
    def test_parse_render_roundtrip_structure(self):
        html = render_html(_page())
        reparsed = parse_html(html)
        assert [n.tag for n in reparsed.elements()] == [n.tag for n in _page().elements()]
        assert [n.text for n in reparsed.text_nodes()] == [
            n.text for n in _page().text_nodes()
        ]

    def test_parse_attributes(self):
        root = parse_html('<div class="main" id="x"><span>hi</span></div>')
        assert root.attributes == {"class": "main", "id": "x"}

    def test_parse_tolerates_misnesting(self):
        root = parse_html("<div><b>bold</div>")
        assert root.text_content() == "bold"

    def test_parse_void_tags(self):
        root = parse_html("<div>a<br>b</div>")
        assert root.text_content() == "a b"

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError):
            parse_html("   ")


class TestFeaturesAndEdges:
    def test_feature_vector_fixed_length(self):
        page = _page()
        lengths = {len(node_features(node)) for node in page.iter()}
        assert len(lengths) == 1

    def test_key_cue_feature(self):
        key_node = text_node("Director:")
        plain = text_node("Jane Doe")
        parent = element("div")
        parent.append(key_node)
        parent.append(plain)
        assert node_features(key_node) != node_features(plain)

    def test_layout_edges_cover_tree(self):
        page = _page()
        nodes = list(page.iter())
        edges = layout_edges(page)
        # Parent-child edges: one per non-root node.
        assert len(edges) >= len(nodes) - 1
        assert all(0 <= a < len(nodes) and 0 <= b < len(nodes) for a, b in edges)


@given(st.integers(1, 5), st.integers(1, 4))
@settings(max_examples=25)
def test_path_roundtrip_property(n_rows, n_cells):
    """Every node in a generated grid resolves back through its path."""
    root = element("html")
    body = root.append(element("body"))
    for _ in range(n_rows):
        row = body.append(element("div"))
        for cell_index in range(n_cells):
            cell = row.append(element("span"))
            cell.append(text_node(f"cell{cell_index}"))
    for node in root.iter():
        assert resolve_path(root, node.absolute_path()) is node
