"""Property-based serialization tests: random graphs round-trip exactly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import KnowledgeGraph
from repro.core.io import load_graph, save_graph
from repro.core.ontology import Ontology

_entity_ids = st.sampled_from(["e0", "e1", "e2", "e3"])
_predicates = st.sampled_from(["p", "q", "r"])
_objects = st.one_of(
    _entity_ids,
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x17F),
        min_size=1,
        max_size=8,
    ),
    st.integers(-1000, 3000),
)


@given(
    st.lists(st.tuples(_entity_ids, _predicates, _objects), max_size=30),
    st.lists(st.sampled_from(["Alias One", "alias-two", "ALIAS"]), max_size=2),
)
@settings(max_examples=40, deadline=None)
def test_random_graph_roundtrip(tmp_path_factory, triples, aliases):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="prop")
    for entity_id in ("e0", "e1", "e2", "e3"):
        graph.add_entity(entity_id, entity_id.upper(), "Thing", aliases=aliases)
    for subject, predicate, obj in triples:
        graph.add(subject, predicate, obj)
    path = str(tmp_path_factory.mktemp("io") / "graph.jsonl")
    save_graph(graph, path)
    loaded = load_graph(path)
    assert list(loaded.triples()) == list(graph.triples())
    assert loaded.stats() == graph.stats()
    for entity_id in ("e0", "e1", "e2", "e3"):
        assert loaded.entity(entity_id).aliases == graph.entity(entity_id).aliases


def test_results_dir_persistence(tmp_path, monkeypatch):
    """ResultTable.show() writes a file when REPRO_RESULTS_DIR is set."""
    from repro.evalx.tables import ResultTable

    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    table = ResultTable(title="A Tiny Table!", columns=["x"])
    table.add_row(1)
    table.show()
    files = list(tmp_path.iterdir())
    assert len(files) == 1
    assert "a_tiny_table" in files[0].name
    assert "A Tiny Table" in files[0].read_text()


def test_no_results_dir_no_file(tmp_path, monkeypatch, capsys):
    from repro.evalx.tables import ResultTable

    monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
    table = ResultTable(title="T", columns=["x"])
    table.add_row(1)
    table.show()
    assert "== T ==" in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []
