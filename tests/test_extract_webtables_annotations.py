"""Tests for web-table and schema.org-annotation extraction."""

import pytest

from repro.datagen.webextras import generate_annotated_pages, generate_web_tables
from repro.extract.annotations import AnnotationExtractor
from repro.extract.distant import SeedKnowledge
from repro.extract.webtables import WebTableExtractor


@pytest.fixture(scope="module")
def seed(small_world):
    return SeedKnowledge.from_graph(
        small_world.truth,
        attributes=("directed_by", "release_year", "genre", "birth_year", "birth_place"),
    )


class TestWebTableExtractor:
    def test_aligns_columns_by_overlap(self, small_world, seed):
        tables = generate_web_tables(small_world, n_tables=2, cell_noise_rate=0.0, seed=2)
        extractor = WebTableExtractor()
        alignments = extractor.align_columns(tables[0], seed)
        mapped = {alignment.column_index: alignment.attribute for alignment in alignments}
        # The generator's canonical columns (minus the subject column 0)
        # should be recovered.
        for column, canonical in enumerate(tables[0].canonical_columns):
            if column == 0:
                continue
            assert mapped.get(column) == canonical

    def test_extracts_triples_for_all_rows(self, small_world, seed):
        tables = generate_web_tables(small_world, n_tables=2, cell_noise_rate=0.0, seed=2)
        extractor = WebTableExtractor()
        triples = extractor.extract(tables[0], seed)
        subjects = {attributed.triple.subject for attributed in triples}
        assert len(subjects) == len(tables[0].rows)

    def test_noise_lowers_alignment_confidence(self, small_world, seed):
        clean = generate_web_tables(small_world, n_tables=1, cell_noise_rate=0.0, seed=3)[0]
        noisy = generate_web_tables(small_world, n_tables=1, cell_noise_rate=0.4, seed=3)[0]
        extractor = WebTableExtractor(min_overlap=0.1)
        clean_overlap = {
            a.attribute: a.overlap for a in extractor.align_columns(clean, seed)
        }
        noisy_overlap = {
            a.attribute: a.overlap for a in extractor.align_columns(noisy, seed)
        }
        shared = set(clean_overlap) & set(noisy_overlap)
        assert shared
        assert all(noisy_overlap[a] <= clean_overlap[a] + 1e-9 for a in shared)

    def test_min_overlap_gate(self, small_world, seed):
        tables = generate_web_tables(small_world, n_tables=1, cell_noise_rate=0.0, seed=4)
        extractor = WebTableExtractor(min_overlap=1.01)
        assert extractor.align_columns(tables[0], seed) == []

    def test_provenance_names_table(self, small_world, seed):
        tables = generate_web_tables(small_world, n_tables=1, cell_noise_rate=0.0, seed=5)
        triples = WebTableExtractor().extract(tables[0], seed)
        assert all(
            attributed.provenance.source.endswith(tables[0].table_id)
            for attributed in triples
        )


class TestAnnotationExtractor:
    def test_extracts_clean_annotations(self, small_world):
        pages = generate_annotated_pages(small_world, n_pages=10, wrong_prop_rate=0.0, seed=6)
        extractor = AnnotationExtractor()
        for page in pages:
            triples = extractor.extract(page.root)
            extracted = {
                (attributed.triple.predicate, str(attributed.triple.object))
                for attributed in triples
            }
            for attribute, value in page.truth.items():
                assert (attribute, value) in extracted

    def test_wrong_props_produce_wrong_triples(self, small_world):
        pages = generate_annotated_pages(small_world, n_pages=40, wrong_prop_rate=0.6, seed=7)
        extractor = AnnotationExtractor()
        wrong = 0
        for page in pages:
            truth_pairs = {
                (attribute, value) for attribute, value in page.truth.items()
            }
            for attributed in extractor.extract(page.root):
                pair = (attributed.triple.predicate, str(attributed.triple.object))
                if pair not in truth_pairs:
                    wrong += 1
        assert wrong > 0  # mis-annotations flow through, fusion must catch them

    def test_topic_required(self):
        from repro.extract.dom import element, text_node

        page = element("html")
        body = page.append(element("body"))
        span = body.append(element("span", {"itemprop": "director"}))
        span.append(text_node("Jane Doe"))
        assert AnnotationExtractor().extract(page) == []

    def test_unmapped_props_ignored(self, small_world):
        pages = generate_annotated_pages(small_world, n_pages=5, wrong_prop_rate=0.0, seed=8)
        extractor = AnnotationExtractor(prop_map={})
        assert all(extractor.extract(page.root) == [] for page in pages)
