"""Tests for natural-language QA."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.neural.nlq import NaturalLanguageQA, parse_question
from repro.neural.qa import KGQA


@pytest.fixture
def graph():
    ontology = Ontology()
    ontology.add_class("Person")
    ontology.add_class("Movie")
    ontology.add_relation("directed_by", "Movie", "Person")
    ontology.add_relation("release_year", "Movie", "number")
    ontology.add_relation("birth_place", "Person", "string")
    ontology.add_relation("birth_year", "Person", "number")
    graph = KnowledgeGraph(ontology=ontology)
    graph.add_entity("m1", "Silent River", "Movie")
    graph.add_entity("p1", "Jane Doe", "Person")
    graph.add_entity("p2", "Jane Doe", "Person")
    graph.add("m1", "directed_by", "p1")
    graph.add("m1", "release_year", 1999)
    graph.add("p1", "birth_place", "Seattle")
    graph.add("p1", "birth_year", 1975)
    graph.add("p2", "birth_place", "Boston")
    graph.add("p2", "birth_year", 1990)
    return graph


class TestParseQuestion:
    def test_who_directed(self):
        parsed = parse_question("Who directed Silent River?")
        assert parsed.subject_mention == "silent river"
        assert parsed.predicate == "directed_by"

    def test_release_year_variants(self):
        for text in ("When was Silent River released?", "What year was Silent River released"):
            assert parse_question(text).predicate == "release_year"

    def test_birth_questions(self):
        assert parse_question("Where was Jane Doe born?").predicate == "birth_place"
        assert parse_question("When was Jane Doe born?").predicate == "birth_year"

    def test_qualifier_extracted(self):
        parsed = parse_question("Where was Jane Doe (the one born in 1975) born?")
        assert parsed.subject_mention == "jane doe"
        assert parsed.context == {"birth_year": 1975}

    def test_from_qualifier(self):
        parsed = parse_question("When was Jane Doe (the one from Boston) born?")
        assert parsed.context == {"birth_place": "boston"}  # normalized lowercase

    def test_unparseable_returns_none(self):
        assert parse_question("Tell me a joke") is None


class TestNaturalLanguageQA:
    def test_answers_over_kg(self, graph):
        qa = NaturalLanguageQA(backend=KGQA(graph), graph=graph)
        assert qa.answer("Who directed Silent River?") == "Jane Doe"
        assert qa.answer("When was Silent River released?") == "1999"

    def test_homonym_with_qualifier(self, graph):
        qa = NaturalLanguageQA(backend=KGQA(graph), graph=graph)
        assert qa.answer("Where was Jane Doe (the one born in 1975) born?") == "Seattle"
        assert qa.answer("Where was Jane Doe (the one from Boston) born?") == "Boston"

    def test_not_understood(self, graph):
        qa = NaturalLanguageQA(backend=KGQA(graph), graph=graph)
        assert qa.answer("What is the meaning of life?") is None

    def test_unknown_entity_abstains(self, graph):
        qa = NaturalLanguageQA(backend=KGQA(graph), graph=graph)
        assert qa.answer("Who directed Unheard Of Epic?") is None

    def test_batch(self, graph):
        qa = NaturalLanguageQA(backend=KGQA(graph), graph=graph)
        answers = qa.answer_all(
            ["Who directed Silent River?", "Tell me a joke"]
        )
        assert answers == ["Jane Doe", None]

    def test_world_scale(self, small_world):
        qa = NaturalLanguageQA(backend=KGQA(small_world.truth), graph=small_world.truth)
        movie = next(small_world.truth.entities("Movie"))
        director_id = small_world.truth.objects(movie.entity_id, "directed_by")[0]
        expected = small_world.truth.entity(director_id).name
        answer = qa.answer(f"Who directed {movie.name}?")
        # Homonym titles may resolve to a different movie of the same name;
        # the answer must then still be a correct director for *some*
        # entity with that name.
        candidates = small_world.truth.find_by_name(movie.name)
        valid = set()
        for candidate in candidates:
            for obj in small_world.truth.objects(candidate.entity_id, "directed_by"):
                valid.add(small_world.truth.entity(obj).name)
        assert answer is None or answer in valid or answer == expected
