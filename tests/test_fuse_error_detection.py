"""Tests for embedding-based error detection (the Sec. 5 cleaning use)."""

import pytest

from repro.fuse.error_detection import EmbeddingErrorDetector, inject_edge_errors


@pytest.fixture(scope="module")
def corrupted(small_world):
    graph = small_world.truth.copy()
    injected = inject_edge_errors(graph, "directed_by", n_errors=10, seed=3)
    return graph, injected


class TestInjectErrors:
    def test_errors_replace_originals(self, small_world, corrupted):
        graph, injected = corrupted
        assert len(injected) == 10
        for wrong in injected:
            assert wrong in graph
            truth = small_world.truth.objects(wrong.subject, "directed_by")
            assert wrong.object not in truth

    def test_original_world_untouched(self, small_world, corrupted):
        _graph, injected = corrupted
        for wrong in injected:
            assert wrong not in small_world.truth


class TestEmbeddingErrorDetector:
    @pytest.fixture(scope="class")
    def fitted(self, corrupted):
        graph, injected = corrupted
        detector = EmbeddingErrorDetector(
            "directed_by", n_epochs=50, suspicion_percentile=0.4, seed=4
        ).fit(graph)
        return detector, graph, injected

    def test_errors_score_below_clean_edges(self, fitted):
        detector, graph, injected = fitted
        error_set = set(injected)
        error_percentiles = []
        clean_percentiles = []
        for triple in graph.query(predicate="directed_by"):
            if not (isinstance(triple.object, str) and graph.has_entity(triple.object)):
                continue
            percentile = detector.edge_percentile(triple)
            if triple in error_set:
                error_percentiles.append(percentile)
            else:
                clean_percentiles.append(percentile)
        assert sum(error_percentiles) / len(error_percentiles) < sum(
            clean_percentiles
        ) / len(clean_percentiles) - 0.15

    def test_detection_beats_chance_but_not_production_bar(self, fitted):
        """Useful signal, below the 90% bar — the Sec. 5 judgement on
        link prediction verbatim."""
        detector, graph, injected = fitted
        stats = detector.evaluate(graph, injected)
        n_edges = len(graph.query(predicate="directed_by"))
        base_rate = len(injected) / n_edges
        assert stats["precision"] > base_rate * 1.5
        assert stats["recall"] >= 0.25
        assert stats["precision"] < 0.9  # not production-ready, as the paper says

    def test_suspects_sorted_worst_first(self, fitted):
        detector, graph, _injected = fitted
        suspects = detector.scan(graph)
        percentiles = [suspect.percentile for suspect in suspects]
        assert percentiles == sorted(percentiles)

    def test_unfitted_raises(self, corrupted):
        graph, _injected = corrupted
        with pytest.raises(RuntimeError):
            EmbeddingErrorDetector("directed_by").scan(graph)
