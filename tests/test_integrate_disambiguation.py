"""Tests for entity disambiguation."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.integrate.disambiguation import EntityDisambiguator


@pytest.fixture
def graph():
    ontology = Ontology()
    ontology.add_class("Person")
    ontology.add_class("Movie")
    ontology.add_relation("birth_year", "Person", "number")
    ontology.add_relation("birth_place", "Person", "string")
    ontology.add_relation("directed_by", "Movie", "Person")
    graph = KnowledgeGraph(ontology=ontology)
    # Two people named Jane Doe — the Sec. 2.2 disambiguation setting.
    graph.add_entity("p1", "Jane Doe", "Person")
    graph.add("p1", "birth_year", 1975)
    graph.add("p1", "birth_place", "Seattle")
    graph.add_entity("p2", "Jane Doe", "Person")
    graph.add("p2", "birth_year", 1990)
    graph.add("p2", "birth_place", "Boston")
    graph.add_entity("m1", "Silent River", "Movie")
    graph.add("m1", "directed_by", "p1")
    return graph


class TestCandidates:
    def test_both_homonyms_listed(self, graph):
        disambiguator = EntityDisambiguator(graph)
        candidates = disambiguator.candidates("Jane Doe")
        assert {candidate.entity_id for candidate in candidates} == {"p1", "p2"}

    def test_context_orders_candidates(self, graph):
        disambiguator = EntityDisambiguator(graph)
        ranked = disambiguator.candidates("Jane Doe", context={"birth_year": 1990})
        assert ranked[0].entity_id == "p2"
        ranked = disambiguator.candidates("Jane Doe", context={"birth_place": "Seattle"})
        assert ranked[0].entity_id == "p1"

    def test_relational_context(self, graph):
        """Mention context naming a related entity prefers its neighbor."""
        disambiguator = EntityDisambiguator(graph)
        ranked = disambiguator.candidates(
            "Jane Doe", context={"known_for": "Silent River"}
        )
        assert ranked[0].entity_id == "p1"

    def test_class_filter(self, graph):
        disambiguator = EntityDisambiguator(graph)
        assert disambiguator.candidates("Jane Doe", entity_class="Movie") == []


class TestResolve:
    def test_resolves_with_discriminating_context(self, graph):
        disambiguator = EntityDisambiguator(graph)
        assert disambiguator.resolve("Jane Doe", context={"birth_year": 1975}) == "p1"

    def test_refuses_without_context(self, graph):
        """Two equally-plausible candidates: refuse to guess."""
        disambiguator = EntityDisambiguator(graph)
        assert disambiguator.resolve("Jane Doe") is None

    def test_refuses_unknown_mention(self, graph):
        disambiguator = EntityDisambiguator(graph)
        assert disambiguator.resolve("Nobody Special") is None

    def test_unique_name_resolves_without_context(self, graph):
        graph.add_entity("p3", "Unique Name", "Person")
        disambiguator = EntityDisambiguator(graph)
        assert disambiguator.resolve("Unique Name") == "p3"

    def test_world_scale_disambiguation(self, small_world):
        """Homonyms in the generated world resolve given their attributes."""
        disambiguator = EntityDisambiguator(small_world.truth)
        by_name = {}
        for entity in small_world.truth.entities("Person"):
            by_name.setdefault(entity.name, []).append(entity)
        homonyms = {name: group for name, group in by_name.items() if len(group) > 1}
        assert homonyms  # the generator guarantees collisions
        name, group = sorted(homonyms.items())[0]
        target = group[0]
        context = {
            "birth_year": small_world.truth.one_object(target.entity_id, "birth_year"),
            "birth_place": small_world.truth.one_object(target.entity_id, "birth_place"),
        }
        resolved = disambiguator.resolve(name, context=context)
        # Either resolves to the right person or abstains when two homonyms
        # coincidentally share attributes — never the wrong one confidently.
        if resolved is not None:
            matches_context = small_world.truth.one_object(resolved, "birth_year") == context["birth_year"]
            assert matches_context
