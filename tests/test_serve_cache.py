"""Response cache: LRU bounds, version invalidation, the stale tier."""

from repro.serve.cache import ResponseCache


class TestVersionedReads:
    def test_miss_then_hit(self):
        cache = ResponseCache()
        assert cache.get("lookup", "k1", version=1) is None
        cache.put("lookup", "k1", version=1, payload={"values": [1]})
        assert cache.get("lookup", "k1", version=1) == {"values": [1]}

    def test_publish_invalidates_every_entry_at_once(self):
        """A new snapshot version makes every cached read miss implicitly."""
        cache = ResponseCache()
        for key in ("a", "b", "c"):
            cache.put("lookup", key, version=1, payload=key.upper())
        for key in ("a", "b", "c"):
            assert cache.get("lookup", key, version=1) == key.upper()
        # Version rolls (a publish happened): all three now miss.
        for key in ("a", "b", "c"):
            assert cache.get("lookup", key, version=2) is None

    def test_routes_do_not_collide(self):
        cache = ResponseCache()
        cache.put("lookup", "k", version=1, payload="from-lookup")
        assert cache.get("ask", "k", version=1) is None

    def test_put_overwrites_old_version(self):
        cache = ResponseCache()
        cache.put("lookup", "k", version=1, payload="old")
        cache.put("lookup", "k", version=2, payload="new")
        assert cache.get("lookup", "k", version=1) is None
        assert cache.get("lookup", "k", version=2) == "new"


class TestStaleTier:
    def test_stale_read_ignores_version(self):
        cache = ResponseCache()
        cache.put("lookup", "k", version=1, payload="yesterday")
        assert cache.get("lookup", "k", version=2) is None
        assert cache.get_stale("lookup", "k") == "yesterday"

    def test_stale_read_misses_when_never_cached(self):
        assert ResponseCache().get_stale("lookup", "never") is None

    def test_stale_counter(self):
        cache = ResponseCache()
        cache.put("ask", "k", version=1, payload="x")
        cache.get_stale("ask", "k")
        cache.get_stale("ask", "k")
        assert cache.stats()["stale_served"] == 2


class TestLru:
    def test_eviction_at_capacity(self):
        cache = ResponseCache(capacity=3)
        for index in range(5):
            cache.put("lookup", f"k{index}", version=1, payload=index)
        assert len(cache) == 3
        assert cache.get("lookup", "k0", version=1) is None
        assert cache.get("lookup", "k4", version=1) == 4
        assert cache.stats()["evictions"] == 2

    def test_recent_reads_are_protected(self):
        cache = ResponseCache(capacity=2)
        cache.put("lookup", "a", version=1, payload="A")
        cache.put("lookup", "b", version=1, payload="B")
        cache.get("lookup", "a", version=1)  # refresh a: b is now LRU
        cache.put("lookup", "c", version=1, payload="C")
        assert cache.get("lookup", "a", version=1) == "A"
        assert cache.get("lookup", "b", version=1) is None

    def test_capacity_validated(self):
        import pytest

        with pytest.raises(ValueError):
            ResponseCache(capacity=0)


class TestStats:
    def test_hit_ratio(self):
        cache = ResponseCache()
        cache.put("lookup", "k", version=1, payload="x")
        cache.get("lookup", "k", version=1)  # hit
        cache.get("lookup", "other", version=1)  # miss
        assert cache.hit_ratio() == 0.5
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = ResponseCache()
        cache.put("lookup", "k", version=1, payload="x")
        cache.get("lookup", "k", version=1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
