"""Tests for knowledge-panel rendering."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.panel import render_panel
from repro.core.triple import Provenance, Triple


@pytest.fixture
def graph():
    ontology = Ontology()
    ontology.add_class("Person")
    ontology.add_class("Movie")
    graph = KnowledgeGraph(ontology=ontology)
    graph.add_entity("m1", "Silent River", "Movie")
    graph.add_entity("p1", "Jane Doe", "Person")
    graph.add_triple(
        Triple("m1", "release_year", 1999), provenance=Provenance(source="wikipedia")
    )
    graph.add("m1", "directed_by", "p1")
    graph.add("m1", "genre", "drama")
    return graph


class TestRenderPanel:
    def test_title_and_type(self, graph):
        panel = render_panel(graph, "m1")
        assert panel.title == "Silent River"
        assert panel.subtitle == "Movie"

    def test_rows_resolve_entity_names(self, graph):
        panel = render_panel(graph, "m1")
        values = {row.label: row.value for row in panel.rows}
        assert values["Directed by"] == "Jane Doe"
        assert values["Release year"] == "1999"

    def test_provenance_credited(self, graph):
        panel = render_panel(graph, "m1")
        year_row = next(row for row in panel.rows if row.label == "Release year")
        assert year_row.sources == ("wikipedia",)

    def test_related_strip_uses_inverse_edges(self, graph):
        panel = render_panel(graph, "p1")
        assert ("Directed by", "Silent River") in panel.related

    def test_max_rows_cap(self, graph):
        panel = render_panel(graph, "m1", max_rows=1)
        assert len(panel.rows) == 1

    def test_render_text_block(self, graph):
        text = render_panel(graph, "m1").render()
        assert "Silent River" in text
        assert text.startswith("+")
        assert text.count("|") >= 6

    def test_unknown_entity_raises(self, graph):
        with pytest.raises(KeyError):
            render_panel(graph, "nope")

    def test_world_scale_panels(self, small_world):
        for entity in list(small_world.truth.entities("Movie"))[:5]:
            panel = render_panel(small_world.truth, entity.entity_id)
            assert panel.rows
            assert panel.render()
