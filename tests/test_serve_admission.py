"""Admission control: the token bucket, the ladder, deadlines, queue bounds."""

import time

import pytest

from repro.serve.admission import (
    LEVEL_LM_SHED,
    LEVEL_NORMAL,
    LEVEL_STALE,
    AdmissionController,
    Deadline,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1000.0, capacity=3.0)
        assert bucket.fill_fraction() == pytest.approx(1.0, abs=0.01)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()

    def test_empty_bucket_refuses_without_blocking(self):
        bucket = TokenBucket(rate=0.001, capacity=1.0)
        assert bucket.try_acquire()
        started = time.monotonic()
        assert not bucket.try_acquire()
        assert time.monotonic() - started < 0.1  # non-blocking

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=200.0, capacity=2.0)
        bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        time.sleep(0.05)  # ~10 tokens at rate 200, capped at capacity 2
        assert bucket.try_acquire()

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10, capacity=-1)


class TestDeadline:
    def test_no_timeout_never_expires(self):
        deadline = Deadline(None)
        assert not deadline.expired()
        assert deadline.remaining() is None

    def test_expires(self):
        deadline = Deadline(0.01)
        time.sleep(0.02)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_remaining_positive_before_expiry(self):
        deadline = Deadline(10.0)
        remaining = deadline.remaining()
        assert remaining is not None and 9.0 < remaining <= 10.0


class TestDegradationLadder:
    def test_full_bucket_is_normal(self):
        controller = AdmissionController(rate=10_000.0)
        decision = controller.admit("lookup")
        controller.release()
        assert decision.admitted and decision.level == LEVEL_NORMAL
        assert not decision.shed_lm and not decision.prefer_stale

    def test_draining_bucket_sheds_lm(self):
        controller = AdmissionController(
            rate=0.001, burst=100.0, lm_shed_fill=0.5, stale_fill=0.1
        )
        # Drain to between 10% and 50%.
        for _ in range(70):
            controller.bucket.try_acquire()
        decision = controller.admit("ask")
        controller.release()
        assert decision.admitted and decision.level == LEVEL_LM_SHED
        assert decision.shed_lm and not decision.prefer_stale

    def test_empty_bucket_admits_at_stale_level(self):
        """Empty bucket degrades to stale serving — it never refuses."""
        controller = AdmissionController(rate=0.001, burst=1.0)
        controller.bucket.try_acquire()
        decision = controller.admit("lookup")
        controller.release()
        assert decision.admitted and decision.level == LEVEL_STALE
        assert decision.shed_lm and decision.prefer_stale
        assert decision.reason == "no_tokens"

    def test_queue_full_rejects(self):
        controller = AdmissionController(rate=10_000.0, max_concurrent=2)
        first = controller.admit("lookup")
        second = controller.admit("lookup")
        third = controller.admit("lookup")
        assert first.admitted and second.admitted
        assert not third.admitted and third.reason == "queue_full"
        controller.release()
        controller.release()
        # Slots freed: admission works again.
        fourth = controller.admit("lookup")
        assert fourth.admitted
        controller.release()

    def test_stats_count_decisions(self):
        controller = AdmissionController(rate=0.001, burst=1.0, max_concurrent=1)
        controller.bucket.try_acquire()
        controller.admit("lookup")  # admitted, stale level
        rejected = controller.admit("lookup")  # queue full
        assert not rejected.admitted
        stats = controller.stats()
        assert stats["rejected"] == 1
        assert stats["degraded_stale"] == 1
        assert stats["in_flight"] == 1
        controller.release()
        assert controller.stats()["in_flight"] == 0

    def test_default_deadline_applies(self):
        controller = AdmissionController(default_timeout_s=5.0)
        deadline = controller.deadline()
        assert deadline.remaining() is not None
        explicit = controller.deadline(timeout_s=0.0)
        assert explicit.remaining() is None  # non-positive -> no deadline

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(lm_shed_fill=0.2, stale_fill=0.5)
        with pytest.raises(ValueError):
            AdmissionController(max_concurrent=0)

    def test_level_names(self):
        controller = AdmissionController(rate=10_000.0)
        decision = controller.admit("lookup")
        controller.release()
        assert decision.level_name == "normal"
