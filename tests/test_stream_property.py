"""Property: streamed construction is invariant in split AND delta order.

The strong form of the streaming keystone: for ANY micro-batch size and
ANY shuffle of the record stream, draining the deltas and finalizing
produces exactly the batch build over the same source union — graph
state with provenance, the lineage ledger, and the ``.rkgs`` snapshot
bytes.  Nothing about how the records trickled in can change a single
observable bit.
"""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import codec
from repro.core.codec import TripleWAL
from repro.core.partition import fixture_sources, partitioned_pipeline
from repro.obs import enabled_scope, reset_all
from repro.obs.lineage import get_ledger
from repro.stream import StreamIngestor, micro_batches

_SOURCES = fixture_sources(n_people=12, n_movies=8, seed=3)
_N_RECORDS = sum(len(source) for source in _SOURCES)


def _state(graph):
    graph._materialize_provenance()
    triples = sorted(graph.query(), key=lambda t: t._sort_key())
    return {
        "triples": triples,
        "provenance": {t: graph.provenance(t) for t in triples},
        "entities": sorted(
            (e.entity_id, e.name, e.entity_class, tuple(sorted(e.aliases)))
            for e in graph.entities()
        ),
    }


def _snapshot_bytes(graph):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "check.rkgs")
        codec.save_graph(graph, path, include_lineage=False)
        with open(path, "rb") as handle:
            return handle.read()


def _batch_reference():
    reset_all()
    with enabled_scope():
        pipeline, context = partitioned_pipeline(_SOURCES, name="stream-prop")
        context = pipeline.run(context, partitions=1)
        ledger_state = get_ledger().export_state()
    reset_all()
    graph = context.artifacts["kg"]
    return _state(graph), ledger_state, _snapshot_bytes(graph)


_REFERENCE = _batch_reference()


@settings(max_examples=10, deadline=None)
@given(
    batch_size=st.integers(min_value=1, max_value=_N_RECORDS + 5),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_split_any_order_finalizes_identically(batch_size, order_seed):
    with tempfile.TemporaryDirectory() as wal_dir:
        reset_all()
        with enabled_scope():
            ingestor = StreamIngestor(wal=TripleWAL(wal_dir))
            for delta in micro_batches(
                _SOURCES, batch_size, order_seed=order_seed
            ):
                ingestor.ingest(delta)
        reset_all()
        with enabled_scope():
            outcome = ingestor.finalize()
            ledger_state = get_ledger().export_state()
        reset_all()
        assert _state(outcome.graph) == _REFERENCE[0]
        assert ledger_state == _REFERENCE[1]
        assert _snapshot_bytes(outcome.graph) == _REFERENCE[2]
