"""Tests for the construction-pipeline framework."""

import pytest

from repro.core.pipeline import (
    ConstructionPipeline,
    FunctionStage,
    PipelineContext,
    PipelineStage,
)


class _Counter(PipelineStage):
    name = "counter"

    def run(self, context):
        count = context.artifacts.get("count", 0) + 1
        context.artifacts["count"] = count
        self.record("count", count)


class TestPipelineContext:
    def test_require_missing_raises(self):
        with pytest.raises(KeyError):
            PipelineContext().require("missing")

    def test_require_present(self):
        context = PipelineContext(artifacts={"x": 1})
        assert context.require("x") == 1


class TestConstructionPipeline:
    def test_stages_run_in_order(self):
        order = []
        pipeline = ConstructionPipeline("test")
        pipeline.add_function("first", lambda ctx: order.append("first"))
        pipeline.add_function("second", lambda ctx: order.append("second"))
        pipeline.run()
        assert order == ["first", "second"]

    def test_context_threads_through(self):
        pipeline = ConstructionPipeline("test")
        pipeline.add_stage(_Counter())
        pipeline.add_stage(_Counter("counter2"))
        context = pipeline.run()
        assert context.artifacts["count"] == 2

    def test_metrics_namespaced_in_context(self):
        pipeline = ConstructionPipeline("test").add_stage(_Counter())
        context = pipeline.run()
        assert context.metrics["counter.count"] == 1.0

    def test_reports_one_per_stage(self):
        pipeline = ConstructionPipeline("test")
        pipeline.add_stage(_Counter())
        pipeline.add_function("noop", lambda ctx: None)
        pipeline.run()
        assert [report.stage_name for report in pipeline.reports] == ["counter", "noop"]
        assert all(report.seconds >= 0 for report in pipeline.reports)

    def test_report_table_includes_metrics(self):
        pipeline = ConstructionPipeline("test").add_stage(_Counter())
        pipeline.run()
        rows = pipeline.report_table()
        assert rows[0]["stage"] == "counter"
        assert rows[0]["count"] == 1.0

    def test_base_stage_requires_override(self):
        with pytest.raises(NotImplementedError):
            PipelineStage().run(PipelineContext())

    def test_function_stage_name(self):
        stage = FunctionStage("named", lambda ctx: None)
        assert stage.name == "named"

    def test_rerun_resets_reports(self):
        pipeline = ConstructionPipeline("test").add_stage(_Counter())
        pipeline.run()
        pipeline.run()
        assert len(pipeline.reports) == 1
