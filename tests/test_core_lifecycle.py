"""Tests for the innovation-cycle model and the Sec. 5 readiness matrix."""

import pytest

from repro.core.lifecycle import (
    PRODUCTION_QUALITY_BAR,
    CycleStage,
    TechniqueProfile,
    TechniqueRegistry,
)


class TestCycleStage:
    def test_ordering(self):
        assert CycleStage.FEASIBILITY < CycleStage.QUALITY < CycleStage.UBIQUITY

    def test_descriptions(self):
        for stage in CycleStage:
            assert stage.describe()


class TestTechniqueProfile:
    def test_ready_requires_quality_bar(self):
        profile = TechniqueProfile("x", CycleStage.QUALITY, quality=PRODUCTION_QUALITY_BAR)
        assert profile.is_ready
        assert not TechniqueProfile("y", CycleStage.QUALITY, quality=0.5).is_ready

    def test_unknown_quality_not_ready(self):
        assert not TechniqueProfile("x", CycleStage.QUALITY).is_ready

    def test_essential_requires_leverage(self):
        assert TechniqueProfile("x", CycleStage.QUALITY, leverage=10).is_essential
        assert not TechniqueProfile("x", CycleStage.QUALITY, leverage=2).is_essential

    def test_production_ready_needs_both(self):
        both = TechniqueProfile("x", CycleStage.QUALITY, quality=0.95, leverage=100)
        only_quality = TechniqueProfile("y", CycleStage.QUALITY, quality=0.95, leverage=1)
        only_leverage = TechniqueProfile("z", CycleStage.QUALITY, quality=0.5, leverage=100)
        assert both.production_ready
        assert not only_quality.production_ready
        assert not only_leverage.production_ready


class TestRegistry:
    def _registry(self):
        registry = TechniqueRegistry()
        registry.register(
            TechniqueProfile("entity_linkage", CycleStage.REPEATABILITY, quality=0.99, leverage=1000)
        )
        registry.register(
            TechniqueProfile("openie", CycleStage.FEASIBILITY, quality=0.6, leverage=1000)
        )
        return registry

    def test_successes_and_not_yet(self):
        registry = self._registry()
        assert registry.successes() == ["entity_linkage"]
        assert registry.not_yet() == ["openie"]

    def test_record_quality_updates(self):
        registry = self._registry()
        registry.record_quality("openie", 0.95)
        assert registry.successes() == ["entity_linkage", "openie"]

    def test_record_quality_unknown_raises(self):
        with pytest.raises(KeyError):
            self._registry().record_quality("nope", 0.9)

    def test_matrix_rows(self):
        rows = self._registry().matrix()
        assert [row["technique"] for row in rows] == ["entity_linkage", "openie"]
        assert rows[0]["production_ready"] is True
