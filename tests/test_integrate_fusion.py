"""Tests for data fusion (majority vote and Bayesian ACCU-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrate.fusion import AccuFusion, ValueClaim, claims_from_sources, majority_vote


def _claims(spec):
    """spec: list of (subject, attribute, value, source)."""
    return [ValueClaim(*row) for row in spec]


class TestMajorityVote:
    def test_plurality_wins(self):
        results = majority_vote(
            _claims(
                [
                    ("e1", "year", 1999, "a"),
                    ("e1", "year", 1999, "b"),
                    ("e1", "year", 2001, "c"),
                ]
            )
        )
        assert results[0].value == 1999
        assert results[0].confidence == pytest.approx(2 / 3)

    def test_groups_items_independently(self):
        results = majority_vote(
            _claims(
                [
                    ("e1", "year", 1999, "a"),
                    ("e2", "year", 2000, "a"),
                ]
            )
        )
        assert len(results) == 2

    def test_deterministic_tie_break(self):
        first = majority_vote(_claims([("e", "x", "a", "s1"), ("e", "x", "b", "s2")]))
        second = majority_vote(_claims([("e", "x", "b", "s2"), ("e", "x", "a", "s1")]))
        assert first[0].value == second[0].value


class TestAccuFusion:
    def test_accurate_source_outvotes_sloppy_majority(self):
        """A careful source beats two sloppy ones on conflicted items —
        provided other items supply independent evidence of who errs.

        Items 0-19: good+ok sources agree on the truth while the bad pair
        disagree (each with its own junk), exposing the bad pair's
        inaccuracy.  Items 20-29: good (1 vote) vs bad pair agreeing
        (2 votes) — learned accuracies must override the raw count."""
        claims = []
        for item in range(20):
            claims.append(ValueClaim(f"e{item}", "a", "truth", "good"))
            claims.append(ValueClaim(f"e{item}", "a", "truth", "ok1"))
            claims.append(ValueClaim(f"e{item}", "a", "truth", "ok2"))
            claims.append(ValueClaim(f"e{item}", "a", f"junk{item}", "bad1"))
            claims.append(ValueClaim(f"e{item}", "a", f"junk{item}x", "bad2"))
        for item in range(20, 30):
            claims.append(ValueClaim(f"e{item}", "a", "truth", "good"))
            claims.append(ValueClaim(f"e{item}", "a", "junk", "bad1"))
            claims.append(ValueClaim(f"e{item}", "a", "junk", "bad2"))
        fusion = AccuFusion(n_iterations=15)
        results = {r.subject: r for r in fusion.fuse(claims)}
        wins = sum(1 for item in range(20, 30) if results[f"e{item}"].value == "truth")
        assert wins >= 8

    def test_source_accuracy_learned(self):
        """Accuracy estimation needs corroboration: a witness source tips
        the conflicted items, and EM propagates that into accuracies."""
        claims = []
        for item in range(30):
            claims.append(ValueClaim(f"e{item}", "a", "v", "reliable"))
            claims.append(ValueClaim(f"e{item}", "a", "v", "witness"))
            value = "v" if item % 3 else "junk"
            claims.append(ValueClaim(f"e{item}", "a", value, "flaky"))
        fusion = AccuFusion()
        fusion.fuse(claims)
        assert fusion.source_accuracy_["reliable"] > fusion.source_accuracy_["flaky"]

    def test_confidences_normalized_per_item(self):
        claims = _claims(
            [
                ("e1", "x", "a", "s1"),
                ("e1", "x", "b", "s2"),
                ("e1", "x", "a", "s3"),
            ]
        )
        results = AccuFusion().fuse(claims)
        assert len(results) == 1
        assert 0.0 < results[0].confidence <= 1.0

    def test_empty_claims(self):
        assert AccuFusion().fuse([]) == []

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["e1", "e2"]),
                st.sampled_from(["attr"]),
                st.sampled_from(["u", "v", "w"]),
                st.sampled_from(["s1", "s2", "s3"]),
            ),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_fused_value_always_among_claims(self, rows):
        claims = _claims(rows)
        claimed = {}
        for claim in claims:
            claimed.setdefault((claim.subject, claim.attribute), set()).add(claim.value)
        for result in AccuFusion(n_iterations=4).fuse(claims):
            assert result.value in claimed[(result.subject, result.attribute)]
            assert 0.0 < result.confidence <= 1.0


class TestClaimsFromSources:
    def test_builds_claims_with_canonical_attributes(self, small_world):
        from repro.datagen.sources import conflicting_sources

        sources = conflicting_sources(small_world, n_sources=3, seed=31)
        claims = claims_from_sources(sources, attributes=("release_year", "genre"))
        assert claims
        assert {claim.attribute for claim in claims} <= {"release_year", "genre"}

    def test_fusion_beats_single_worst_source(self, small_world):
        from repro.datagen.sources import conflicting_sources

        sources = conflicting_sources(
            small_world, n_sources=5, base_accuracy=(0.97, 0.95, 0.9, 0.7, 0.55), seed=33
        )
        claims = claims_from_sources(sources, attributes=("release_year",))
        results = AccuFusion().fuse(claims)
        correct = sum(
            1
            for result in results
            if small_world.truth.objects(result.subject, "release_year")
            and result.value == small_world.truth.objects(result.subject, "release_year")[0]
        )
        assert correct / len(results) > 0.9
