"""Request-scoped observability: ids, propagation, sampling, access logs."""

import json
import threading

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.obs import enabled_scope, get_tracer
from repro.obs.tracing import NULL_SPAN
from repro.serve import context as serve_context
from repro.serve.admission import AdmissionController
from repro.serve.context import (
    AccessLog,
    RequestContext,
    new_request_id,
    request_scope,
    request_span,
    tag_request,
    trace_sample_rate,
    use_context,
)
from repro.serve.server import InProcessClient
from repro.serve.service import KGService


@pytest.fixture
def obs_on():
    """Enable observability with a clean tracer/registry; restore after."""
    with enabled_scope():
        yield


def build_graph(n=20):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="ctxtest")
    for index in range(n):
        graph.add_entity(f"e{index}", f"Node {index}", "Thing")
        graph.add(f"e{index}", "color", "red" if index % 2 else "blue")
    return graph


def make_service(n_shards=1, admission=None, trace_sample=None, access_log=None):
    service = KGService(
        n_shards=n_shards,
        admission=admission,
        trace_sample=trace_sample,
        access_log=access_log,
    )
    service.publish(build_graph())
    return service


class TestRequestIds:
    def test_ids_are_unique_and_header_safe(self):
        ids = {new_request_id() for _ in range(1000)}
        assert len(ids) == 1000
        for rid in list(ids)[:10]:
            assert rid.startswith("req-")
            assert rid == rid.strip() and " " not in rid

    def test_supplied_id_is_kept(self):
        context = RequestContext("lookup", request_id="req-caller-chose")
        assert context.request_id == "req-caller-chose"

    def test_sample_rate_env_parsing(self, monkeypatch):
        monkeypatch.setenv(serve_context.TRACE_SAMPLE_ENV, "0.5")
        assert trace_sample_rate() == 0.5
        monkeypatch.setenv(serve_context.TRACE_SAMPLE_ENV, "7")
        assert trace_sample_rate() == 1.0  # clamped
        monkeypatch.setenv(serve_context.TRACE_SAMPLE_ENV, "not-a-float")
        assert trace_sample_rate() == serve_context.DEFAULT_TRACE_SAMPLE
        monkeypatch.delenv(serve_context.TRACE_SAMPLE_ENV)
        assert trace_sample_rate() == serve_context.DEFAULT_TRACE_SAMPLE

    def test_explicit_rate_overrides_env(self, monkeypatch):
        monkeypatch.setenv(serve_context.TRACE_SAMPLE_ENV, "0.0")
        assert RequestContext("lookup", sample_rate=1.0).sampled is True
        monkeypatch.setenv(serve_context.TRACE_SAMPLE_ENV, "1.0")
        assert RequestContext("lookup", sample_rate=0.0).sampled is False


class TestPropagation:
    def test_no_context_outside_scope(self):
        assert serve_context.current_context() is None
        tag_request("ignored", 1)  # no-op, no error

    def test_scope_installs_and_removes_context(self):
        with request_scope("lookup", sample_rate=0.0) as context:
            assert serve_context.current_context() is context
            assert context.labels["route"] == "lookup"
        assert serve_context.current_context() is None

    def test_reentrant_scope_reuses_outer_context(self):
        with request_scope("lookup", sample_rate=0.0) as outer:
            with request_scope("ask", sample_rate=1.0) as inner:
                assert inner is outer
            # Inner exit must not tear down the outer context.
            assert serve_context.current_context() is outer

    def test_use_context_carries_across_threads(self):
        context = RequestContext("query", sample_rate=0.0)
        seen = []

        def worker():
            with use_context(context, None):
                seen.append(serve_context.current_context())

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen == [context]

    def test_tags_buffer_on_context(self):
        with request_scope("lookup", sample_rate=0.0) as context:
            tag_request("cache", "hit")
            tag_request("admission.level", "healthy")
        assert context.tags == {"cache": "hit", "admission.level": "healthy"}


class TestSampling:
    def test_sampled_request_flushes_span_tree(self, obs_on):
        client = InProcessClient(make_service(trace_sample=1.0))
        code, _body = client.lookup("e0", "color")
        assert code == 200
        spans = get_tracer().spans()
        names = [span.name for span in spans]
        assert "serve.request" in names and "serve.lookup" in names
        root = next(span for span in spans if span.name == "serve.request")
        child = next(span for span in spans if span.name == "serve.lookup")
        assert root.trace_id == client.last_request_id
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert root.tags["status"] == "ok"
        assert root.tags["http_status"] == 200

    def test_unsampled_ok_request_flushes_nothing(self, obs_on):
        client = InProcessClient(make_service(trace_sample=0.0))
        get_tracer().reset()  # drop the publish span
        code, _body = client.lookup("e0", "color")
        assert code == 200
        assert get_tracer().spans() == []

    def test_unsampled_spans_are_null_inside_scope(self, obs_on):
        with request_scope("lookup", sample_rate=0.0):
            with request_span("serve.child") as span_:
                assert span_ is NULL_SPAN

    def test_shed_request_is_force_sampled_with_tags(self, obs_on):
        admission = AdmissionController(rate=10_000.0, max_concurrent=1)
        service = make_service(admission=admission, trace_sample=0.0)
        get_tracer().reset()  # drop the publish span
        client = InProcessClient(service)
        blocker = admission.admit("lookup")
        assert blocker.admitted
        try:
            # e5/color is uncached: no stale fallback, the request sheds.
            code, _body = client.lookup("e5", "color")
        finally:
            admission.release()
        assert code == 429
        spans = get_tracer().spans()
        assert [span.name for span in spans] == ["serve.request"]
        root = spans[0]
        # The synthesized root carries the buffered tags and real timing.
        assert root.tags["status"] == "shed"
        assert root.tags["http_status"] == 429
        assert root.tags["admission.reason"] == "queue_full"
        assert root.trace_id == client.last_request_id

    def test_error_request_is_force_sampled(self, obs_on, monkeypatch):
        service = make_service(trace_sample=0.0)
        client = InProcessClient(service)
        monkeypatch.setattr(
            service.router,
            "_compute_lookup",
            lambda *args, **kwargs: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        code, _body = client.lookup("e0", "color")
        assert code == 500
        roots = get_tracer().spans("serve.request")
        assert len(roots) == 1
        assert roots[0].tags["http_status"] == 500

    def test_exception_escaping_the_scope_is_kept(self, obs_on):
        with pytest.raises(RuntimeError):
            with request_scope("lookup", sample_rate=0.0):
                raise RuntimeError("edge bug")
        roots = get_tracer().spans("serve.request")
        assert len(roots) == 1
        assert roots[0].tags["status"] == "error"
        assert "edge bug" in roots[0].tags["error"]

    def test_obs_disabled_buffers_and_flushes_nothing(self):
        client = InProcessClient(make_service(trace_sample=1.0))
        code, _body = client.lookup("e0", "color")
        assert code == 200
        assert get_tracer().spans() == []


class TestShardFanOut:
    def test_per_shard_child_spans_join_the_request_tree(self, obs_on):
        client = InProcessClient(make_service(n_shards=3, trace_sample=1.0))
        code, body = client.query([["?s", "color", "?c"]])
        assert code == 200 and body["payload"]["n_bindings"] > 0
        spans = get_tracer().spans()
        shard_spans = [span for span in spans if span.name == "serve.shard.query"]
        assert {span.tags["shard"] for span in shard_spans} == {0, 1, 2}
        request_id = client.last_request_id
        assert all(span.trace_id == request_id for span in shard_spans)
        # Children hang off the route span, which hangs off the root.
        route = next(span for span in spans if span.name == "serve.query")
        assert all(span.parent_id == route.span_id for span in shard_spans)

    def test_unsampled_fanout_records_no_shard_spans(self, obs_on):
        client = InProcessClient(make_service(n_shards=3, trace_sample=0.0))
        get_tracer().reset()  # drop the publish span
        code, _body = client.query([["?s", "color", "?c"]])
        assert code == 200
        assert get_tracer().spans() == []


class TestAccessLog:
    def read_lines(self, path):
        with open(path, encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]

    def test_logs_every_request_at_full_sample(self, tmp_path):
        log = AccessLog(str(tmp_path / "access.jsonl"))
        client = InProcessClient(make_service(trace_sample=0.0, access_log=log))
        client.lookup("e0", "color")
        client.lookup("", "")  # bad_request
        lines = self.read_lines(log.path)
        assert log.n_written == 2 and len(lines) == 2
        ok, bad = lines
        assert ok["route"] == "lookup" and ok["http_status"] == 200
        assert ok["status"] == "ok" and ok["latency_ms"] >= 0
        assert ok["request_id"].startswith("req-")
        assert bad["http_status"] == 400

    def test_zero_sample_keeps_only_shed_and_errors(self, tmp_path):
        log = AccessLog(str(tmp_path / "access.jsonl"), sample=0.0)
        admission = AdmissionController(rate=10_000.0, max_concurrent=1)
        service = make_service(admission=admission, access_log=log, trace_sample=0.0)
        client = InProcessClient(service)
        client.lookup("e0", "color")  # ok: dropped by the sample
        blocker = admission.admit("lookup")
        assert blocker.admitted
        try:
            client.lookup("e5", "color")  # shed: always logged
        finally:
            admission.release()
        lines = self.read_lines(log.path)
        assert [line["http_status"] for line in lines] == [429]
        assert lines[0]["status"] == "shed"
        log.close()
