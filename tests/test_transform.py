"""Tests for knowledge transformation (mappings, infoboxes, relational)."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.datagen.sources import SourceConfig, derive_source
from repro.transform.infobox import Infobox, InfoboxTransformer, infobox_from_record
from repro.transform.mapping import FieldMapping, SchemaMapping, cast_number, cast_string
from repro.transform.relational import RelationalTransformer


def _target_graph():
    ontology = Ontology()
    ontology.add_class("Agent")
    ontology.add_class("Person", parent="Agent")
    ontology.add_class("Movie")
    ontology.add_relation("release_year", "Movie", "number")
    ontology.add_relation("genre", "Movie", "string")
    ontology.add_relation("directed_by", "Movie", "Person")
    ontology.add_relation("birth_year", "Person", "number")
    return KnowledgeGraph(ontology=ontology, name="target")


def _movie_mapping():
    mapping = SchemaMapping(source_name="wiki", entity_class="Movie")
    mapping.map_field("release_year", "release_year", cast=cast_number)
    mapping.map_field("genre", "genre")
    mapping.map_field("directed_by", "directed_by", is_entity_reference=True)
    return mapping


class TestCasts:
    def test_cast_number_int(self):
        assert cast_number("1999") == 1999

    def test_cast_number_float(self):
        assert cast_number("1.5") == 1.5

    def test_cast_number_rejects_text(self):
        with pytest.raises(ValueError):
            cast_number("abc")

    def test_cast_number_rejects_bool(self):
        with pytest.raises(ValueError):
            cast_number(True)

    def test_cast_string_strips(self):
        assert cast_string("  x ") == "x"

    def test_cast_string_rejects_empty(self):
        with pytest.raises(ValueError):
            cast_string("   ")


class TestSchemaMapping:
    def test_validate_against_ontology(self):
        graph = _target_graph()
        assert _movie_mapping().validate(graph.ontology) == []

    def test_validate_catches_unknown_relation(self):
        graph = _target_graph()
        mapping = SchemaMapping(source_name="s", entity_class="Movie")
        mapping.map_field("x", "nonexistent")
        problems = mapping.validate(graph.ontology)
        assert problems

    def test_apply_skips_uncastable(self):
        mapping = _movie_mapping()
        output = mapping.apply({"release_year": "not-a-year", "genre": "drama"})
        assert output == [("genre", "drama", False)]

    def test_apply_marks_references(self):
        mapping = _movie_mapping()
        output = dict(
            (relation, is_ref) for relation, _value, is_ref in mapping.apply(
                {"directed_by": "Jane Doe"}
            )
        )
        assert output["directed_by"] is True


class TestInfoboxTransformer:
    def test_transform_creates_entity_and_triples(self):
        graph = _target_graph()
        transformer = InfoboxTransformer(graph=graph)
        transformer.register(_movie_mapping(), reference_classes={"directed_by": "Person"})
        infobox = Infobox(
            title="Silent River",
            entity_class="Movie",
            pairs=[("release_year", 1999), ("genre", "drama"), ("directed_by", "Jane Doe")],
        )
        entity_id = transformer.transform(infobox)
        assert graph.entity(entity_id).name == "Silent River"
        assert graph.one_object(entity_id, "release_year") == 1999
        director_id = graph.one_object(entity_id, "directed_by")
        assert graph.entity(director_id).name == "Jane Doe"
        assert graph.entity(director_id).entity_class == "Person"

    def test_reference_resolves_to_existing_entity(self):
        graph = _target_graph()
        graph.add_entity("p1", "Jane Doe", "Person")
        transformer = InfoboxTransformer(graph=graph)
        transformer.register(_movie_mapping(), reference_classes={"directed_by": "Person"})
        infobox = Infobox(
            title="Silent River", entity_class="Movie", pairs=[("directed_by", "Jane Doe")]
        )
        entity_id = transformer.transform(infobox)
        assert graph.one_object(entity_id, "directed_by") == "p1"

    def test_unmapped_class_skipped(self):
        graph = _target_graph()
        transformer = InfoboxTransformer(graph=graph)
        assert transformer.transform(Infobox(title="x", entity_class="Song")) is None

    def test_invalid_mapping_rejected(self):
        graph = _target_graph()
        bad = SchemaMapping(source_name="s", entity_class="Movie")
        bad.map_field("x", "nope")
        with pytest.raises(ValueError):
            InfoboxTransformer(graph=graph).register(bad)

    def test_provenance_recorded(self):
        graph = _target_graph()
        transformer = InfoboxTransformer(graph=graph)
        transformer.register(_movie_mapping())
        entity_id = transformer.transform(
            Infobox(title="X", entity_class="Movie", pairs=[("genre", "drama")]),
            source_name="wikipedia",
        )
        triple = graph.query(subject=entity_id, predicate="genre")[0]
        assert graph.provenance(triple)[0].source == "wikipedia"

    def test_infobox_from_record(self, small_world):
        source = derive_source(
            small_world, SourceConfig(name="s", entity_classes=("Movie",), seed=1)
        )
        infobox = infobox_from_record(source.records[0])
        assert infobox.title
        assert infobox.entity_class == "Movie"
        assert infobox.pairs

    def test_infobox_from_split_name_record(self, small_world):
        source = derive_source(
            small_world,
            SourceConfig(name="s", entity_classes=("Person",), split_person_name=True, seed=1),
        )
        infobox = infobox_from_record(source.records[0])
        assert " " in infobox.title or infobox.title


class TestRelationalTransformer:
    def test_transform_source_end_to_end(self, small_world):
        graph = _target_graph()
        transformer = RelationalTransformer(graph=graph)
        transformer.register(_movie_mapping(), reference_classes={"directed_by": "Person"})
        source = derive_source(
            small_world,
            SourceConfig(name="imdbish", entity_classes=("Movie",), seed=2),
        )
        ingested = transformer.transform_source(source)
        assert ingested == len(source.records)
        assert graph.stats()["n_entities"] >= ingested

    def test_entity_ids_namespaced_by_source(self, small_world):
        graph = _target_graph()
        transformer = RelationalTransformer(graph=graph)
        transformer.register(_movie_mapping())
        source = derive_source(
            small_world, SourceConfig(name="src", entity_classes=("Movie",), seed=2)
        )
        transformer.transform_record(source.records[0])
        entity_id = transformer.record_entity_[source.records[0].record_id]
        assert entity_id.startswith("src:")

    def test_unmapped_class_returns_none(self, small_world):
        graph = _target_graph()
        transformer = RelationalTransformer(graph=graph)
        source = derive_source(
            small_world, SourceConfig(name="s", entity_classes=("Person",), seed=2)
        )
        assert transformer.transform_record(source.records[0]) is None
