"""Tests for the observability layer: tracing, metrics, profiling."""

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    count,
    current_span,
    disable,
    enable,
    enabled,
    enabled_scope,
    gauge,
    get_registry,
    get_tracer,
    observe,
    profile_block,
    profiled,
    span,
)
from repro.obs.metrics import Histogram
from repro.obs.tracing import NULL_SPAN


@pytest.fixture
def obs_on():
    """Enable observability with a clean tracer/registry; restore after."""
    with enabled_scope():
        yield


class TestSpans:
    def test_disabled_span_is_null_and_records_nothing(self):
        assert not enabled()
        get_tracer().reset()
        with span("anything") as opened:
            assert opened is NULL_SPAN
            opened.set_tag("k", "v")  # discarded, no error
        assert get_tracer().spans() == []

    def test_nesting_links_parent_and_trace(self, obs_on):
        with span("outer") as outer:
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
            assert current_span() is outer
        assert current_span() is None
        finished = get_tracer().spans()
        assert [s.name for s in finished] == ["inner", "outer"]

    def test_sibling_roots_get_distinct_traces(self, obs_on):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = get_tracer().spans()
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None

    def test_span_times_and_tags(self, obs_on):
        with span("work", site="imdb") as opened:
            opened.set_tag("rows", 7)
        (finished,) = get_tracer().spans()
        assert finished.wall_seconds >= 0.0
        assert finished.cpu_seconds >= 0.0
        assert finished.tags == {"site": "imdb", "rows": 7}

    def test_exception_tags_error_and_propagates(self, obs_on):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        (finished,) = get_tracer().spans()
        assert finished.tags["error"] == "ValueError: boom"
        assert current_span() is None

    def test_export_jsonl_round_trips(self, obs_on):
        with span("outer"):
            with span("inner"):
                pass
        records = [json.loads(line) for line in get_tracer().export_jsonl().splitlines()]
        assert len(records) == 2
        by_name = {record["name"]: record for record in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert all(record["kind"] == "span" for record in records)

    def test_write_jsonl(self, obs_on, tmp_path):
        with span("only"):
            pass
        path = tmp_path / "trace.jsonl"
        assert get_tracer().write_jsonl(str(path)) == 1
        assert json.loads(path.read_text().strip())["name"] == "only"

    def test_reset_drops_finished_spans(self, obs_on):
        with span("gone"):
            pass
        get_tracer().reset()
        assert get_tracer().spans() == []

    def test_prefix_filter(self, obs_on):
        with span("stage.one"):
            pass
        with span("other"):
            pass
        assert [s.name for s in get_tracer().spans("stage.")] == ["stage.one"]


class TestHistogram:
    def test_percentiles_interpolate(self):
        histogram = Histogram("h", buckets=[float(i) for i in range(1, 101)])
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == pytest.approx(50.0)
        assert histogram.percentile(0.95) == pytest.approx(95.0)
        assert histogram.percentile(0.99) == pytest.approx(99.0)

    def test_summary_tracks_exact_extremes(self):
        histogram = Histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 2.0, 500.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.5
        assert summary["max"] == 500.0
        assert summary["sum"] == pytest.approx(502.5)

    def test_overflow_percentile_clamped_to_max(self):
        histogram = Histogram("h", buckets=[1.0])
        histogram.observe(42.0)
        assert histogram.percentile(0.99) == 42.0

    def test_empty_summary_is_zeros(self):
        assert Histogram("h").summary()["count"] == 0
        assert Histogram("h").percentile(0.5) == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_empty_histogram_never_raises(self):
        histogram = Histogram("h")
        assert histogram.percentile(0.99) == 0.0
        summary = histogram.summary()
        assert summary["min"] == 0.0 and summary["max"] == 0.0

    def test_state_zeroes_empty_extremes(self):
        state = Histogram("h", buckets=[1.0]).state()
        assert state["count"] == 0
        assert state["min"] == 0.0 and state["max"] == 0.0
        assert state["bucket_counts"] == [0, 0]

    def test_state_buckets_sum_to_count(self):
        histogram = Histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        state = histogram.state()
        assert sum(state["bucket_counts"]) == state["count"] == 3

    def test_single_sample_percentiles_collapse_to_value(self):
        histogram = Histogram("h", buckets=[1.0, 10.0, 100.0])
        histogram.observe(7.0)
        for quantile in (0.01, 0.5, 0.95, 0.99):
            assert histogram.percentile(quantile) == 7.0
        summary = histogram.summary()
        assert summary["min"] == summary["max"] == 7.0
        assert summary["count"] == 1

    def test_merge_state_adds_everything(self):
        left = Histogram("h", buckets=[1.0, 10.0])
        right = Histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 5.0):
            left.observe(value)
        for value in (50.0, 0.25):
            right.observe(value)
        left.merge_state(right.state())
        state = left.state()
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(55.75)
        assert state["min"] == 0.25
        assert state["max"] == 50.0
        assert state["bucket_counts"] == [2, 1, 1]

    def test_merge_empty_state_does_not_clamp_extremes(self):
        histogram = Histogram("h", buckets=[1.0])
        histogram.observe(5.0)
        histogram.merge_state(Histogram("h", buckets=[1.0]).state())
        state = histogram.state()
        assert state["count"] == 1
        # The empty side's zeroed min/max sentinels must not leak in.
        assert state["min"] == 5.0 and state["max"] == 5.0

    def test_merge_into_empty_adopts_extremes(self):
        empty = Histogram("h", buckets=[1.0])
        full = Histogram("h", buckets=[1.0])
        full.observe(3.0)
        empty.merge_state(full.state())
        state = empty.state()
        assert state["min"] == 3.0 and state["max"] == 3.0

    def test_merge_mismatched_bounds_raises(self):
        with pytest.raises(ValueError, match="bounds"):
            Histogram("h", buckets=[1.0]).merge_state(
                Histogram("h", buckets=[2.0]).state()
            )


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        assert registry.snapshot()["counters"]["c"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(5.0)
        assert registry.snapshot()["gauges"]["g"] == 5.0

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_plain_and_detached(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # plain data, serializable
        registry.counter("c").inc(10)
        assert snapshot["counters"]["c"] == 1.0  # detached from live state

    def test_reset_isolates_between_tests(self):
        registry = MetricsRegistry()
        registry.counter("leak").inc(99)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_global_helpers_gated_by_enablement(self):
        get_registry().reset()
        assert not enabled()
        count("nope")
        gauge("nope2", 1.0)
        observe("nope3", 0.5)
        assert get_registry().snapshot()["counters"] == {}
        with enabled_scope():
            count("yes", 2)
            gauge("depth", 4)
            observe("latency", 0.25)
            snapshot = get_registry().snapshot()
            assert snapshot["counters"]["yes"] == 2.0
            assert snapshot["gauges"]["depth"] == 4.0
            assert snapshot["histograms"]["latency"]["count"] == 1

    def test_thread_safety_of_counter(self):
        registry = MetricsRegistry()

        def hammer():
            counter = registry.counter("hits")
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The lock guards instrument creation; concurrent inc on one
        # counter may lose updates but must never corrupt the registry.
        assert 0 < registry.snapshot()["counters"]["hits"] <= 4000


class TestProfiling:
    def test_enable_disable_roundtrip(self):
        assert not enabled()
        enable()
        try:
            assert enabled()
        finally:
            disable()
        assert not enabled()

    def test_profiled_disabled_is_passthrough(self):
        calls = []

        @profiled("unit.work")
        def work(x):
            calls.append(x)
            return x * 2

        get_registry().reset()
        get_tracer().reset()
        assert work(3) == 6
        assert calls == [3]
        assert get_registry().snapshot()["counters"] == {}
        assert get_tracer().spans() == []

    def test_profiled_enabled_feeds_span_counter_histogram(self, obs_on):
        @profiled("unit.work", kind="test")
        def work():
            return "ok"

        assert work() == "ok"
        assert work() == "ok"
        (first, second) = get_tracer().spans()
        assert first.name == "unit.work" and first.tags["kind"] == "test"
        snapshot = get_registry().snapshot()
        assert snapshot["counters"]["unit.work.calls"] == 2.0
        assert snapshot["histograms"]["unit.work.seconds"]["count"] == 2

    def test_profiled_records_on_exception(self, obs_on):
        @profiled("unit.fail")
        def fail():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            fail()
        snapshot = get_registry().snapshot()
        assert snapshot["counters"]["unit.fail.calls"] == 1.0
        (finished,) = get_tracer().spans()
        assert "RuntimeError" in finished.tags["error"]

    def test_profile_block(self, obs_on):
        with profile_block("region.x"):
            pass
        assert get_registry().snapshot()["counters"]["region.x.calls"] == 1.0
        assert [s.name for s in get_tracer().spans()] == ["region.x"]

    def test_reset_all_clears_every_global(self):
        from repro.obs import reset_all
        from repro.obs.lineage import get_ledger
        from repro.obs.quality import snapshots

        with enabled_scope():
            count("some.counter")
            with span("some.span"):
                pass
            get_ledger().observation("s", "p", "o", source="src")
            reset_all()
            assert get_registry().snapshot()["counters"] == {}
            assert get_tracer().spans() == []
            assert len(get_ledger()) == 0
            assert snapshots() == []

    def test_enabled_scope_restores_and_clears(self):
        assert not enabled()
        with enabled_scope():
            assert enabled()
            count("inside")
            with span("inside"):
                pass
        assert not enabled()
        assert get_registry().snapshot()["counters"] == {}
        assert get_tracer().spans() == []
