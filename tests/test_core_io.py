"""Tests for KG serialization."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.io import (
    FormatError,
    load_graph,
    load_text_rich,
    save_graph,
    save_text_rich,
)
from repro.core.ontology import Ontology
from repro.core.textrich import AttributeValue, TextRichKG
from repro.core.triple import Provenance, Triple


def _graph():
    ontology = Ontology()
    ontology.add_class("Person")
    ontology.add_class("Movie")
    ontology.add_relation("directed_by", "Movie", "Person", functional=True)
    ontology.add_relation("release_year", "Movie", "number")
    graph = KnowledgeGraph(ontology=ontology, name="demo")
    graph.add_entity("m1", "Silent River", "Movie", aliases={"The Silent River"})
    graph.add_entity("p1", "Jane Doe", "Person")
    graph.add_triple(
        Triple("m1", "directed_by", "p1"),
        provenance=Provenance(source="imdb", extractor="infobox", confidence=0.95),
    )
    graph.add_triple(Triple("m1", "release_year", 1999))
    return graph


def _text_rich():
    kg = TextRichKG(name="products")
    kg.taxonomy.add_class("Coffee")
    kg.taxonomy.add_class("Ground Coffee", parent="Coffee")
    kg.add_topic("b1", "Onus mocha Ground Coffee", "Ground Coffee", description="tasty")
    kg.add_value("b1", AttributeValue(attribute="flavor", value="mocha", confidence=0.9, source="txtract"))
    kg.add_value_edge("synonym", "decaf", "decaffeinated")
    return kg


class TestGraphRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        graph = _graph()
        path = str(tmp_path / "kg.jsonl")
        n_lines = save_graph(graph, path)
        assert n_lines > 5
        loaded = load_graph(path)
        assert loaded.name == "demo"
        assert loaded.stats() == graph.stats()
        assert list(loaded.triples()) == list(graph.triples())
        assert loaded.entity("m1").aliases == {"The Silent River"}
        provenance = loaded.provenance(Triple("m1", "directed_by", "p1"))
        assert provenance[0].source == "imdb"
        assert provenance[0].confidence == 0.95

    def test_ontology_roundtrip(self, tmp_path):
        graph = _graph()
        path = str(tmp_path / "kg.jsonl")
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.ontology.relation("directed_by").functional
        assert loaded.ontology.has_class("Person")

    def test_numeric_objects_survive(self, tmp_path):
        graph = _graph()
        path = str(tmp_path / "kg.jsonl")
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.one_object("m1", "release_year") == 1999
        assert isinstance(loaded.one_object("m1", "release_year"), int)

    def test_wrong_kind_rejected(self, tmp_path):
        kg = _text_rich()
        path = str(tmp_path / "kg.jsonl")
        save_text_rich(kg, path)
        with pytest.raises(FormatError):
            load_graph(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(FormatError):
            load_graph(str(path))

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(FormatError):
            load_graph(str(path))

    def test_world_scale_roundtrip(self, tmp_path, small_world):
        path = str(tmp_path / "world.jsonl")
        save_graph(small_world.truth, path)
        loaded = load_graph(path)
        assert loaded.stats() == small_world.truth.stats()


class TestTextRichRoundtrip:
    def test_roundtrip(self, tmp_path):
        kg = _text_rich()
        path = str(tmp_path / "tr.jsonl")
        save_text_rich(kg, path)
        loaded = load_text_rich(path)
        assert loaded.stats() == kg.stats()
        assert loaded.topic("b1").description == "tasty"
        assert loaded.value_of("b1", "flavor") == "mocha"
        assert loaded.has_value_edge("synonym", "decaffeinated", "decaf")
        assert loaded.taxonomy.parent("Ground Coffee") == "Coffee"

    def test_value_confidence_and_source_survive(self, tmp_path):
        kg = _text_rich()
        path = str(tmp_path / "tr.jsonl")
        save_text_rich(kg, path)
        loaded = load_text_rich(path)
        record = loaded.values("b1", "flavor")[0]
        assert record.confidence == 0.9
        assert record.source == "txtract"

    def test_wrong_kind_rejected(self, tmp_path):
        graph = _graph()
        path = str(tmp_path / "kg.jsonl")
        save_graph(graph, path)
        with pytest.raises(FormatError):
            load_text_rich(path)
