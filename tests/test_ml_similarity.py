"""Tests for repro.ml.similarity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.similarity import (
    feature_vector,
    jaccard,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    numeric_similarity,
    set_containment,
    token_jaccard,
    token_sort_similarity,
    tokenize,
    value_similarity,
)

text_strategy = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x24F),
    max_size=20,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("kitten", "kitten") == 0

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_sides(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_similarity_normalized(self):
        assert levenshtein_similarity("abcd", "abcd") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 <= levenshtein_similarity("abcd", "wxyz") <= 1.0

    @given(text_strategy, text_strategy)
    def test_symmetry(self, left, right):
        assert levenshtein(left, right) == levenshtein(right, left)

    @given(text_strategy, text_strategy, text_strategy)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(text_strategy, text_strategy)
    def test_bounded_by_longest(self, left, right):
        assert levenshtein(left, right) <= max(len(left), len(right))


class TestTokenMeasures:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Dark-Roast 12oz!") == ["dark", "roast", "12oz"]

    def test_jaccard_identical(self):
        assert jaccard([1, 2], [2, 1]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard([1], [2]) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard([], []) == 1.0

    def test_token_jaccard(self):
        assert token_jaccard("green tea", "tea green") == 1.0

    def test_token_sort_handles_reordering(self):
        assert token_sort_similarity("Dong, Xin Luna", "Xin Luna Dong") == 1.0

    def test_set_containment(self):
        assert set_containment([1, 2], [1, 2, 3]) == 1.0
        assert set_containment([1, 2], [1]) == 0.5
        assert set_containment([], [1]) == 1.0


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler("martha", "martha") == 1.0

    def test_known_pair_is_high(self):
        assert jaro_winkler("martha", "marhta") > 0.94

    def test_empty(self):
        assert jaro_winkler("", "abc") == 0.0

    def test_prefix_boost(self):
        with_prefix = jaro_winkler("prefixed", "prefixxy")
        reversed_form = jaro_winkler("dexiferp", "yxxiferp")
        assert with_prefix >= reversed_form

    @given(text_strategy, text_strategy)
    def test_bounded(self, left, right):
        assert 0.0 <= jaro_winkler(left, right) <= 1.0


class TestMongeElkan:
    def test_identical_tokens(self):
        assert monge_elkan("luna dong", "dong luna") > 0.9

    def test_empty_both(self):
        assert monge_elkan("", "") == 1.0

    def test_one_empty(self):
        assert monge_elkan("abc", "") == 0.0


class TestNumericAndDispatch:
    def test_numeric_equal(self):
        assert numeric_similarity(1999, 1999) == 1.0

    def test_numeric_decay(self):
        assert numeric_similarity(1999, 2000) == pytest.approx(0.5)

    def test_numeric_missing(self):
        assert numeric_similarity(None, 3) == 0.0

    def test_numeric_non_numeric(self):
        assert numeric_similarity("abc", 3) == 0.0

    def test_value_similarity_dispatch_numeric(self):
        assert value_similarity(5, 5) == 1.0

    def test_value_similarity_dispatch_lists(self):
        assert value_similarity(["a"], ["a"]) == 1.0

    def test_value_similarity_none(self):
        assert value_similarity(None, "x") == 0.0

    def test_value_similarity_strings(self):
        assert value_similarity("The Silent River", "Silent River, The") > 0.7


class TestFeatureVector:
    def test_length_is_attributes_plus_missing_indicator(self):
        features = feature_vector({"name": "a"}, {"name": "a"}, ["name", "year"])
        assert len(features) == 3

    def test_missing_fraction(self):
        features = feature_vector({"name": "a"}, {"year": 2}, ["name", "year"])
        assert features[-1] == 1.0

    def test_identical_records_score_high(self):
        record = {"name": "Silent River", "year": 1987}
        features = feature_vector(record, dict(record), ["name", "year"])
        assert features[0] == pytest.approx(1.0)
        assert features[1] == pytest.approx(1.0)
