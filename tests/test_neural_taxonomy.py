"""Tests for the Sec. 4 taxonomy-knowledge claim.

"Taxonomy, or the type hierarchies, is what LLMs are good at capturing.
... So tail taxonomy may best reside at the LLM side."  The mechanism:
type statements are abundant and systematic in text, so parametric recall
is strong for them even when individual tail *facts* stay unreliable.
"""

import pytest

from repro.datagen.products import TAXONOMY_SPEC
from repro.datagen.text import generate_taxonomy_corpus, generate_text_corpus
from repro.neural.slm import SimulatedLM


def _taxonomy_pairs():
    pairs = []
    for _department, types in TAXONOMY_SPEC.items():
        for product_type, leaves in types.items():
            for leaf in leaves:
                pairs.append((leaf.lower(), product_type.lower()))
    return pairs


class TestTaxonomyCorpus:
    def test_pairs_repeated(self):
        mentions = generate_taxonomy_corpus([("green tea", "tea")], repetitions=5)
        assert len(mentions) == 5
        assert all(mention.predicate == "hypernym" for mention in mentions)

    def test_sentences_contain_both_terms(self):
        mentions = generate_taxonomy_corpus(_taxonomy_pairs(), repetitions=2)
        for mention in mentions[:20]:
            assert mention.subject_text in mention.sentence
            assert mention.object_text in mention.sentence


class TestParametricTaxonomyKnowledge:
    def test_lm_reliable_on_taxonomy_even_for_tail_types(self, small_world):
        """The Sec. 4 contrast: the same LM that misses tail *facts*
        answers taxonomy questions nearly perfectly, because taxonomy
        statements recur."""
        fact_corpus = generate_text_corpus(
            small_world, n_sentences=3000, noise_rate=0.15, seed=31
        )
        taxonomy_corpus = generate_taxonomy_corpus(_taxonomy_pairs(), repetitions=15, seed=32)
        model = SimulatedLM(seed=33).fit(fact_corpus)
        model.fit(taxonomy_corpus)

        # Taxonomy QA: "what is <leaf> a kind of?"
        correct = total = 0
        for child, parent in _taxonomy_pairs():
            total += 1
            answer = model.answer(child, "hypernym")
            if answer.text == parent:
                correct += 1
        taxonomy_accuracy = correct / total

        # Tail-fact QA from the same model.
        tail_ids = small_world.popularity.items_in_band("tail")
        correct = total = 0
        for entity_id in tail_ids[:60]:
            entity = small_world.truth.entity(entity_id)
            for predicate in ("directed_by", "birth_place", "performed_by"):
                gold = small_world.truth.objects(entity_id, predicate)
                if not gold:
                    continue
                gold_names = {
                    small_world.truth.entity(value).name
                    if isinstance(value, str) and small_world.truth.has_entity(value)
                    else str(value)
                    for value in gold
                }
                total += 1
                answer = model.answer(entity.name, predicate)
                if answer.text in gold_names:
                    correct += 1
        tail_fact_accuracy = correct / total if total else 0.0

        assert taxonomy_accuracy > 0.85
        assert taxonomy_accuracy > tail_fact_accuracy + 0.3
