"""Tests for the product-domain generator."""

import pytest

from repro.datagen.products import (
    ATTRIBUTE_SPEC,
    CONTRADICTIONS,
    FORBIDDEN_VALUES,
    ProductDomainConfig,
    build_product_domain,
    build_taxonomy,
)


class TestTaxonomy:
    def test_three_levels_deep(self):
        taxonomy = build_taxonomy()
        assert taxonomy.depth("Ground Coffee") == 3  # Product > Grocery > Coffee > leaf

    def test_every_attribute_type_is_a_class(self):
        taxonomy = build_taxonomy()
        for product_type in ATTRIBUTE_SPEC:
            assert taxonomy.has_class(product_type)


class TestProducts:
    def test_count(self, product_domain):
        assert len(product_domain.products) == product_domain.config.n_products

    def test_true_values_respect_forbidden(self, product_domain):
        for product in product_domain.products:
            for attribute, value in product.true_values.items():
                assert (product.product_type, attribute, value) not in FORBIDDEN_VALUES

    def test_true_values_respect_contradictions(self, product_domain):
        for product in product_domain.products:
            for (attr_a, val_a), (attr_b, val_b) in CONTRADICTIONS:
                assert not (
                    product.true_values.get(attr_a) == val_a
                    and product.true_values.get(attr_b) == val_b
                )

    def test_gold_spans_match_tokens(self, product_domain):
        for product in product_domain.products[:40]:
            for text in product.all_texts():
                for start, end, attribute in text.spans:
                    assert 0 <= start < end <= len(text.tokens)
                    assert attribute in ATTRIBUTE_SPEC[product.product_type]

    def test_title_contains_leaf_type(self, product_domain):
        product = product_domain.products[0]
        assert product.leaf_type.split()[0] in product.title_text

    def test_catalog_noisier_than_truth(self, product_domain):
        wrong = 0
        present = 0
        for product in product_domain.products:
            for attribute, value in product.catalog_values.items():
                present += 1
                if product.true_values.get(attribute, "").lower() != value.lower():
                    wrong += 1
        error_rate = wrong / present
        assert 0.02 < error_rate < 0.3  # noisy but usable

    def test_catalog_has_missing_values(self, product_domain):
        total_true = sum(len(product.true_values) for product in product_domain.products)
        total_catalog = sum(len(product.catalog_values) for product in product_domain.products)
        assert total_catalog < total_true

    def test_image_tokens_present(self, product_domain):
        assert all(product.image_tokens for product in product_domain.products)

    def test_image_tokens_carry_value_signal(self, product_domain):
        hits = 0
        for product in product_domain.products:
            signatures = {f"img:{value.split()[0]}" for value in product.true_values.values()}
            if signatures & set(product.image_tokens):
                hits += 1
        assert hits / len(product_domain.products) > 0.5

    def test_by_type_and_types(self, product_domain):
        for product_type in product_domain.types():
            assert all(
                product.product_type == product_type
                for product in product_domain.by_type(product_type)
            )

    def test_attribute_values_union(self, product_domain):
        values = product_domain.attribute_values("flavor")
        assert "mocha" in values and "jasmine" in values

    def test_deterministic(self):
        config = ProductDomainConfig(n_products=30, seed=9)
        first = build_product_domain(config)
        second = build_product_domain(config)
        assert [p.title_text for p in first.products] == [
            p.title_text for p in second.products
        ]

    def test_cross_type_ambiguity_exists(self, product_domain):
        """'vanilla' must appear under two different attributes."""
        attributes_for_vanilla = set()
        for spec in ATTRIBUTE_SPEC.values():
            for attribute, values in spec.items():
                if "vanilla" in values:
                    attributes_for_vanilla.add(attribute)
        assert {"flavor", "scent"} <= attributes_for_vanilla
