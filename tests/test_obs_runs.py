"""The persistent run registry: storage, queries, drift detection."""

import json
import os

import pytest

from repro.obs.runs import (
    DEFAULT_DRIFT_THRESHOLD,
    MIN_DRIFT_HISTORY,
    DriftAlert,
    RunRecord,
    RunRegistry,
    default_runs_dir,
    modified_z_score,
    stages_from_spans,
)


def _quality(accuracy, n_triples=1000):
    return {
        "name": "kg",
        "n_triples": n_triples,
        "n_entities": 200,
        "accuracy": accuracy,
    }


def _record(accuracy, experiment_id="SYN", kind="report", n_triples=1000):
    return RunRecord(
        kind=kind,
        experiment_id=experiment_id,
        quality=[_quality(accuracy, n_triples=n_triples)],
    )


#: A stable 10-run history: accuracy jitters around 0.950, triples constant.
STABLE_ACCURACIES = [0.950, 0.952, 0.948, 0.951, 0.949, 0.950, 0.953, 0.947, 0.951, 0.949]


class TestPersistence:
    def test_append_assigns_ids_and_metadata(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        first = registry.append(_record(0.95))
        second = registry.append(_record(0.96))
        assert first.run_id == "r0001"
        assert second.run_id == "r0002"
        assert first.created_unix > 0
        assert first.git_sha  # "unknown" at worst, never empty
        loaded = registry.load()
        assert [record.run_id for record in loaded] == ["r0001", "r0002"]
        assert loaded[0].quality == [_quality(0.95)]

    def test_load_skips_corrupt_lines(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.append(_record(0.95))
        registry.append(_record(0.96))
        with open(registry.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "report", "experiment_id": "SYN", "qual\n')
            handle.write('["not", "an", "object"]\n')
        loaded = registry.load()
        assert len(loaded) == 2
        assert registry.skipped_lines == 2
        # Appending after corruption never reuses or collides ids.
        appended = registry.append(_record(0.97))
        assert appended.run_id == "r0005"

    def test_missing_registry_loads_empty(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "nowhere"))
        assert registry.load() == []
        assert registry.get("r0001") is None

    def test_record_round_trips(self):
        record = RunRecord(
            kind="trace",
            experiment_id="FIG4A",
            run_id="r0007",
            git_sha="abc123",
            created_unix=1700000000.0,
            config={"output": "x.jsonl"},
            stages=[{"name": "fusion", "wall_s": 0.5, "cpu_s": 0.4}],
            resources={"peak_rss_kb": 1024},
            quality=[_quality(0.9)],
            metrics={"counter.pipeline.stage.runs": 4.0},
        )
        assert RunRecord.from_dict(record.to_dict()).to_dict() == record.to_dict()

    def test_tracked_metrics_namespaces_quality(self):
        record = _record(0.9)
        record.metrics = {"ingest.ops_per_s": 5000.0}
        tracked = record.tracked_metrics()
        assert tracked["quality.kg.accuracy"] == 0.9
        assert tracked["quality.kg.n_triples"] == 1000.0
        assert tracked["ingest.ops_per_s"] == 5000.0


class TestDiff:
    def test_diff_flags_quality_regressions(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.append(_record(0.95))
        registry.append(_record(0.70, n_triples=500))
        diffs = registry.diff("r0001", "r0002")
        assert len(diffs) == 1
        regressed = {delta.metric for delta in diffs[0].regressions}
        assert "accuracy" in regressed
        assert "n_triples" in regressed

    def test_diff_unknown_run_raises_keyerror(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        registry.append(_record(0.95))
        with pytest.raises(KeyError, match="r9999"):
            registry.diff("r0001", "r9999")


class TestModifiedZScore:
    def test_matches_iglewicz_hoaglin(self):
        score = modified_z_score(10.0, [1.0, 2.0, 3.0, 4.0, 5.0])
        assert score["median"] == 3.0
        assert score["mad"] == 1.0
        assert score["z"] == pytest.approx(0.6745 * 7.0)

    def test_zero_mad_stable_history(self):
        assert modified_z_score(5.0, [5.0, 5.0, 5.0])["z"] == 0.0
        assert modified_z_score(6.0, [5.0, 5.0, 5.0])["z"] == pytest.approx(1e9)
        assert modified_z_score(4.0, [5.0, 5.0, 5.0])["z"] == pytest.approx(-1e9)


class TestDrift:
    def _seed_history(self, registry, accuracies=STABLE_ACCURACIES):
        for accuracy in accuracies:
            registry.append(_record(accuracy))

    def test_injected_regression_flags_drop(self, tmp_path):
        """The acceptance pin: a >3-MAD drop across a 10-run history alerts."""
        registry = RunRegistry(str(tmp_path / "runs"))
        self._seed_history(registry)
        registry.append(_record(0.80))  # far below the 0.950 +/- 0.002 band
        alerts = registry.drift(experiment_id="SYN")
        by_metric = {alert.metric: alert for alert in alerts}
        alert = by_metric["quality.kg.accuracy"]
        assert alert.direction == "drop"
        assert abs(alert.z_score) > DEFAULT_DRIFT_THRESHOLD
        assert alert.run_id == "r0011"
        # The constant metric does not cry wolf.
        assert "quality.kg.n_triples" not in by_metric
        assert "drop" in alert.describe()

    def test_stable_latest_run_is_quiet(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        self._seed_history(registry)
        registry.append(_record(0.950))
        assert registry.drift(experiment_id="SYN") == []

    def test_young_history_never_alerts(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        for accuracy in STABLE_ACCURACIES[:MIN_DRIFT_HISTORY]:
            registry.append(_record(accuracy))
        registry.append(_record(0.10))
        # MIN_DRIFT_HISTORY prior runs exist, which is exactly enough...
        assert registry.drift(experiment_id="SYN") != []
        fresh = RunRegistry(str(tmp_path / "young"))
        fresh.append(_record(0.95))
        fresh.append(_record(0.10))
        # ...but fewer stays silent.
        assert fresh.drift(experiment_id="SYN") == []

    def test_rise_direction_reported(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        self._seed_history(registry)
        registry.append(_record(0.999))
        (alert,) = registry.drift(experiment_id="SYN")
        assert alert.direction == "rise"

    def test_experiments_scored_independently(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        self._seed_history(registry)
        for accuracy in (0.5, 0.5, 0.5, 0.5):
            registry.append(_record(accuracy, experiment_id="OTHER"))
        registry.append(_record(0.80))
        alerts = registry.drift()
        assert {alert.experiment_id for alert in alerts} == {"SYN"}

    def test_window_bounds_the_history(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        # Ancient bad era, then a recovered plateau the window should see.
        self._seed_history(registry, [0.5] * 6 + [0.950, 0.951, 0.949, 0.950])
        registry.append(_record(0.948))
        assert registry.drift(experiment_id="SYN", window=4) == []

    def test_alert_serializes(self):
        alert = DriftAlert(
            experiment_id="SYN",
            run_id="r0011",
            metric="quality.kg.accuracy",
            value=0.8,
            median=0.95,
            mad=0.001,
            z_score=-101.2,
            direction="drop",
        )
        assert json.loads(json.dumps(alert.to_dict()))["direction"] == "drop"


class TestHelpers:
    def test_default_runs_dir(self):
        assert default_runs_dir(os.path.join("x", "results")) == os.path.join(
            "x", "results", "runs"
        )

    def test_stages_from_spans_picks_stage_spans(self):
        spans = [
            {"name": "pipeline.p", "wall_seconds": 1.0, "cpu_seconds": 0.9},
            {"name": "stage.fusion", "wall_seconds": 0.5, "cpu_seconds": 0.4},
            {"name": "stage.cleaning", "wall_seconds": 0.25, "cpu_seconds": 0.2},
            {"name": "pmap.worker", "wall_seconds": 0.1, "cpu_seconds": 0.1},
        ]
        rows = stages_from_spans(spans)
        assert [row["name"] for row in rows] == ["fusion", "cleaning"]
        assert rows[0]["wall_s"] == 0.5
        assert rows[1]["cpu_s"] == 0.2
