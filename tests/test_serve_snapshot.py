"""Snapshot publishing: atomic swap, versioning, construction isolation."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.serve.snapshot import SnapshotStore


def small_graph(n=12):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="t")
    for index in range(n):
        graph.add_entity(f"e{index}", f"Entity {index}", "Thing")
    for index in range(n):
        graph.add(f"e{index}", "related_to", f"e{(index + 1) % n}")
        graph.add(f"e{index}", "label", f"value-{index}")
    return graph


class TestSnapshotStore:
    def test_empty_store_has_no_snapshot(self):
        store = SnapshotStore()
        assert store.current() is None
        assert store.current_version() == 0

    def test_publish_installs_versioned_snapshot(self):
        store = SnapshotStore()
        graph = small_graph()
        snapshot = store.publish(graph)
        assert snapshot.version == 1
        assert store.current() is snapshot
        assert snapshot.source_generation == graph.generation
        assert len(snapshot.graph) == len(graph)

    def test_versions_are_monotonic(self):
        store = SnapshotStore()
        graph = small_graph()
        versions = [store.publish(graph).version for _ in range(4)]
        assert versions == [1, 2, 3, 4]
        assert store.current_version() == 4

    def test_publish_copies_construction_mutations_never_leak(self):
        """Post-publish merge_entities must not appear in the served graph."""
        store = SnapshotStore()
        graph = small_graph()
        snapshot = store.publish(graph)

        graph.merge_entities("e0", "e1")
        graph.add("e0", "label", "added-after-publish")

        served = snapshot.graph
        assert served.has_entity("e1")
        assert "added-after-publish" not in served.objects("e0", "label")
        # And the planner (what the router actually queries) agrees.
        assert snapshot.planner.has_entity("e1")

    def test_merge_during_construction_before_publish_is_served(self):
        store = SnapshotStore()
        graph = small_graph()
        graph.merge_entities("e0", "e1")
        snapshot = store.publish(graph)
        assert not snapshot.graph.has_entity("e1")

    def test_in_flight_reference_survives_republish(self):
        """A request holding the old snapshot finishes against it unchanged."""
        store = SnapshotStore()
        graph = small_graph()
        old = store.publish(graph)
        old_values = old.planner.objects("e3", "label")

        graph.merge_entities("e2", "e3")
        new = store.publish(graph)

        assert store.current() is new
        # The retired snapshot still answers exactly as before the swap.
        assert old.planner.objects("e3", "label") == old_values
        assert old.planner.has_entity("e3")
        assert not new.planner.has_entity("e3")

    def test_history_is_bounded(self):
        store = SnapshotStore(keep_history=2)
        graph = small_graph(4)
        for _ in range(5):
            store.publish(graph)
        history = store.history()
        assert [snapshot.version for snapshot in history] == [3, 4]

    def test_sharded_publish(self):
        store = SnapshotStore(n_shards=3)
        snapshot = store.publish(small_graph())
        assert snapshot.n_shards == 3
        sizes = snapshot.planner.shard_sizes()
        assert sum(sizes.values()) == len(snapshot.graph)

    def test_describe_is_json_shaped(self):
        import json

        store = SnapshotStore(n_shards=2)
        snapshot = store.publish(small_graph())
        description = snapshot.describe()
        json.dumps(description)
        assert description["version"] == 1
        assert description["n_shards"] == 2
        assert description["n_triples"] == len(snapshot.graph)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            SnapshotStore(n_shards=0)
