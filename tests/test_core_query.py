"""Tests for the pattern/path query engine."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.query import (
    PathQuery,
    TriplePattern,
    conjunctive_query,
    is_variable,
    match_pattern,
)


@pytest.fixture
def graph():
    ontology = Ontology()
    ontology.add_class("Person")
    ontology.add_class("Movie")
    graph = KnowledgeGraph(ontology=ontology)
    for movie in ("m1", "m2"):
        graph.add_entity(movie, movie.upper(), "Movie")
    for person in ("p1", "p2", "p3"):
        graph.add_entity(person, person.upper(), "Person")
    graph.add("m1", "directed_by", "p1")
    graph.add("m1", "stars", "p2")
    graph.add("m2", "directed_by", "p1")
    graph.add("m2", "stars", "p2")
    graph.add("m2", "stars", "p3")
    graph.add("m1", "release_year", 1999)
    return graph


class TestPatterns:
    def test_is_variable(self):
        assert is_variable("?x")
        assert not is_variable("x")
        assert not is_variable(1999)

    def test_match_single_variable(self, graph):
        bindings = list(match_pattern(graph, TriplePattern("m1", "directed_by", "?d")))
        assert bindings == [{"?d": "p1"}]

    def test_match_two_variables(self, graph):
        bindings = list(match_pattern(graph, TriplePattern("?m", "directed_by", "?d")))
        assert {frozenset(binding.items()) for binding in bindings} == {
            frozenset({("?m", "m1"), ("?d", "p1")}),
            frozenset({("?m", "m2"), ("?d", "p1")}),
        }

    def test_conjunctive_join(self, graph):
        # Movies directed by p1 that star p3.
        solutions = conjunctive_query(
            graph,
            [
                TriplePattern("?m", "directed_by", "p1"),
                TriplePattern("?m", "stars", "p3"),
            ],
        )
        assert [solution["?m"] for solution in solutions] == ["m2"]

    def test_join_respects_bindings(self, graph):
        # Co-star pattern: people starring in the same movie.
        solutions = conjunctive_query(
            graph,
            [
                TriplePattern("?m", "stars", "?a"),
                TriplePattern("?m", "stars", "?b"),
            ],
        )
        pairs = {(s["?a"], s["?b"]) for s in solutions if s["?a"] != s["?b"]}
        assert ("p2", "p3") in pairs

    def test_empty_result(self, graph):
        solutions = conjunctive_query(
            graph, [TriplePattern("?m", "directed_by", "p3")]
        )
        assert solutions == []


class TestPathQuery:
    def test_direct_path(self, graph):
        paths = PathQuery(graph, max_length=1).paths("m1", "p1")
        assert paths == [[("directed_by", 1, "p1")]]

    def test_two_hop_path(self, graph):
        paths = PathQuery(graph, max_length=2).paths("p1", "p2")
        signatures = PathQuery(graph, max_length=2).relation_paths("p1", "p2")
        assert paths  # p1 -(directed_by^-1)-> m -(stars)-> p2
        assert (("directed_by", -1), ("stars", 1)) in signatures

    def test_max_length_respected(self, graph):
        assert PathQuery(graph, max_length=1).paths("p1", "p2") == []

    def test_unknown_entity(self, graph):
        assert PathQuery(graph).paths("nope", "p1") == []

    def test_reachable_distances(self, graph):
        distances = PathQuery(graph).reachable("m1", max_hops=2)
        assert distances["p1"] == 1
        assert distances["m2"] == 2
        assert "m1" not in distances

    def test_max_paths_cap(self, graph):
        paths = PathQuery(graph, max_length=3).paths("m1", "m2", max_paths=1)
        assert len(paths) == 1
