"""Tests for catalog value imputation."""

import pytest

from repro.products.imputation import ValueImputer


@pytest.fixture(scope="module")
def imputer(product_domain):
    return ValueImputer(min_confidence=0.5).fit(product_domain)


class TestValueImputer:
    def test_imputes_only_missing(self, imputer, product_domain):
        product = next(
            p for p in product_domain.products if p.catalog_values
        )
        attributes = list(product.true_values)
        for imputation in imputer.impute_all(product, attributes):
            assert imputation.attribute not in product.catalog_values

    def test_confidence_bounds(self, imputer, product_domain):
        for product in product_domain.products[:30]:
            for imputation in imputer.impute_all(product, list(product.true_values)):
                assert 0.0 < imputation.confidence <= 1.0

    def test_unknown_type_attribute_abstains(self, imputer, product_domain):
        product = product_domain.products[0]
        assert imputer.impute(product, "warp_speed") is None

    def test_high_bar_abstains_more(self, product_domain):
        lenient = ValueImputer(min_confidence=0.0).fit(product_domain)
        strict = ValueImputer(min_confidence=0.95).fit(product_domain)
        lenient_stats = lenient.evaluate(product_domain)
        strict_stats = strict.evaluate(product_domain)
        assert strict_stats["coverage"] <= lenient_stats["coverage"]

    def test_confident_imputations_beat_prior_guessing(self, imputer, product_domain):
        """Imputation accuracy must beat the marginal-prior baseline."""
        stats = imputer.evaluate(product_domain)
        assert stats["n_imputed"] > 10
        # Baseline: always predict the per-(type, attribute) mode.
        from collections import Counter, defaultdict

        modes = defaultdict(Counter)
        for product in product_domain.products:
            for attribute, value in product.catalog_values.items():
                modes[(product.product_type, attribute)][value.lower()] += 1
        correct = possible = 0
        for product in product_domain.products:
            for attribute, truth in product.true_values.items():
                if attribute in product.catalog_values:
                    continue
                counter = modes.get((product.product_type, attribute))
                if not counter:
                    continue
                possible += 1
                if counter.most_common(1)[0][0] == truth.lower():
                    correct += 1
        baseline = correct / possible if possible else 0.0
        assert stats["accuracy"] >= baseline - 0.05

    def test_conditional_evidence_used(self, product_domain):
        """Decaf evidence must steer flavor away from mocha (the generator's
        contradiction)."""
        imputer = ValueImputer(min_confidence=0.0).fit(product_domain)
        decaf_coffee = [
            p
            for p in product_domain.products
            if p.product_type == "Coffee"
            and p.catalog_values.get("caffeine") == "decaf"
            and "flavor" not in p.catalog_values
        ]
        for product in decaf_coffee:
            result = imputer.impute(product, "flavor")
            if result is not None:
                assert result.value != "mocha"
