"""Tests for the AutoKnow-style end-to-end pipeline."""

import pytest

from repro.products.autoknow import AutoKnow


@pytest.fixture(scope="module")
def run(product_domain, behavior_log):
    autoknow = AutoKnow(n_epochs=4, seed=5)
    report = autoknow.run(product_domain, behavior=behavior_log)
    return autoknow, report


class TestAutoKnow:
    def test_grows_catalog_knowledge(self, run):
        _autoknow, report = run
        assert report.n_final_triples > report.n_catalog_triples
        assert report.growth_factor > 1.1

    def test_covers_most_types(self, run, product_domain):
        _autoknow, report = run
        assert report.n_types_covered >= len(product_domain.types()) - 3

    def test_taxonomy_extended(self, run):
        _autoknow, report = run
        assert report.n_taxonomy_edges_added >= 0  # mined edges may already exist

    def test_cleaning_improves_precision(self, run):
        """What survives cleaning must be at least as accurate as the raw
        extraction stream."""
        _autoknow, report = run
        assert report.final_accuracy >= report.extraction_accuracy - 0.02

    def test_added_knowledge_production_quality(self, run):
        _autoknow, report = run
        assert report.final_accuracy > 0.8

    def test_kg_populated(self, run, product_domain):
        autoknow, _report = run
        stats = autoknow.kg_.stats()
        assert stats["n_topics"] == len(product_domain.products)
        assert stats["n_value_triples"] > 0

    def test_catalog_accuracy_tracked(self, run):
        _autoknow, report = run
        assert 0.7 < report.catalog_accuracy <= 1.0
