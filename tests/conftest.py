"""Shared fixtures: small deterministic worlds reused across test modules.

Session scope keeps test time reasonable — generation is deterministic and
tests must not mutate these fixtures (tests needing mutation build their
own copies).
"""

from __future__ import annotations

import pytest

from repro.datagen.behavior import generate_behavior
from repro.datagen.products import ProductDomainConfig, build_product_domain
from repro.datagen.sources import default_source_pair
from repro.datagen.world import World, WorldConfig, build_world


@pytest.fixture(scope="session")
def small_world() -> World:
    """A compact world: enough entities for statistics, fast to build."""
    return build_world(WorldConfig(n_people=120, n_movies=80, n_songs=40, seed=7))


@pytest.fixture(scope="session")
def source_pair(small_world):
    """The Freebase-like / IMDb-like source pair over the small world."""
    return default_source_pair(small_world, seed=11)


@pytest.fixture(scope="session")
def product_domain():
    """A compact product domain shared by extraction tests."""
    return build_product_domain(ProductDomainConfig(n_products=180, seed=13))


@pytest.fixture(scope="session")
def behavior_log(product_domain):
    """Behavior log over the shared product domain."""
    return generate_behavior(
        product_domain,
        n_search_sessions=900,
        n_coview_sessions=300,
        n_copurchase_sessions=250,
        seed=17,
    )
