"""Tests for taxonomy mining and substitute/complement mining."""

import pytest

from repro.core.ontology import Ontology
from repro.datagen.products import COMPLEMENT_TYPES
from repro.products.relationships import RelationshipMiner
from repro.products.taxonomy_mining import HypernymMiner, MinedHypernym, enrich_taxonomy


class TestHypernymMiner:
    @pytest.fixture(scope="class")
    def mined(self, product_domain, behavior_log):
        return HypernymMiner().mine(product_domain, behavior_log)

    def test_finds_true_subtype_edges(self, product_domain, mined):
        truth = {
            (p.leaf_type.lower(), p.product_type.lower()) for p in product_domain.products
        }
        predicted = {(edge.child.lower(), edge.parent.lower()) for edge in mined}
        assert predicted & truth  # recovers real taxonomy edges

    def test_precision_reasonable(self, product_domain, mined):
        quality = HypernymMiner().evaluate(product_domain, mined)
        assert quality["precision"] > 0.6

    def test_direction_correct(self, mined):
        """'green tea' under 'tea', never the reverse."""
        pairs = {(edge.child.lower(), edge.parent.lower()) for edge in mined}
        for child, parent in pairs:
            assert (parent, child) not in pairs

    def test_scores_ordered(self, mined):
        scores = [edge.score for edge in mined]
        assert scores == sorted(scores, reverse=True)

    def test_evaluate_empty(self, product_domain):
        quality = HypernymMiner().evaluate(product_domain, [])
        assert quality["recall"] == 0.0


class TestEnrichTaxonomy:
    def test_adds_new_leaf_under_parent(self):
        taxonomy = Ontology()
        taxonomy.add_class("Tea")
        mined = [MinedHypernym(child="Oolong Tea", parent="Tea", coverage=0.5, loyalty=0.9)]
        applied = enrich_taxonomy(taxonomy, mined)
        assert applied == 1
        assert taxonomy.parent("Oolong Tea") == "Tea"

    def test_reparents_only_roots(self):
        taxonomy = Ontology()
        taxonomy.add_class("Grocery")
        taxonomy.add_class("Tea", parent="Grocery")
        taxonomy.add_class("Green Tea", parent="Tea")
        mined = [MinedHypernym(child="Green Tea", parent="Grocery", coverage=0.9, loyalty=0.9)]
        applied = enrich_taxonomy(taxonomy, mined)
        assert applied == 0  # curated structure wins
        assert taxonomy.parent("Green Tea") == "Tea"

    def test_case_insensitive_resolution(self):
        taxonomy = Ontology()
        taxonomy.add_class("Tea")
        mined = [MinedHypernym(child="herbal tea", parent="tea", coverage=0.5, loyalty=0.9)]
        assert enrich_taxonomy(taxonomy, mined) == 1

    def test_min_score_gate(self):
        taxonomy = Ontology()
        taxonomy.add_class("Tea")
        mined = [MinedHypernym(child="Oolong", parent="Tea", coverage=0.01, loyalty=0.9)]
        assert enrich_taxonomy(taxonomy, mined, min_score=0.5) == 0


class TestRelationshipMiner:
    @pytest.fixture(scope="class")
    def mined(self, product_domain, behavior_log):
        return RelationshipMiner().mine(product_domain, behavior_log)

    def test_finds_complements(self, mined, product_domain):
        quality = RelationshipMiner().evaluate_complements(mined, COMPLEMENT_TYPES)
        assert quality["recall"] > 0.5
        assert quality["precision"] > 0.6

    def test_substitutes_within_type(self, mined):
        substitutes = [r for r in mined if r.relation == "substitute"]
        assert substitutes
        assert all(r.left_type == r.right_type for r in substitutes)

    def test_complements_cross_type(self, mined):
        complements = [r for r in mined if r.relation == "complement"]
        assert complements
        assert all(r.left_type != r.right_type for r in complements)

    def test_min_support_gate(self, product_domain, behavior_log):
        strict = RelationshipMiner(min_support=10_000).mine(product_domain, behavior_log)
        assert strict == []
