"""Tests for the active-learning loop."""

import numpy as np
import pytest

from repro.ml.active import (
    ActiveLearner,
    margin_sampling,
    random_sampling,
    uncertainty_sampling,
)
from repro.ml.logistic import LogisticRegression


def _pool(seed=0, n=300):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 2))
    labels = (features[:, 0] - features[:, 1] > 0).astype(int)
    return features, labels


class TestStrategies:
    def test_uncertainty_prefers_middle_scores(self):
        rng = np.random.default_rng(0)
        scores = np.array([0.05, 0.5, 0.95])
        indices = np.array([10, 20, 30])
        ranked = uncertainty_sampling(scores, indices, rng)
        assert ranked[0] == 20

    def test_margin_matches_uncertainty_order_binary(self):
        rng = np.random.default_rng(0)
        scores = np.array([0.1, 0.45, 0.8])
        indices = np.array([0, 1, 2])
        assert margin_sampling(scores, indices, np.random.default_rng(0))[0] == 1

    def test_random_is_permutation(self):
        rng = np.random.default_rng(0)
        indices = np.arange(10)
        ranked = random_sampling(np.zeros(10), indices, rng)
        assert sorted(ranked.tolist()) == list(range(10))


class TestActiveLearner:
    def test_consumes_exactly_budget(self):
        features, labels = _pool()
        learner = ActiveLearner(
            model_factory=lambda: LogisticRegression(n_iterations=50),
            batch_size=10,
            seed=1,
        )
        calls = []

        def oracle(index):
            calls.append(index)
            return int(labels[index])

        learner.run(features, oracle, label_budget=50)
        assert len(set(calls)) == 50

    def test_budget_capped_by_pool(self):
        features, labels = _pool(n=30)
        learner = ActiveLearner(
            model_factory=lambda: LogisticRegression(n_iterations=30),
            batch_size=10,
            seed=1,
        )
        learner.run(features, lambda i: int(labels[i]), label_budget=500)
        assert len(learner.labeled_indices_) == 30

    def test_active_beats_random_at_small_budget(self):
        features, labels = _pool(seed=3, n=500)

        def run(strategy, seed):
            learner = ActiveLearner(
                model_factory=lambda: LogisticRegression(n_iterations=80),
                strategy=strategy,
                batch_size=10,
                seed=seed,
            )
            model = learner.run(features, lambda i: int(labels[i]), label_budget=40)
            return float(np.mean(model.predict(features) == labels))

        active = np.mean([run(uncertainty_sampling, seed) for seed in range(3)])
        passive = np.mean([run(random_sampling, seed) for seed in range(3)])
        assert active >= passive - 0.02  # active never materially worse

    def test_single_class_seed_degenerates_gracefully(self):
        features = np.random.default_rng(0).normal(size=(40, 2))
        learner = ActiveLearner(
            model_factory=lambda: LogisticRegression(n_iterations=20),
            batch_size=5,
            seed=0,
        )
        model = learner.run(features, lambda i: 1, label_budget=10)
        assert np.all(model.predict(features) == 1)
