"""pmap: ordering, chunking, mode selection, and graceful degradation."""

import pytest

from repro.core import parallel
from repro.core.parallel import (
    MODE_ENV_VAR,
    WORKERS_ENV_VAR,
    PmapWorkerError,
    default_mode,
    default_workers,
    pmap,
    resolve_mode,
)
from repro.obs import enabled_scope, get_registry


def _square(x):
    return x * x


def _pair_sum(pair):
    left, right = pair
    return left + right


def _explode_on_seven(x):
    if x == 7:
        raise ValueError(f"cannot handle {x}")
    return x * x


class _UnpicklableError(Exception):
    def __init__(self):
        super().__init__("unpicklable")
        self.handle = lambda: None  # lambdas do not pickle


def _raise_unpicklable(x):
    if x == 3:
        raise _UnpicklableError()
    return x


class TestModes:
    def test_serial_matches_comprehension(self):
        items = list(range(37))
        assert pmap(_square, items, mode="serial") == [x * x for x in items]

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_all_modes_agree(self, mode):
        items = list(range(53))
        assert pmap(_square, items, mode=mode) == [x * x for x in items]

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown pmap mode"):
            pmap(_square, [1, 2], mode="gpu")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV_VAR, "thread")
        assert default_mode() == "thread"
        monkeypatch.setenv(MODE_ENV_VAR, "not-a-mode")
        assert default_mode() == "serial"
        monkeypatch.delenv(MODE_ENV_VAR)
        assert default_mode() == "serial"

    def test_env_default_is_used_by_pmap(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV_VAR, "thread")
        assert pmap(_square, range(10)) == [x * x for x in range(10)]

    def test_valid_env_overrides_explicit_mode(self, monkeypatch):
        """The operator knob wins even over a hard-coded call-site mode."""
        monkeypatch.setenv(MODE_ENV_VAR, "serial")
        assert resolve_mode("process") == "serial"
        assert resolve_mode("thread") == "serial"

    def test_invalid_env_falls_back_to_explicit_mode(self, monkeypatch):
        monkeypatch.setenv(MODE_ENV_VAR, "not-a-mode")
        assert resolve_mode("thread") == "thread"

    def test_explicit_invalid_mode_raises_even_with_env(self, monkeypatch):
        # A typo at a call site is a bug regardless of the environment.
        monkeypatch.setenv(MODE_ENV_VAR, "serial")
        with pytest.raises(ValueError, match="unknown pmap mode"):
            resolve_mode("gpu")

    def test_workers_env_overrides_cpu_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "6")
        assert default_workers() == 6
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert 1 <= default_workers() <= 8

    @pytest.mark.parametrize("raw", ["0", "-3", "banana", "4.5", "2x"])
    def test_workers_env_invalid_values_raise_actionable_error(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        with pytest.raises(ValueError) as excinfo:
            default_workers()
        message = str(excinfo.value)
        assert WORKERS_ENV_VAR in message
        assert raw in message
        assert "unset" in message  # tells the operator how to fix it


class TestOrderingAndChunking:
    def test_order_preserved_with_tiny_chunks(self):
        items = list(range(101))
        result = pmap(_square, items, mode="thread", max_workers=4, chunk_size=3)
        assert result == [x * x for x in items]

    def test_chunked_partitions_exactly(self):
        items = list(range(10))
        chunks = parallel._chunked(items, 3)
        assert [list(chunk) for chunk in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_tuple_items(self):
        pairs = [(i, i + 1) for i in range(20)]
        assert pmap(_pair_sum, pairs, mode="process") == [2 * i + 1 for i in range(20)]

    def test_generator_input(self):
        assert pmap(_square, (x for x in range(12)), mode="thread") == [
            x * x for x in range(12)
        ]

    def test_empty_and_singleton(self):
        assert pmap(_square, [], mode="process") == []
        assert pmap(_square, [7], mode="process") == [49]


class TestDegradation:
    def test_unpicklable_fn_degrades_to_serial(self):
        captured = []

        def closure(x):  # closures cannot cross a process boundary
            captured.append(x)
            return x + 1

        assert pmap(closure, [1, 2, 3], mode="process") == [2, 3, 4]
        assert captured == [1, 2, 3]  # really ran in this process

    def test_max_workers_one_is_serial(self):
        assert pmap(_square, range(9), mode="process", max_workers=1) == [
            x * x for x in range(9)
        ]

    def test_degradation_emits_counter(self):
        """Silent serial fallback must be visible in any metrics snapshot."""
        with enabled_scope():
            pmap(lambda x: x + 1, [1, 2, 3], mode="process", max_workers=2)
            counters = get_registry().snapshot()["counters"]
        assert counters.get("pmap.degraded") == 1.0

    def test_clean_process_run_emits_no_degraded_counter(self):
        with enabled_scope():
            pmap(_square, range(8), mode="process", max_workers=2, chunk_size=2)
            counters = get_registry().snapshot()["counters"]
        assert "pmap.degraded" not in counters


class TestWorkerExceptions:
    """Worker failures re-raise the original exception, traceback chained."""

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_original_exception_type_survives(self, mode):
        # max_workers forces the pool path even on single-CPU machines,
        # where pmap would otherwise degrade to serial.
        with pytest.raises(ValueError, match="cannot handle 7") as exc_info:
            pmap(_explode_on_seven, range(20), mode=mode, max_workers=2, chunk_size=2)
        # The worker's own stack rides along as the chained cause.
        cause = exc_info.value.__cause__
        assert isinstance(cause, PmapWorkerError)
        assert "_explode_on_seven" in str(cause)
        assert "cannot handle 7" in str(cause)

    def test_serial_raises_directly(self):
        with pytest.raises(ValueError, match="cannot handle 7"):
            pmap(_explode_on_seven, range(20), mode="serial")

    def test_first_failure_in_input_order_wins(self):
        def fail_on_even(x):
            if x % 2 == 0:
                raise ValueError(f"even {x}")
            return x

        with pytest.raises(ValueError, match="even 0"):
            pmap(fail_on_even, range(10), mode="thread", max_workers=4, chunk_size=1)

    def test_unpicklable_exception_degrades_to_worker_error(self):
        """Process mode: an exception that cannot pickle still surfaces."""
        with pytest.raises((PmapWorkerError, _UnpicklableError)) as exc_info:
            pmap(_raise_unpicklable, range(8), mode="process", max_workers=2, chunk_size=1)
        assert "unpicklable" in str(exc_info.value)
