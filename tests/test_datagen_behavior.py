"""Tests for the behavior-log generator."""

import pytest

from repro.datagen.behavior import generate_behavior
from repro.datagen.products import COMPLEMENT_TYPES


class TestBehaviorLog:
    def test_sizes(self, behavior_log):
        assert len(behavior_log.search_purchases) == 900
        assert len(behavior_log.co_views) > 0
        assert len(behavior_log.co_purchases) > 0

    def test_queries_are_type_names(self, product_domain, behavior_log):
        known = {t.lower() for t in product_domain.types()}
        known.update(p.leaf_type.lower() for p in product_domain.products)
        for query in behavior_log.queries():
            assert query in known

    def test_leaf_query_loyalty(self, product_domain, behavior_log):
        """Purchases after a leaf query stay mostly inside the leaf."""
        leaf_of = {p.product_id: p.leaf_type.lower() for p in product_domain.products}
        leaf_queries = {p.leaf_type.lower() for p in product_domain.products}
        loyal = total = 0
        for query, product_id in behavior_log.search_purchases:
            if query in leaf_queries:
                total += 1
                if leaf_of.get(product_id) == query:
                    loyal += 1
        assert total > 0
        assert loyal / total > 0.8

    def test_broad_query_spreads_over_leaves(self, product_domain, behavior_log):
        leaf_of = {p.product_id: p.leaf_type for p in product_domain.products}
        purchases = behavior_log.purchases_for_query("coffee")
        if len(purchases) >= 10:
            leaves = {leaf_of[product_id] for product_id in purchases}
            assert len(leaves) >= 2

    def test_coviews_mostly_within_type(self, product_domain, behavior_log):
        type_of = {p.product_id: p.product_type for p in product_domain.products}
        same = sum(
            1 for left, right in behavior_log.co_views if type_of[left] == type_of[right]
        )
        assert same / len(behavior_log.co_views) > 0.85

    def test_copurchases_mostly_cross_type(self, product_domain, behavior_log):
        type_of = {p.product_id: p.product_type for p in product_domain.products}
        complement_set = {frozenset(pair) for pair in COMPLEMENT_TYPES}
        matching = sum(
            1
            for left, right in behavior_log.co_purchases
            if frozenset((type_of[left], type_of[right])) in complement_set
        )
        assert matching / len(behavior_log.co_purchases) > 0.7

    def test_no_self_pairs(self, behavior_log):
        assert all(left != right for left, right in behavior_log.co_views)
        assert all(left != right for left, right in behavior_log.co_purchases)

    def test_deterministic(self, product_domain):
        first = generate_behavior(product_domain, n_search_sessions=50, seed=3)
        second = generate_behavior(product_domain, n_search_sessions=50, seed=3)
        assert first.search_purchases == second.search_purchases
