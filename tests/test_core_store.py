"""Unit tests for the columnar triple store and its term dictionary."""

import pytest

from repro.core.store import (
    AUTO_COMPACT_MIN,
    BulkLoader,
    ColumnarTripleStore,
    TermDict,
)


class TestTermDict:
    def test_dense_first_seen_ids(self):
        terms = TermDict()
        assert terms.add("a") == 0
        assert terms.add("b") == 1
        assert terms.add("a") == 0
        assert len(terms) == 2
        assert terms.decode(1) == "b"

    def test_equality_conflation_matches_set_semantics(self):
        # 1 == True == 1.0 in Python; a set holds one of them, so the
        # dictionary must too — with the first-seen representative winning.
        terms = TermDict()
        first = terms.add(1)
        assert terms.add(True) == first
        assert terms.add(1.0) == first
        assert terms.decode(first) == 1
        assert type(terms.decode(first)) is int

    def test_get_returns_none_for_unknown(self):
        terms = TermDict()
        terms.add("known")
        assert terms.get("known") == 0
        assert terms.get("unknown") is None
        assert "known" in terms
        assert "unknown" not in terms

    def test_terms_returns_id_order_copy(self):
        terms = TermDict()
        for value in ("x", 7, 2.5, False):
            terms.add(value)
        listed = terms.terms()
        assert listed == ["x", 7, 2.5, False]
        listed.append("mutated")
        assert len(terms) == 4

    def test_clone_is_independent(self):
        terms = TermDict()
        terms.add("a")
        clone = terms.clone()
        clone.add("b")
        assert len(terms) == 1
        assert len(clone) == 2

    def test_from_terms_round_trip(self):
        original = TermDict()
        for value in ("s", "p", 42, 3.5, True, "o"):
            original.add(value)
        rebuilt = TermDict._from_terms(original.terms())
        assert rebuilt.terms() == original.terms()
        assert rebuilt.get("p") == original.get("p")
        assert rebuilt.get(42) == original.get(42)

    def test_from_terms_rejects_exact_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            TermDict._from_terms(["a", "b", "a"])

    def test_from_terms_keeps_typed_equality_duplicates(self):
        # A dict-backend snapshot stores one id per *typed* term, so 1 and
        # True may legitimately sit side by side.  Lookups conflate to the
        # first occurrence (matching runtime add semantics); decode stays
        # exact per id so loads reproduce the saved object types.
        terms = TermDict._from_terms([1, True, 0.0, 0])
        assert terms.decode(0) == 1 and type(terms.decode(0)) is int
        assert terms.decode(1) is True
        assert terms.decode(2) == 0.0 and type(terms.decode(2)) is float
        assert terms.decode(3) == 0 and type(terms.decode(3)) is int
        assert terms.get(1) == 0
        assert terms.get(True) == 0
        assert terms.get(0.0) == 2
        assert terms.get(0) == 2

    def test_memory_bytes_positive_and_grows(self):
        terms = TermDict()
        empty = terms.memory_bytes()
        for index in range(100):
            terms.add(f"term-{index}")
        assert terms.memory_bytes() > empty


def _store_with(rows):
    store = ColumnarTripleStore()
    for s, p, o in rows:
        store.add(s, p, o)
    return store


class TestColumnarStoreMutation:
    def test_add_is_idempotent(self):
        store = ColumnarTripleStore()
        assert store.add("s", "p", "o")
        assert not store.add("s", "p", "o")
        assert len(store) == 1
        assert store.contains("s", "p", "o")

    def test_remove_from_delta_and_base(self):
        store = _store_with([("a", "p", "x"), ("a", "p", "y")])
        assert store.remove("a", "p", "x")  # still in the delta
        assert not store.contains("a", "p", "x")
        store.compact()
        assert store.remove("a", "p", "y")  # now a base tombstone
        assert not store.contains("a", "p", "y")
        assert len(store) == 0
        assert not store.remove("a", "p", "y")
        assert not store.remove("never", "seen", "row")

    def test_tombstone_resurrection(self):
        store = _store_with([("a", "p", "x")])
        store.compact()
        assert store.remove("a", "p", "x")
        assert store.add("a", "p", "x")  # clears the tombstone
        assert store.contains("a", "p", "x")
        assert len(store) == 1
        store.compact()
        assert store.contains("a", "p", "x")

    def test_auto_compaction_folds_large_deltas(self):
        store = ColumnarTripleStore()
        for index in range(AUTO_COMPACT_MIN + 10):
            store.add(f"s{index}", "p", index)
        assert store.n_compactions >= 1
        assert store.n_delta_rows < AUTO_COMPACT_MIN
        assert len(store) == AUTO_COMPACT_MIN + 10

    def test_compact_noop_when_clean(self):
        store = _store_with([("a", "p", "x")])
        store.compact()
        before = store.n_compactions
        store.compact()
        assert store.n_compactions == before


class TestColumnarStoreReads:
    def setup_method(self):
        self.store = _store_with(
            [
                ("a", "knows", "b"),
                ("a", "knows", "c"),
                ("a", "label", "Ada"),
                ("b", "knows", "c"),
                ("b", "born", 1815),
            ]
        )

    def test_objects_subjects(self):
        assert self.store.objects("a", "knows") == {"b", "c"}
        assert self.store.subjects("knows", "c") == {"a", "b"}
        assert self.store.objects("ghost", "knows") == set()
        assert self.store.subjects("knows", "ghost") == set()

    def test_rows_merge_base_and_delta(self):
        self.store.compact()
        self.store.add("a", "knows", "d")  # lands in the delta
        assert self.store.spo_row("a") == {
            "knows": {"b", "c", "d"},
            "label": {"Ada"},
        }
        assert self.store.pos_row("knows") == {
            "b": {"a"},
            "c": {"a", "b"},
            "d": {"a"},
        }
        assert self.store.osp_row("c") == {"a": {"knows"}, "b": {"knows"}}

    def test_scans_skip_tombstones(self):
        self.store.compact()
        self.store.remove("a", "knows", "b")
        assert self.store.objects("a", "knows") == {"c"}
        assert self.store.subjects("knows", "b") == set()
        assert self.store.spo_row("a") == {"knows": {"c"}, "label": {"Ada"}}
        assert "a" not in self.store.osp_row("b")

    def test_counts(self):
        store = self.store
        assert store.count_sp("a", "knows") == 2
        assert store.count_s("a") == 3
        assert store.count_po("knows", "c") == 2
        assert store.count_p("knows") == 3
        assert store.count_os("c", "b") == 1
        assert store.count_o(1815) == 1
        assert store.count_sp("ghost", "knows") == 0
        store.compact()
        store.remove("a", "knows", "b")
        assert store.count_sp("a", "knows") == 1
        assert store.count_p("knows") == 2

    def test_iter_triples_covers_base_and_delta(self):
        self.store.compact()
        self.store.add("c", "knows", "a")
        triples = set(self.store.iter_triples())
        assert ("a", "knows", "b") in triples
        assert ("c", "knows", "a") in triples
        assert len(triples) == len(self.store)


class TestColumnarStoreBulkAndSnapshot:
    def test_bulk_loader_matches_per_add(self):
        rows = [("a", "p", "x"), ("b", "p", "y"), ("a", "p", "x"), ("a", "q", 3)]
        slow = _store_with(rows)
        fast = ColumnarTripleStore()
        loader = fast.bulk_loader()
        assert isinstance(loader, BulkLoader)
        flags = [loader.add(*row) for row in rows]
        loader.finish()
        assert flags == [True, True, False, True]
        assert set(fast.iter_triples()) == set(slow.iter_triples())
        assert len(fast) == len(slow) == 3
        assert fast.objects("a", "p") == {"x"}

    def test_bulk_loader_requires_empty_store(self):
        store = _store_with([("a", "p", "x")])
        with pytest.raises(ValueError, match="empty store"):
            store.bulk_loader()

    def test_bulk_loader_finish_is_idempotent(self):
        store = ColumnarTripleStore()
        loader = store.bulk_loader()
        loader.add("a", "p", "x")
        loader.finish()
        loader.finish()
        assert len(store) == 1

    def test_sorted_columns_round_trip(self):
        store = _store_with(
            [("a", "p", "x"), ("b", "p", 2), ("a", "q", 1.5), ("c", "r", True)]
        )
        terms, spo, pos, osp = store.sorted_columns()
        rebuilt = ColumnarTripleStore.from_sorted_columns(terms, spo, pos, osp)
        assert set(rebuilt.iter_triples()) == set(store.iter_triples())
        assert rebuilt.objects("a", "p") == {"x"}
        assert rebuilt.subjects("p", 2) == {"b"}

    def test_from_sorted_columns_rejects_ragged_columns(self):
        store = _store_with([("a", "p", "x"), ("b", "p", "y")])
        terms, spo, pos, osp = store.sorted_columns()
        with pytest.raises(ValueError, match="row count"):
            ColumnarTripleStore.from_sorted_columns(
                terms, (spo[0], spo[1], spo[2][:1]), pos, osp
            )

    def test_from_columns_resorts_rows(self):
        store = _store_with([("b", "p", "y"), ("a", "p", "x")])
        terms, s_col, p_col, o_col = store.columns()
        rebuilt = ColumnarTripleStore.from_columns(
            terms, list(reversed(s_col)), list(reversed(p_col)), list(reversed(o_col))
        )
        assert set(rebuilt.iter_triples()) == set(store.iter_triples())

    def test_clone_is_independent(self):
        store = _store_with([("a", "p", "x")])
        clone = store.clone()
        clone.add("b", "p", "y")
        store.remove("a", "p", "x")
        assert len(store) == 0
        assert len(clone) == 2
        assert clone.contains("a", "p", "x")

    def test_stats_and_memory(self):
        store = _store_with([("a", "p", "x"), ("b", "p", "y")])
        stats = store.stats()
        assert stats["n_terms"] == store.n_terms
        assert stats["n_delta_rows"] == 2
        assert store.memory_bytes() > 0
        store.compact()
        assert store.stats()["n_base_rows"] == 2
        assert store.stats()["n_delta_rows"] == 0
