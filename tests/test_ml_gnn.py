"""Tests for the graph convolutional network."""

import numpy as np
import pytest

from repro.ml.gnn import GraphConvNet, normalized_adjacency


def _two_cluster_graph(seed=0):
    """Two dense clusters with distinguishable features."""
    rng = np.random.default_rng(seed)
    n_per = 12
    features = np.vstack(
        [
            rng.normal(loc=+1.0, scale=0.4, size=(n_per, 4)),
            rng.normal(loc=-1.0, scale=0.4, size=(n_per, 4)),
        ]
    )
    edges = []
    for cluster in range(2):
        base = cluster * n_per
        for i in range(n_per):
            edges.append((base + i, base + (i + 1) % n_per))
    labels = np.array([0] * n_per + [1] * n_per)
    return features, edges, labels


class TestNormalizedAdjacency:
    def test_shape_and_symmetry(self):
        adjacency = normalized_adjacency([(0, 1)], 3)
        assert adjacency.shape == (3, 3)
        assert np.allclose(adjacency, adjacency.T)

    def test_self_loops_present(self):
        adjacency = normalized_adjacency([], 2)
        assert adjacency[0, 0] > 0

    def test_out_of_range_edge(self):
        with pytest.raises(ValueError):
            normalized_adjacency([(0, 5)], 3)


class TestGraphConvNet:
    def test_classifies_clusters(self):
        features, edges, labels = _two_cluster_graph()
        mask = np.zeros(len(labels), dtype=bool)
        mask[::3] = True
        model = GraphConvNet(hidden_dim=8, n_iterations=150, seed=0)
        model.fit(features, edges, labels, mask)
        predictions = model.predict()
        accuracy = float(np.mean(predictions == labels))
        assert accuracy > 0.9

    def test_transfers_to_new_graph(self):
        features, edges, labels = _two_cluster_graph(seed=1)
        mask = np.ones(len(labels), dtype=bool)
        model = GraphConvNet(hidden_dim=8, n_iterations=150, seed=0)
        model.fit(features, edges, labels, mask)
        new_features, new_edges, new_labels = _two_cluster_graph(seed=99)
        predictions = model.predict(new_features, new_edges)
        accuracy = float(np.mean(predictions == new_labels))
        assert accuracy > 0.85

    def test_probabilities_normalized(self):
        features, edges, labels = _two_cluster_graph()
        mask = np.ones(len(labels), dtype=bool)
        model = GraphConvNet(n_iterations=50, seed=0).fit(features, edges, labels, mask)
        probabilities = model.predict_proba()
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_empty_mask_rejected(self):
        features, edges, labels = _two_cluster_graph()
        with pytest.raises(ValueError):
            GraphConvNet().fit(features, edges, labels, np.zeros(len(labels), dtype=bool))

    def test_label_shape_mismatch_rejected(self):
        features, edges, labels = _two_cluster_graph()
        with pytest.raises(ValueError):
            GraphConvNet().fit(features, edges, labels[:-1], np.ones(len(labels), dtype=bool))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GraphConvNet().predict_proba()

    def test_new_graph_requires_edges(self):
        features, edges, labels = _two_cluster_graph()
        mask = np.ones(len(labels), dtype=bool)
        model = GraphConvNet(n_iterations=10, seed=0).fit(features, edges, labels, mask)
        with pytest.raises(ValueError):
            model.predict_proba(features, None)
