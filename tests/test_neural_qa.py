"""Tests for the QA strategies and band evaluation."""

import pytest

from repro.datagen.text import generate_text_corpus
from repro.neural.evaluate import evaluate_by_band, evaluate_qa
from repro.neural.infusion import infuse_head_knowledge
from repro.neural.qa import (
    DualRouterQA,
    KGQA,
    LMQA,
    Question,
    RetrievalAugmentedQA,
    build_question_set,
)
from repro.neural.slm import SimulatedLM


@pytest.fixture(scope="module")
def lm(small_world):
    corpus = generate_text_corpus(small_world, n_sentences=4000, noise_rate=0.15, seed=11)
    return SimulatedLM(seed=12).fit(corpus)


@pytest.fixture(scope="module")
def questions(small_world):
    return build_question_set(small_world, per_band=40, seed=13)


class TestQuestionSet:
    def test_band_balanced(self, questions):
        bands = {band: 0 for band in ("head", "torso", "tail")}
        for question in questions:
            bands[question.band] += 1
        assert all(count > 10 for count in bands.values())

    def test_gold_lowercased(self, questions):
        for question in questions:
            assert all(answer == answer.lower() for answer in question.gold)


class TestStrategies:
    def test_kgqa_on_full_kg_is_near_perfect(self, small_world, questions):
        report = evaluate_qa(KGQA(small_world.truth), questions)
        assert report.accuracy > 0.95

    def test_lmqa_degrades_head_to_tail(self, small_world, lm, questions):
        reports = evaluate_by_band(LMQA(lm), questions)
        assert reports["head"].accuracy > reports["tail"].accuracy

    def test_lmqa_has_both_failure_modes(self, lm, questions):
        report = evaluate_qa(LMQA(lm), questions)
        assert report.n_hallucinated > 0
        assert report.n_missing > 0

    def test_retrieval_augmented_beats_lm(self, small_world, lm, questions):
        lm_report = evaluate_qa(LMQA(lm), questions)
        ra_report = evaluate_qa(RetrievalAugmentedQA(small_world.truth, lm), questions)
        assert ra_report.accuracy > lm_report.accuracy

    def test_dual_router_beats_both_pure_strategies(self, small_world, lm, questions):
        dual = evaluate_qa(DualRouterQA(small_world.truth, lm), questions)
        lm_only = evaluate_qa(LMQA(lm), questions)
        assert dual.accuracy >= lm_only.accuracy

    def test_dual_router_verifies_against_kg(self, small_world, lm):
        """On disagreement, the explicit triple wins."""
        router = DualRouterQA(small_world.truth, lm, familiarity_threshold=0.0)
        questions = build_question_set(small_world, per_band=20, seed=14)
        report = evaluate_qa(router, questions)
        kg_report = evaluate_qa(KGQA(small_world.truth), questions)
        assert report.accuracy >= kg_report.accuracy - 0.05


class TestEvaluation:
    def test_outcomes_partition(self, lm, questions):
        report = evaluate_qa(LMQA(lm), questions)
        assert (
            report.n_correct + report.n_hallucinated + report.n_missing
            == report.n_questions
        )

    def test_rates_sum_to_one(self, lm, questions):
        report = evaluate_qa(LMQA(lm), questions)
        assert report.accuracy + report.hallucination_rate + report.miss_rate == pytest.approx(1.0)

    def test_by_band_includes_all(self, lm, questions):
        reports = evaluate_by_band(LMQA(lm), questions)
        assert set(reports) == {"head", "torso", "tail", "all"}
        assert reports["all"].n_questions == len(questions)


class TestInfusion:
    def test_head_accuracy_improves(self, small_world, questions):
        corpus = generate_text_corpus(small_world, n_sentences=2000, noise_rate=0.15, seed=21)
        model = SimulatedLM(seed=22).fit(corpus)
        before = evaluate_by_band(LMQA(model), questions)["head"].accuracy
        n_infused = infuse_head_knowledge(model, small_world, repetitions=6, seed=23)
        after = evaluate_by_band(LMQA(model), questions)["head"].accuracy
        assert n_infused > 0
        assert after > before

    def test_tail_unaffected_by_head_infusion(self, small_world):
        corpus = generate_text_corpus(small_world, n_sentences=2000, noise_rate=0.15, seed=24)
        model = SimulatedLM(seed=25).fit(corpus)
        questions = build_question_set(small_world, per_band=30, seed=26)
        tail_before = [q for q in questions if q.band == "tail"]
        before = evaluate_qa(LMQA(model), tail_before).accuracy
        infuse_head_knowledge(model, small_world, band="head", repetitions=6, seed=27)
        model_after = model  # same object, memory enriched
        after = evaluate_qa(LMQA(model_after), tail_before).accuracy
        assert abs(after - before) < 0.35  # tail behavior does not transform
