"""Tests for quality snapshots and regression diffs (repro.obs.quality)."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.textrich import AttributeValue, TextRichKG
from repro.core.triple import Provenance, Triple
from repro.obs import enabled_scope
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.quality import (
    QualitySnapshot,
    RegressionThresholds,
    capture,
    record_snapshot,
    reset_snapshots,
    snapshots,
)


def _movie_graph(n_movies=3, year="1995"):
    ontology = Ontology()
    ontology.add_class("Movie")
    graph = KnowledgeGraph(ontology=ontology, name="movies")
    for index in range(n_movies):
        graph.add_entity(f"m{index}", f"Movie {index}", "Movie")
        graph.add_triple(
            Triple(f"m{index}", "release_year", year),
            Provenance(source="imdb", confidence=0.9),
        )
        graph.add_triple(
            Triple(f"m{index}", "genre", "crime"),
            Provenance(source="freebase", confidence=0.7),
        )
    return graph


def _product_graph():
    kg = TextRichKG(name="products")
    kg.add_topic("p1", "Dark roast coffee", "Coffee")
    kg.add_value("p1", AttributeValue(attribute="roast", value="dark", source="catalog"))
    kg.add_value(
        "p1",
        AttributeValue(attribute="flavor", value="chocolate", confidence=0.9, source="txtract"),
    )
    return kg


class TestSnapshot:
    def test_entity_based_graph_counts(self):
        snapshot = QualitySnapshot.from_graph(_movie_graph())
        assert snapshot.name == "movies"
        assert snapshot.n_entities == 3
        assert snapshot.n_triples == 6
        assert snapshot.predicate_counts == {"release_year": 3, "genre": 3}
        assert snapshot.class_counts == {"Movie": 3}
        assert snapshot.source_counts == {"imdb": 3, "freebase": 3}
        assert snapshot.source_confidence["imdb"] == pytest.approx(0.9)

    def test_text_rich_graph_counts(self):
        snapshot = QualitySnapshot.from_graph(_product_graph())
        assert snapshot.n_entities == 1
        assert snapshot.n_triples == 2
        assert snapshot.predicate_counts == {"roast": 1, "flavor": 1}
        assert snapshot.source_counts == {"catalog": 1, "txtract": 1}

    def test_unsnapshotable_object_raises_type_error(self):
        with pytest.raises(TypeError):
            QualitySnapshot.from_graph(object())

    def test_gold_scoring_sets_coverage_and_accuracy(self):
        gold = [
            ("m0", "release_year", "1995"),  # present
            ("m0", "genre", "crime"),  # present
            ("m0", "runtime", "170"),  # absent entirely
            ("m1", "release_year", "1996"),  # graph has a wrong value
        ]
        snapshot = QualitySnapshot.from_graph(_movie_graph(), gold=gold)
        assert snapshot.coverage == pytest.approx(2 / 4)
        assert snapshot.accuracy == pytest.approx(2 / 3)

    def test_fusion_counters_folded_from_registry(self):
        registry = MetricsRegistry()
        registry.counter("fusion.accepted").inc(7)
        registry.counter("fusion.graphical.accepted").inc(3)
        registry.counter("fusion.rejected").inc(5)
        snapshot = QualitySnapshot.from_graph(_movie_graph(), registry=registry)
        assert snapshot.fusion_accepted == 10
        assert snapshot.fusion_rejected == 5
        assert snapshot.fusion_accept_rate == pytest.approx(10 / 15)

    def test_accept_rate_none_when_fusion_never_ran(self):
        snapshot = QualitySnapshot.from_graph(_movie_graph())
        assert snapshot.fusion_accept_rate is None
        assert "fusion_accept_rate" not in snapshot.scalar_metrics()

    def test_dict_round_trip(self):
        import json

        original = QualitySnapshot.from_graph(_movie_graph(), gold=[("m0", "genre", "crime")])
        record = original.to_dict()
        json.dumps(record)
        rebuilt = QualitySnapshot.from_dict(record)
        assert rebuilt.scalar_metrics() == original.scalar_metrics()

    def test_fold_into_sets_gauges(self):
        registry = MetricsRegistry()
        QualitySnapshot.from_graph(_movie_graph()).fold_into(registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges["quality.movies.n_triples"] == 6.0
        assert gauges["quality.movies.n_entities"] == 3.0
        assert gauges["quality.movies.source_confidence.imdb"] == pytest.approx(0.9)


class TestDiff:
    def test_identical_snapshots_report_zero_regressions(self):
        current = QualitySnapshot.from_graph(_movie_graph())
        baseline = QualitySnapshot.from_graph(_movie_graph())
        diff = current.diff(baseline)
        assert not diff.has_regressions
        assert diff.rows(only_changed=True) == []

    def test_injected_regression_is_flagged(self):
        baseline = QualitySnapshot.from_graph(_movie_graph(n_movies=10))
        current = QualitySnapshot.from_graph(_movie_graph(n_movies=5))
        diff = current.diff(baseline)
        assert diff.has_regressions
        regressed = {delta.metric for delta in diff.regressions}
        assert "n_triples" in regressed
        assert "n_entities" in regressed

    def test_small_count_drop_within_tolerance_is_ok(self):
        baseline = QualitySnapshot(name="kg", n_triples=100, n_entities=50)
        current = QualitySnapshot(name="kg", n_triples=99, n_entities=50)
        assert not current.diff(baseline).has_regressions

    def test_accuracy_drop_uses_absolute_tolerance(self):
        baseline = QualitySnapshot(name="kg", accuracy=0.95)
        ok = QualitySnapshot(name="kg", accuracy=0.945)
        bad = QualitySnapshot(name="kg", accuracy=0.90)
        assert not ok.diff(baseline).has_regressions
        assert bad.diff(baseline).has_regressions

    def test_vanished_metric_is_a_regression(self):
        baseline = QualitySnapshot(name="kg", predicate_counts={"genre": 5})
        current = QualitySnapshot(name="kg")
        diff = current.diff(baseline)
        assert any(
            delta.metric == "predicate.genre" and delta.regression
            for delta in diff.deltas
        )

    def test_new_metric_is_not_a_regression(self):
        baseline = QualitySnapshot(name="kg")
        current = QualitySnapshot(name="kg", predicate_counts={"genre": 5})
        assert not current.diff(baseline).has_regressions

    def test_improvement_is_never_a_regression(self):
        baseline = QualitySnapshot(name="kg", n_triples=10, accuracy=0.5)
        current = QualitySnapshot(name="kg", n_triples=20, accuracy=0.9)
        assert not current.diff(baseline).has_regressions

    def test_custom_thresholds(self):
        baseline = QualitySnapshot(name="kg", n_triples=100)
        current = QualitySnapshot(name="kg", n_triples=90)
        assert current.diff(baseline).has_regressions
        lax = RegressionThresholds(relative_tolerance=0.2)
        assert not current.diff(baseline, lax).has_regressions

    def test_diff_serializes(self):
        import json

        baseline = QualitySnapshot.from_graph(_movie_graph(n_movies=4))
        current = QualitySnapshot.from_graph(_movie_graph(n_movies=2))
        record = current.diff(baseline).to_dict()
        json.dumps(record)
        assert record["n_regressions"] > 0


class TestGlobalHolder:
    def test_record_is_gated_on_enablement(self):
        reset_snapshots()
        record_snapshot(QualitySnapshot(name="ignored"))
        assert snapshots() == []
        with enabled_scope():
            record_snapshot(QualitySnapshot(name="kept"))
            assert [s.name for s in snapshots()] == ["kept"]
        assert snapshots() == []  # enabled_scope resets on exit

    def test_capture_folds_records_and_returns(self):
        with enabled_scope():
            snapshot = capture(_movie_graph(), name="captured")
            assert snapshot.name == "captured"
            assert [s.name for s in snapshots()] == ["captured"]
            gauges = get_registry().snapshot()["gauges"]
            assert gauges["quality.captured.n_triples"] == 6.0
