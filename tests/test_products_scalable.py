"""Tests for the one-size-fits-all models: TXtract, AdaTag, PAM."""

import pytest

from repro.datagen.products import ProductDomainConfig, build_product_domain
from repro.products.adatag import AdaTagModel, attribute_context_features
from repro.products.opentag import OpenTagModel, train_test_split
from repro.products.pam import PAMExtractor
from repro.products.txtract import TXtractModel, type_context_features


@pytest.fixture(scope="module")
def domain():
    # Moderate size keeps the multi-type training tractable in tests.
    return build_product_domain(ProductDomainConfig(n_products=240, seed=19))


@pytest.fixture(scope="module")
def split(domain):
    return train_test_split(domain.products, test_fraction=0.3, seed=4)


class TestTXtract:
    @pytest.fixture(scope="class")
    def models(self, domain, split):
        train, test = split
        attributes = tuple(domain.attributes())
        pooled = OpenTagModel(attributes=attributes, n_epochs=5, seed=3).fit(train)
        txtract = TXtractModel(attributes=attributes, n_epochs=5, seed=3).fit(train)
        return pooled, txtract, test

    def test_type_awareness_beats_pooled_baseline(self, models):
        pooled, txtract, test = models
        assert txtract.micro_f1(test) > pooled.micro_f1(test)

    def test_one_model_covers_all_types(self, domain, models):
        _pooled, txtract, test = models
        types_extracted = set()
        for product in test:
            if txtract.extract(product):
                types_extracted.add(product.product_type)
        assert len(types_extracted) >= len(domain.types()) - 2

    def test_type_classifier_multitask_head(self, models, split):
        _pooled, txtract, test = models
        correct = sum(
            1 for product in test[:60] if txtract.predict_type(product) == product.product_type
        )
        assert correct / 60 > 0.7

    def test_predicted_type_mode(self, domain, split):
        train, test = split
        attributes = tuple(domain.attributes())
        model = TXtractModel(
            attributes=attributes, n_epochs=4, seed=3, use_predicted_type=True
        ).fit(train)
        assert model.micro_f1(test[:40]) > 0.5

    def test_context_features_deterministic(self):
        assert type_context_features("Coffee", "Grocery") == type_context_features(
            "Coffee", "Grocery"
        )

    def test_unfitted_raises(self, domain):
        with pytest.raises(RuntimeError):
            TXtractModel(attributes=("flavor",)).extract(domain.products[0])


class TestAdaTag:
    def test_conditioned_model_beats_per_attribute_models_on_scarce_data(self, domain):
        """AdaTag's win: shared vocabulary across similar attributes when
        per-attribute training data is scarce."""
        products = domain.by_type("Coffee") + domain.by_type("Shampoo")
        train, test = train_test_split(products, test_fraction=0.4, seed=5)
        train = train[:40]  # scarcity makes sharing matter
        attributes = ("flavor", "scent")
        adatag = AdaTagModel(attributes=attributes, n_epochs=6, seed=3).fit(train)
        per_attribute_f1 = []
        for attribute in attributes:
            single = OpenTagModel(attributes=(attribute,), n_epochs=6, seed=3).fit(train)
            per_attribute_f1.append(single.micro_f1(test))
        baseline = sum(per_attribute_f1) / len(per_attribute_f1)
        assert adatag.micro_f1(test) >= baseline - 0.02

    def test_extracts_per_attribute(self, domain):
        products = domain.by_type("Coffee")
        train, test = train_test_split(products, test_fraction=0.3, seed=6)
        model = AdaTagModel(attributes=("flavor", "roast"), n_epochs=5, seed=3).fit(train)
        extracted = [model.extract(product) for product in test[:10]]
        assert any("flavor" in values or "roast" in values for values in extracted)

    def test_attribute_context_features(self):
        features = attribute_context_features("flavor")
        assert "attr=flavor" in features

    def test_unfitted_raises(self, domain):
        with pytest.raises(RuntimeError):
            AdaTagModel(attributes=("flavor",)).extract(domain.products[0])

    def test_unknown_supervision_rejected(self, domain):
        with pytest.raises(ValueError):
            AdaTagModel(attributes=("flavor",)).fit(
                domain.products[:5], supervision="psychic"
            )


class TestPAM:
    @pytest.fixture(scope="class")
    def fitted(self, domain, split):
        train, test = split
        attributes = tuple(domain.attributes())
        model = PAMExtractor(attributes=attributes, n_epochs=5, seed=3).fit(train)
        return model, test

    def test_multimodal_beats_text_only(self, fitted):
        model, test = fitted
        assert model.micro_f1(test, multimodal=True) > model.micro_f1(
            test, multimodal=False
        )

    def test_recovers_values_unseen_in_text(self, fitted):
        model, test = fitted
        assert model.unseen_value_recall(test) > 0.1

    def test_image_channel_respects_type(self, fitted, domain):
        """The type-adapted decoder: a Coffee image token never yields a
        Headphones-only value."""
        model, test = fitted
        for product in test[:40]:
            for attribute, value in model.extract(product).items():
                catalog = model.value_catalog_.get((product.product_type, attribute))
                text_extraction = model.extract_text_only(product)
                if attribute not in text_extraction and catalog is not None:
                    assert value.lower() in catalog

    def test_unfitted_raises(self, domain):
        with pytest.raises(RuntimeError):
            PAMExtractor(attributes=("flavor",)).extract(domain.products[0])
