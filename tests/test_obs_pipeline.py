"""Integration tests: the construction pipeline under observability."""

import pytest

from repro.core.pipeline import ConstructionPipeline, PipelineContext, PipelineStage
from repro.obs import enabled_scope, get_registry, get_tracer


class _Recorder(PipelineStage):
    name = "recorder"

    def run(self, context):
        self.record("value", 42)


class _Boom(PipelineStage):
    name = "boom"

    def run(self, context):
        self.record("partial", 1)
        raise RuntimeError("stage exploded")


def _three_stage_pipeline():
    pipeline = ConstructionPipeline("demo")
    pipeline.add_function("first", lambda ctx: None)
    pipeline.add_stage(_Recorder())
    pipeline.add_function("third", lambda ctx: None)
    return pipeline


class TestPipelineTracing:
    def test_one_span_per_stage_under_pipeline_root(self):
        with enabled_scope():
            _three_stage_pipeline().run()
            spans = get_tracer().spans()
            stage_spans = [s for s in spans if s.name.startswith("stage.")]
            root_spans = [s for s in spans if s.name == "pipeline.demo"]
            assert [s.name for s in stage_spans] == [
                "stage.first",
                "stage.recorder",
                "stage.third",
            ]
            assert len(root_spans) == 1
            root = root_spans[0]
            assert all(s.parent_id == root.span_id for s in stage_spans)
            assert all(s.trace_id == root.trace_id for s in stage_spans)

    def test_stage_metrics_land_in_span_tags_and_registry(self):
        with enabled_scope():
            _three_stage_pipeline().run()
            (recorder_span,) = get_tracer().spans("stage.recorder")
            assert recorder_span.tags["value"] == 42.0
            snapshot = get_registry().snapshot()
            assert snapshot["counters"]["pipeline.stage.runs"] == 3.0
            assert snapshot["histograms"]["pipeline.stage.seconds"]["count"] == 3
            assert snapshot["gauges"]["pipeline.demo.recorder.value"] == 42.0

    def test_disabled_pipeline_traces_nothing(self):
        get_tracer().reset()
        get_registry().reset()
        _three_stage_pipeline().run()
        assert get_tracer().spans() == []
        assert get_registry().snapshot()["counters"] == {}

    def test_failing_stage_appends_partial_report_and_reraises(self):
        pipeline = ConstructionPipeline("crashy")
        pipeline.add_function("ok", lambda ctx: None)
        pipeline.add_stage(_Boom())
        pipeline.add_function("never", lambda ctx: None)
        with pytest.raises(RuntimeError, match="stage exploded"):
            pipeline.run(PipelineContext())
        assert [report.stage_name for report in pipeline.reports] == ["ok", "boom"]
        failed = pipeline.reports[-1]
        assert failed.error == "RuntimeError: stage exploded"
        assert failed.metrics == {"partial": 1.0}
        assert failed.seconds >= 0.0
        assert pipeline.reports[0].error is None

    def test_failing_stage_error_visible_in_span_and_registry(self):
        pipeline = ConstructionPipeline("crashy").add_stage(_Boom())
        with enabled_scope():
            with pytest.raises(RuntimeError):
                pipeline.run()
            (boom_span,) = get_tracer().spans("stage.boom")
            assert "RuntimeError: stage exploded" in str(boom_span.tags["error"])
            snapshot = get_registry().snapshot()
            assert snapshot["counters"]["pipeline.stage.errors"] == 1.0

    def test_failing_stage_report_table_row_carries_error(self):
        pipeline = ConstructionPipeline("crashy").add_stage(_Boom())
        with pytest.raises(RuntimeError):
            pipeline.run()
        (row,) = pipeline.report_table()
        assert row["error"] == "RuntimeError: stage exploded"
