"""Tests for entity linkage (RF linker + Fellegi-Sunter + task plumbing)."""

import numpy as np
import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.integrate.linkage import (
    EntityLinker,
    FellegiSunterLinker,
    apply_linkage,
    build_linkage_task,
)
from repro.integrate.schema_alignment import oracle_alignment


@pytest.fixture(scope="module")
def movie_task(source_pair):
    freebase, imdb = source_pair
    return build_linkage_task(
        freebase, imdb, "Movie", oracle_alignment(freebase), oracle_alignment(imdb)
    )


@pytest.fixture(scope="module")
def person_task(source_pair):
    freebase, imdb = source_pair
    return build_linkage_task(
        freebase, imdb, "Person", oracle_alignment(freebase), oracle_alignment(imdb)
    )


class TestLinkageTask:
    def test_features_parallel_to_pairs(self, movie_task):
        assert len(movie_task.features) == len(movie_task.pairs) == len(movie_task.labels)

    def test_oracle_metered(self, movie_task):
        movie_task.oracle_calls_ = 0
        movie_task.oracle(0)
        movie_task.oracle(1)
        assert movie_task.oracle_calls_ == 2

    def test_blocking_retains_most_true_matches(self, movie_task):
        in_pairs = int(movie_task.labels.sum())
        assert in_pairs / movie_task.n_true_matches_total > 0.85

    def test_evaluate_charges_blocking_misses(self, movie_task):
        perfect = list(movie_task.labels)
        confusion = movie_task.evaluate(perfect)
        assert confusion.false_negative == movie_task.n_true_matches_total - int(
            movie_task.labels.sum()
        )


class TestEntityLinker:
    def test_high_precision_recall_with_full_labels(self, movie_task):
        linker = EntityLinker(n_estimators=20, seed=1).fit(
            movie_task.features, movie_task.labels
        )
        predictions = linker.predict(movie_task.features, pairs=movie_task.pairs)
        confusion = movie_task.evaluate(list(predictions))
        assert confusion.precision > 0.95
        assert confusion.recall > 0.85

    def test_person_linkage_with_homonyms(self, person_task):
        """People share names; disambiguation must still work."""
        linker = EntityLinker(n_estimators=20, seed=1).fit(
            person_task.features, person_task.labels
        )
        predictions = linker.predict(person_task.features, pairs=person_task.pairs)
        confusion = person_task.evaluate(list(predictions))
        assert confusion.precision > 0.9

    def test_one_to_one_constraint(self, movie_task):
        linker = EntityLinker(n_estimators=10, seed=1, threshold=0.1).fit(
            movie_task.features, movie_task.labels
        )
        predictions = linker.predict(movie_task.features, pairs=movie_task.pairs)
        left_used, right_used = set(), set()
        for decided, (left, right) in zip(predictions, movie_task.pairs):
            if decided:
                assert left not in left_used
                assert right not in right_used
                left_used.add(left)
                right_used.add(right)

    def test_scores_unit_interval(self, movie_task):
        linker = EntityLinker(n_estimators=5, seed=1).fit(
            movie_task.features, movie_task.labels
        )
        scores = linker.decision_scores(movie_task.features)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_unfitted_raises(self, movie_task):
        with pytest.raises(RuntimeError):
            EntityLinker().decision_scores(movie_task.features)


class TestFellegiSunter:
    def test_reasonable_quality(self, movie_task):
        linker = FellegiSunterLinker().fit(movie_task.features, movie_task.labels)
        predictions = linker.predict(movie_task.features)
        confusion = movie_task.evaluate(list(predictions))
        assert confusion.f1 > 0.7

    def test_rf_at_least_matches_fs(self, movie_task):
        forest = EntityLinker(n_estimators=20, seed=1).fit(
            movie_task.features, movie_task.labels
        )
        fs = FellegiSunterLinker().fit(movie_task.features, movie_task.labels)
        f_forest = movie_task.evaluate(
            list(forest.predict(movie_task.features, pairs=movie_task.pairs))
        ).f1
        f_fs = movie_task.evaluate(list(fs.predict(movie_task.features))).f1
        assert f_forest >= f_fs - 0.02

    def test_unfitted_raises(self, movie_task):
        with pytest.raises(RuntimeError):
            FellegiSunterLinker().decision_scores(movie_task.features)


class TestApplyLinkage:
    def test_merges_into_graph(self):
        ontology = Ontology()
        ontology.add_class("Movie")
        graph = KnowledgeGraph(ontology=ontology)
        graph.add_entity("a", "X", "Movie")
        graph.add_entity("b", "X", "Movie")
        graph.add("b", "release_year", 1999)
        merged = apply_linkage(graph, [("a", "b")])
        assert merged == 1
        assert not graph.has_entity("b")
        assert graph.one_object("a", "release_year") == 1999

    def test_skips_stale_pairs(self):
        ontology = Ontology()
        ontology.add_class("Movie")
        graph = KnowledgeGraph(ontology=ontology)
        graph.add_entity("a", "X", "Movie")
        graph.add_entity("b", "X", "Movie")
        merged = apply_linkage(graph, [("a", "b"), ("a", "b"), ("a", "a")])
        assert merged == 1
