"""Tests for the text-rich (bipartite) KG."""

import pytest

from repro.core.textrich import AttributeValue, TextRichKG


def _kg():
    kg = TextRichKG()
    kg.add_topic("b1", "Onus vanilla Ground Coffee", "Ground Coffee")
    kg.add_topic("b2", "Verdant mint Green Tea", "Green Tea")
    kg.add_value("b1", AttributeValue(attribute="flavor", value="vanilla"))
    kg.add_value("b2", AttributeValue(attribute="flavor", value="mint", confidence=0.8))
    return kg


class TestTopics:
    def test_add_and_lookup(self):
        kg = _kg()
        assert kg.topic("b1").entity_type == "Ground Coffee"

    def test_duplicate_rejected(self):
        kg = _kg()
        with pytest.raises(ValueError):
            kg.add_topic("b1", "x", "Ground Coffee")

    def test_unknown_type_added_to_taxonomy(self):
        kg = _kg()
        kg.add_topic("b3", "x", "BrandNewType")
        assert kg.taxonomy.has_class("BrandNewType")

    def test_topics_filtered_by_subtree(self):
        kg = TextRichKG()
        kg.taxonomy.add_class("Coffee")
        kg.taxonomy.add_class("Ground Coffee", parent="Coffee")
        kg.add_topic("b1", "x", "Ground Coffee")
        assert [topic.entity_id for topic in kg.topics("Coffee")] == ["b1"]

    def test_unknown_topic_raises(self):
        with pytest.raises(KeyError):
            _kg().topic("nope")


class TestValues:
    def test_values_and_value_of(self):
        kg = _kg()
        assert kg.value_of("b1", "flavor") == "vanilla"
        assert kg.value_of("b1", "scent") is None

    def test_duplicate_value_keeps_higher_confidence(self):
        kg = _kg()
        kg.add_value("b2", AttributeValue(attribute="flavor", value="mint", confidence=0.95))
        records = kg.values("b2", "flavor")
        assert len(records) == 1
        assert records[0].confidence == 0.95

    def test_duplicate_value_lower_confidence_ignored(self):
        kg = _kg()
        kg.add_value("b2", AttributeValue(attribute="flavor", value="mint", confidence=0.1))
        assert kg.values("b2", "flavor")[0].confidence == 0.8

    def test_highest_confidence_wins_value_of(self):
        kg = _kg()
        kg.add_value("b1", AttributeValue(attribute="flavor", value="mocha", confidence=0.5))
        assert kg.value_of("b1", "flavor") == "vanilla"

    def test_remove_value(self):
        kg = _kg()
        assert kg.remove_value("b1", "flavor", "vanilla") is True
        assert kg.remove_value("b1", "flavor", "vanilla") is False
        assert kg.value_of("b1", "flavor") is None

    def test_reverse_index(self):
        kg = _kg()
        assert kg.topics_with_value("flavor", "VANILLA") == ["b1"]

    def test_reverse_index_after_removal(self):
        kg = _kg()
        kg.remove_value("b1", "flavor", "vanilla")
        assert kg.topics_with_value("flavor", "vanilla") == []

    def test_distinct_values(self):
        kg = _kg()
        assert kg.distinct_values("flavor") == ["mint", "vanilla"]

    def test_unknown_topic_value_raises(self):
        with pytest.raises(KeyError):
            _kg().add_value("nope", AttributeValue(attribute="a", value="b"))

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            AttributeValue(attribute="a", value="b", confidence=2.0)


class TestValueEdges:
    def test_synonym_symmetric(self):
        kg = _kg()
        kg.add_value_edge("synonym", "decaf", "decaffeinated")
        assert kg.has_value_edge("synonym", "decaffeinated", "decaf")

    def test_hypernym_directed(self):
        kg = _kg()
        kg.add_value_edge("hypernym", "green tea", "tea")
        assert kg.has_value_edge("hypernym", "green tea", "tea")
        assert not kg.has_value_edge("hypernym", "tea", "green tea")

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError):
            _kg().add_value_edge("sibling", "a", "b")

    def test_value_edges_filter(self):
        kg = _kg()
        kg.add_value_edge("synonym", "a", "b")
        kg.add_value_edge("hypernym", "c", "d")
        assert len(kg.value_edges("synonym")) == 1
        assert len(kg.value_edges()) == 2


class TestExportAndStats:
    def test_to_triples_includes_types_and_values(self):
        kg = _kg()
        triples = kg.to_triples()
        assert any(t.predicate == "type" and t.subject == "b1" for t in triples)
        assert any(t.predicate == "flavor" and t.object == "vanilla" for t in triples)

    def test_stats(self):
        kg = _kg()
        stats = kg.stats()
        assert stats["n_topics"] == 2
        assert stats["n_value_triples"] == 2
        assert stats["n_value_nodes"] == 2

    def test_attributes(self):
        assert _kg().attributes() == ["flavor"]
