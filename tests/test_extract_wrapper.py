"""Tests for wrapper induction."""

import pytest

from repro.datagen.web import WebsiteConfig, generate_site
from repro.datagen.world import WorldConfig, build_world
from repro.extract.wrapper import InducedWrapper, WrapperInducer, annotate_by_truth


@pytest.fixture(scope="module")
def site_world():
    world = build_world(WorldConfig(n_people=50, n_movies=60, n_songs=10, seed=8))
    site = generate_site(
        world,
        WebsiteConfig(
            name="movies.example.com", domain="Movie", n_pages=30, missing_rate=0.1, seed=9
        ),
    )
    return world, site


class TestAnnotateByTruth:
    def test_finds_value_nodes(self, site_world):
        _world, site = site_world
        page = site.pages[0]
        annotations = annotate_by_truth(page.root, page.closed_truth)
        assert set(annotations) == set(page.closed_truth)
        for attribute, node in annotations.items():
            assert node.text == page.closed_truth[attribute]


class TestWrapperInducer:
    def _induce(self, site, n_annotated=3):
        annotated_pages = [
            (page.root, annotate_by_truth(page.root, page.closed_truth))
            for page in site.pages[:n_annotated]
        ]
        return WrapperInducer(site_name=site.name).induce(annotated_pages)

    def test_high_quality_on_held_out_pages(self, site_world):
        _world, site = site_world
        wrapper = self._induce(site, n_annotated=4)
        correct = total = 0
        for page in site.pages[4:]:
            extracted = wrapper.extract(page.root)
            for attribute, truth in page.closed_truth.items():
                total += 1
                if extracted.get(attribute) == truth:
                    correct += 1
        assert total > 0
        assert correct / total > 0.9  # the paper's "over 95%" band

    def test_single_page_induction_works(self, site_world):
        _world, site = site_world
        wrapper = self._induce(site, n_annotated=1)
        extracted = wrapper.extract(site.pages[5].root)
        assert extracted  # at least some attributes extracted

    def test_missing_fields_produce_no_output(self, site_world):
        _world, site = site_world
        wrapper = self._induce(site, n_annotated=4)
        for page in site.pages[4:10]:
            extracted = wrapper.extract(page.root)
            for attribute in extracted:
                # Never extracts attributes that were never annotated.
                assert attribute in wrapper.attributes()

    def test_empty_annotations_rejected(self):
        with pytest.raises(ValueError):
            WrapperInducer(site_name="x").induce([])

    def test_foreign_node_rejected(self, site_world):
        _world, site = site_world
        foreign = site.pages[1].root.find_by_tag("td")[0]
        with pytest.raises(ValueError):
            WrapperInducer(site_name="x").induce(
                [(site.pages[0].root, {"director": foreign})]
            )

    def test_min_support_filters_rare_paths(self, site_world):
        _world, site = site_world
        annotated_pages = [
            (page.root, annotate_by_truth(page.root, page.closed_truth))
            for page in site.pages[:6]
        ]
        strict = WrapperInducer(site_name=site.name, min_support=6).induce(annotated_pages)
        lenient = WrapperInducer(site_name=site.name, min_support=1).induce(annotated_pages)
        strict_rules = sum(len(paths) for paths in strict.rules.values())
        lenient_rules = sum(len(paths) for paths in lenient.rules.values())
        assert strict_rules <= lenient_rules

    def test_does_not_transfer_across_templates(self, site_world):
        """The paper's point: wrappers are per-site, not web-scale.

        A different site has both a different template (paths break) and a
        different label vocabulary (landmarks break)."""
        world, site = site_world
        wrapper = self._induce(site, n_annotated=4)
        other_site = generate_site(
            world,
            WebsiteConfig(
                name="other.example.com",
                domain="Movie",
                template="dl",
                label_style=1,
                n_pages=5,
                seed=30,
            ),
        )
        correct = total = 0
        for page in other_site.pages:
            extracted = wrapper.extract(page.root)
            for attribute, truth in page.closed_truth.items():
                total += 1
                if extracted.get(attribute) == truth:
                    correct += 1
        assert correct / max(total, 1) < 0.5
