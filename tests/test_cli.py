"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, cmd_info, cmd_list, main
from repro.evalx.registry import EXPERIMENTS


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_list_empty_registry(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS", {})
        assert main(["list"]) == 0
        assert "no experiments registered" in capsys.readouterr().out

    def test_info_known(self, capsys):
        assert main(["info", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "benchmarks/test_fig2_entity_linkage.py" in output

    def test_info_unknown(self, capsys):
        assert main(["info", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown(self, capsys):
        assert main(["run", "NOPE"]) == 2

    def test_run_invokes_pytest_on_bench(self, monkeypatch, capsys):
        calls = {}

        def fake_call(command, cwd=None):
            calls["command"] = command
            calls["cwd"] = cwd
            return 0

        import repro.cli as cli

        monkeypatch.setattr(cli.subprocess, "call", fake_call)
        assert main(["run", "FIG2"]) == 0
        assert "--benchmark-only" in calls["command"]
        assert any("test_fig2_entity_linkage.py" in part for part in calls["command"])

    def test_run_all_targets_benchmarks_dir(self, monkeypatch):
        calls = {}

        def fake_call(command, cwd=None):
            calls["command"] = command
            return 0

        import repro.cli as cli

        monkeypatch.setattr(cli.subprocess, "call", fake_call)
        assert main(["run", "all"]) == 0
        assert any(part.endswith("benchmarks") for part in calls["command"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_covers_every_subcommand(self, capsys):
        """`repro --help` must list all subcommands, serving included."""
        with pytest.raises(SystemExit) as exc_info:
            main(["--help"])
        assert exc_info.value.code == 0
        output = capsys.readouterr().out
        for subcommand in (
            "list",
            "info",
            "run",
            "trace",
            "report",
            "bench",
            "serve",
            "loadgen",
            "slo",
        ):
            assert subcommand in output, f"--help missing subcommand {subcommand!r}"


class TestTraceCommand:
    def test_trace_unknown_id(self, capsys):
        assert main(["trace", "NOPE"]) == 2
        assert "no trace workload" in capsys.readouterr().err

    def test_trace_writes_jsonl_and_summary(self, monkeypatch, capsys, tmp_path):
        from repro.core.pipeline import ConstructionPipeline
        from repro.evalx import tracerun

        def tiny_workload():
            pipeline = ConstructionPipeline("tiny")
            pipeline.add_function("alpha", lambda ctx: None)
            pipeline.add_function("beta", lambda ctx: None)
            pipeline.run()

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", tiny_workload)
        output = tmp_path / "trace_tiny.jsonl"
        assert main(["trace", "t-tiny", "-o", str(output)]) == 0

        records = [
            json.loads(line) for line in output.read_text().splitlines() if line
        ]
        span_records = [r for r in records if r["kind"] == "span"]
        names = {r["name"] for r in span_records}
        # One span per pipeline stage, plus pipeline and experiment roots.
        assert {"stage.alpha", "stage.beta", "pipeline.tiny", "experiment.T-TINY"} <= names
        (metrics_record,) = [r for r in records if r["kind"] == "metrics"]
        assert metrics_record["counters"]["pipeline.stage.runs"] == 2.0

        printed = capsys.readouterr().out
        assert "per-span summary" in printed
        assert "stage.alpha" in printed

    def test_trace_leaves_observability_disabled(self, monkeypatch, tmp_path):
        from repro import obs
        from repro.evalx import tracerun

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", lambda: None)
        assert not obs.enabled()
        assert main(["trace", "T-TINY", "-o", str(tmp_path / "t.jsonl")]) == 0
        assert not obs.enabled()

    def test_trace_registry_ids_are_real(self):
        from repro.evalx.tracerun import TRACE_WORKLOADS

        assert set(TRACE_WORKLOADS) <= set(EXPERIMENTS)


class TestObservabilityFlags:
    def test_slo_parser_defaults(self):
        from repro.cli import cmd_slo

        args = build_parser().parse_args(["slo", "WORLD", "--quick"])
        assert args.func is cmd_slo
        assert args.target == "WORLD"
        assert args.duration == 5.0 and args.concurrency == 8
        assert args.burn_threshold == 1.0
        assert args.fail_on_burn is False

    def test_slo_accepts_a_url_target(self):
        args = build_parser().parse_args(
            ["slo", "http://127.0.0.1:8080", "--fail-on-burn", "--burn-threshold", "2.0"]
        )
        assert args.target == "http://127.0.0.1:8080"
        assert args.fail_on_burn is True and args.burn_threshold == 2.0

    def test_loadgen_obs_compare_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "WORLD", "--obs-compare", "--max-obs-overhead", "0.1"]
        )
        assert args.obs_compare is True and args.max_obs_overhead == 0.1
        defaults = build_parser().parse_args(["loadgen", "WORLD"])
        assert defaults.obs_compare is False and defaults.max_obs_overhead == 0.05

    def test_serve_observability_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "WORLD",
                "--no-obs",
                "--trace-sample", "0.25",
                "--access-log", "/tmp/a.jsonl",
                "--access-log-sample", "0.5",
            ]
        )
        assert args.no_obs is True
        assert args.trace_sample == 0.25
        assert args.access_log == "/tmp/a.jsonl"
        assert args.access_log_sample == 0.5
