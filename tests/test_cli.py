"""Tests for the experiment CLI."""

import json

import pytest

from repro.cli import build_parser, cmd_info, cmd_list, main
from repro.evalx.registry import EXPERIMENTS


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_list_empty_registry(self, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS", {})
        assert main(["list"]) == 0
        assert "no experiments registered" in capsys.readouterr().out

    def test_info_known(self, capsys):
        assert main(["info", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "benchmarks/test_fig2_entity_linkage.py" in output

    def test_info_unknown(self, capsys):
        assert main(["info", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown(self, capsys):
        assert main(["run", "NOPE"]) == 2

    def test_run_invokes_pytest_on_bench(self, monkeypatch, capsys):
        calls = {}

        def fake_call(command, cwd=None):
            calls["command"] = command
            calls["cwd"] = cwd
            return 0

        import repro.cli as cli

        monkeypatch.setattr(cli.subprocess, "call", fake_call)
        assert main(["run", "FIG2"]) == 0
        assert "--benchmark-only" in calls["command"]
        assert any("test_fig2_entity_linkage.py" in part for part in calls["command"])

    def test_run_all_targets_benchmarks_dir(self, monkeypatch):
        calls = {}

        def fake_call(command, cwd=None):
            calls["command"] = command
            return 0

        import repro.cli as cli

        monkeypatch.setattr(cli.subprocess, "call", fake_call)
        assert main(["run", "all"]) == 0
        assert any(part.endswith("benchmarks") for part in calls["command"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_covers_every_subcommand(self, capsys):
        """`repro --help` must list all subcommands, serving included."""
        with pytest.raises(SystemExit) as exc_info:
            main(["--help"])
        assert exc_info.value.code == 0
        output = capsys.readouterr().out
        for subcommand in (
            "list",
            "info",
            "run",
            "trace",
            "report",
            "bench",
            "serve",
            "loadgen",
            "slo",
            "runs",
        ):
            assert subcommand in output, f"--help missing subcommand {subcommand!r}"


class TestTraceCommand:
    def test_trace_unknown_id(self, capsys):
        assert main(["trace", "NOPE"]) == 2
        assert "no trace workload" in capsys.readouterr().err

    def test_trace_writes_jsonl_and_summary(self, monkeypatch, capsys, tmp_path):
        from repro.core.pipeline import ConstructionPipeline
        from repro.evalx import tracerun

        def tiny_workload():
            pipeline = ConstructionPipeline("tiny")
            pipeline.add_function("alpha", lambda ctx: None)
            pipeline.add_function("beta", lambda ctx: None)
            pipeline.run()

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", tiny_workload)
        output = tmp_path / "trace_tiny.jsonl"
        assert main(["trace", "t-tiny", "-o", str(output), "--no-runs"]) == 0

        records = [
            json.loads(line) for line in output.read_text().splitlines() if line
        ]
        span_records = [r for r in records if r["kind"] == "span"]
        names = {r["name"] for r in span_records}
        # One span per pipeline stage, plus pipeline and experiment roots.
        assert {"stage.alpha", "stage.beta", "pipeline.tiny", "experiment.T-TINY"} <= names
        (metrics_record,) = [r for r in records if r["kind"] == "metrics"]
        assert metrics_record["counters"]["pipeline.stage.runs"] == 2.0

        printed = capsys.readouterr().out
        assert "per-span summary" in printed
        assert "stage.alpha" in printed

    def test_trace_leaves_observability_disabled(self, monkeypatch, tmp_path):
        from repro import obs
        from repro.evalx import tracerun

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", lambda: None)
        assert not obs.enabled()
        assert main(["trace", "T-TINY", "-o", str(tmp_path / "t.jsonl"), "--no-runs"]) == 0
        assert not obs.enabled()

    def test_trace_registry_ids_are_real(self):
        from repro.evalx.tracerun import TRACE_WORKLOADS

        assert set(TRACE_WORKLOADS) <= set(EXPERIMENTS)

    def test_trace_records_run_in_registry(self, monkeypatch, capsys, tmp_path):
        from repro.evalx import tracerun
        from repro.obs.runs import RunRegistry

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", lambda: None)
        runs_dir = tmp_path / "runs"
        assert main(
            [
                "trace", "T-TINY",
                "-o", str(tmp_path / "t.jsonl"),
                "--runs-dir", str(runs_dir),
            ]
        ) == 0
        assert "run r0001 ->" in capsys.readouterr().out
        (record,) = RunRegistry(str(runs_dir)).load()
        assert record.kind == "trace"
        assert record.experiment_id == "T-TINY"
        assert record.resources["peak_rss_kb"] > 0  # rusage rode along


def _tiny_workload():
    from repro.core.pipeline import ConstructionPipeline

    pipeline = ConstructionPipeline("tiny")
    pipeline.add_function("alpha", lambda ctx: None)
    pipeline.run()


@pytest.fixture
def tiny_trace(monkeypatch):
    from repro.evalx import tracerun

    monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", _tiny_workload)


class TestTraceFromFile:
    def test_missing_file_is_one_line_error(self, capsys):
        assert main(["trace", "T-TINY", "--from-file", "/nonexistent/t.jsonl"]) == 1
        err = capsys.readouterr().err
        assert "not found" in err
        assert len(err.strip().splitlines()) == 1  # actionable, not a traceback

    def test_truncated_file_names_the_line(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps(
                {
                    "kind": "span", "name": "root", "span_id": "s1",
                    "parent_id": None, "wall_seconds": 0.1, "cpu_seconds": 0.1,
                }
            )
            + "\n"
            + '{"kind": "span", "name": "chopped'  # a torn final write
        )
        assert main(["trace", "T-TINY", "--from-file", str(path)]) == 1
        err = capsys.readouterr().err
        assert "truncated or corrupt at line 2" in err
        assert len(err.strip().splitlines()) == 1

    def test_round_trip_through_inspection_mode(self, tiny_trace, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        assert main(["trace", "T-TINY", "-o", str(path), "--no-runs"]) == 0
        capsys.readouterr()
        assert main(["trace", "T-TINY", "--from-file", str(path)]) == 0
        output = capsys.readouterr().out
        assert "per-span summary" in output
        assert "stage.alpha" in output


class TestReportErrors:
    def test_corrupt_baseline_is_one_line_error(self, tiny_trace, capsys, tmp_path):
        baseline = tmp_path / "report_bad.json"
        baseline.write_text('{"version": 1, "qual')  # truncated write
        assert main(
            [
                "report", "T-TINY",
                "-o", str(tmp_path),
                "--baseline", str(baseline),
                "--no-runs",
            ]
        ) == 1
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert len(err.strip().splitlines()) == 1

    def test_report_gates_on_registry_drift(self, tiny_trace, capsys, tmp_path):
        """The trajectory gate end-to-end: a seeded history flags this run."""
        from repro.obs.runs import RunRecord, RunRegistry

        runs_dir = tmp_path / "runs"
        registry = RunRegistry(str(runs_dir))
        for _ in range(10):
            registry.append(
                RunRecord(
                    kind="report",
                    experiment_id="T-TINY",
                    metrics={"counter.pipeline.stage.runs": 50.0},
                )
            )
        assert main(
            ["report", "T-TINY", "-o", str(tmp_path), "--runs-dir", str(runs_dir)]
        ) == 1
        err = capsys.readouterr().err
        assert "drifted below the registry trajectory" in err
        assert "counter.pipeline.stage.runs" in err

    def test_report_on_trajectory_passes(self, tiny_trace, capsys, tmp_path):
        assert main(
            ["report", "T-TINY", "-o", str(tmp_path), "--runs-dir", str(tmp_path / "runs")]
        ) == 0
        assert "run r0001 ->" in capsys.readouterr().out


class TestRunsCli:
    def _seed(self, runs_dir, accuracies, experiment_id="SYN"):
        from repro.obs.runs import RunRecord, RunRegistry

        registry = RunRegistry(str(runs_dir))
        for accuracy in accuracies:
            registry.append(
                RunRecord(
                    kind="report",
                    experiment_id=experiment_id,
                    quality=[{"name": "kg", "n_triples": 100, "accuracy": accuracy}],
                )
            )
        return registry

    def test_list_empty_registry(self, capsys, tmp_path):
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "runs")]) == 0
        assert "0 run(s)" in capsys.readouterr().out

    def test_list_shows_runs(self, capsys, tmp_path):
        self._seed(tmp_path / "runs", [0.9, 0.91])
        assert main(["runs", "list", "--runs-dir", str(tmp_path / "runs")]) == 0
        output = capsys.readouterr().out
        assert "r0001" in output and "r0002" in output and "SYN" in output

    def test_show_unknown_run_exits_2(self, capsys, tmp_path):
        self._seed(tmp_path / "runs", [0.9])
        assert main(["runs", "show", "r0042", "--runs-dir", str(tmp_path / "runs")]) == 2
        assert "not in registry" in capsys.readouterr().err

    def test_diff_regression_exits_1(self, capsys, tmp_path):
        self._seed(tmp_path / "runs", [0.95, 0.60])
        assert main(
            ["runs", "diff", "r0001", "r0002", "--runs-dir", str(tmp_path / "runs")]
        ) == 1
        assert "regression" in capsys.readouterr().out

    def test_drift_stable_exits_0(self, capsys, tmp_path):
        self._seed(tmp_path / "runs", [0.950, 0.951, 0.949, 0.950, 0.951, 0.950])
        assert main(["runs", "drift", "--runs-dir", str(tmp_path / "runs")]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_drift_injected_drop_exits_1(self, capsys, tmp_path):
        self._seed(
            tmp_path / "runs",
            [0.950, 0.952, 0.948, 0.951, 0.949, 0.950, 0.953, 0.947, 0.951, 0.949, 0.80],
        )
        assert main(["runs", "drift", "--runs-dir", str(tmp_path / "runs")]) == 1
        err = capsys.readouterr().err
        assert "drifted DOWN" in err
        assert "quality.kg.accuracy" in err


class TestObservabilityFlags:
    def test_slo_parser_defaults(self):
        from repro.cli import cmd_slo

        args = build_parser().parse_args(["slo", "WORLD", "--quick"])
        assert args.func is cmd_slo
        assert args.target == "WORLD"
        assert args.duration == 5.0 and args.concurrency == 8
        assert args.burn_threshold == 1.0
        assert args.fail_on_burn is False

    def test_slo_accepts_a_url_target(self):
        args = build_parser().parse_args(
            ["slo", "http://127.0.0.1:8080", "--fail-on-burn", "--burn-threshold", "2.0"]
        )
        assert args.target == "http://127.0.0.1:8080"
        assert args.fail_on_burn is True and args.burn_threshold == 2.0

    def test_loadgen_obs_compare_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "WORLD", "--obs-compare", "--max-obs-overhead", "0.1"]
        )
        assert args.obs_compare is True and args.max_obs_overhead == 0.1
        defaults = build_parser().parse_args(["loadgen", "WORLD"])
        assert defaults.obs_compare is False and defaults.max_obs_overhead == 0.05

    def test_serve_observability_flags(self):
        args = build_parser().parse_args(
            [
                "serve", "WORLD",
                "--no-obs",
                "--trace-sample", "0.25",
                "--access-log", "/tmp/a.jsonl",
                "--access-log-sample", "0.5",
            ]
        )
        assert args.no_obs is True
        assert args.trace_sample == 0.25
        assert args.access_log == "/tmp/a.jsonl"
        assert args.access_log_sample == 0.5


class TestStorageCli:
    """`repro save|load|compact` and `repro serve --snapshot`."""

    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("storage") / "world.rkgs"
        assert main(["save", "WORLD", "--quick", "-o", str(path)]) == 0
        return path

    def test_save_writes_snapshot(self, snapshot_path, capsys):
        capsys.readouterr()  # drop the fixture's output
        assert snapshot_path.exists()
        assert snapshot_path.stat().st_size > 0

    def test_save_unknown_fixture(self, tmp_path, capsys):
        assert main(["save", "NOPE", "-o", str(tmp_path / "x.rkgs")]) == 2
        assert "unknown serve fixture" in capsys.readouterr().err

    @pytest.mark.parametrize("backend", ["columnar", "dict"])
    def test_load_round_trip(self, snapshot_path, backend, capsys):
        assert main(["load", str(snapshot_path), "--backend", backend]) == 0
        output = capsys.readouterr().out
        assert f"({backend} backend)" in output
        assert "triples" in output and "id terms" in output

    def test_load_missing_file(self, tmp_path, capsys):
        assert main(["load", str(tmp_path / "ghost.rkgs")]) == 2
        err = capsys.readouterr().err
        assert err.strip()
        assert "\n" not in err.strip()  # one-line actionable error

    def test_load_corrupt_file(self, snapshot_path, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.rkgs"
        corrupt.write_bytes(snapshot_path.read_bytes()[:40])
        assert main(["load", str(corrupt)]) == 2
        assert "repro save" in capsys.readouterr().err

    def test_compact_folds_wal(self, tmp_path, capsys):
        from repro.core.codec import TripleWAL

        wal_dir = tmp_path / "wal"
        wal = TripleWAL(str(wal_dir))
        wal.append(
            {"op": "entity", "id": "e0", "name": "E0", "class": "Thing", "aliases": []}
        )
        for index in range(25):
            wal.append({"op": "add", "s": "e0", "p": "p", "o": index})
        wal.close()
        assert main(["compact", str(wal_dir)]) == 0
        output = capsys.readouterr().out
        assert "compacted" in output
        assert "25 triples" in output
        assert (wal_dir / "base.rkgs").exists()

    def test_serve_snapshot_boots_and_exits(self, snapshot_path, capsys):
        assert (
            main(
                [
                    "serve",
                    "--snapshot",
                    str(snapshot_path),
                    "--port",
                    "0",
                    "--duration",
                    "0",
                    "--no-obs",
                    "--no-lm",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert f"snapshot:{snapshot_path}" in output
        assert "routes:" in output

    def test_serve_rejects_fixture_plus_snapshot(self, snapshot_path, capsys):
        assert main(["serve", "WORLD", "--snapshot", str(snapshot_path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_serve_requires_fixture_or_snapshot(self, capsys):
        assert main(["serve"]) == 2
        assert "--snapshot" in capsys.readouterr().err

    def test_serve_bad_snapshot_path(self, tmp_path, capsys):
        assert main(["serve", "--snapshot", str(tmp_path / "ghost.rkgs")]) == 2
        assert capsys.readouterr().err.strip()


class TestBuildCli:
    _ARGS = ["--people", "30", "--movies", "20", "--no-runs"]

    def test_build_check_equal_passes(self, capsys):
        assert main(["build", "--partitions", "2", "--check-equal", *self._ARGS]) == 0
        output = capsys.readouterr().out
        assert "byte-identical" in output
        assert "check state: equal" in output

    def test_build_records_run_config(self, tmp_path, capsys):
        assert (
            main(
                ["build", "--partitions", "3", "--runs-dir", str(tmp_path)]
                + self._ARGS[:-1]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["runs", "show", "r0001", "--runs-dir", str(tmp_path)]) == 0
        shown = capsys.readouterr().out
        assert '"partitions": 3' in shown

    def test_bad_workers_env_is_one_line_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PMAP_WORKERS", "banana")
        assert main(["build", "--partitions", "2", *self._ARGS]) == 2
        err = capsys.readouterr().err
        assert "REPRO_PMAP_WORKERS" in err
        assert "Traceback" not in err
