"""Tests for the experiment CLI."""

import pytest

from repro.cli import build_parser, cmd_info, cmd_list, main
from repro.evalx.registry import EXPERIMENTS


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in EXPERIMENTS:
            assert experiment_id in output

    def test_info_known(self, capsys):
        assert main(["info", "fig2"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2" in output
        assert "benchmarks/test_fig2_entity_linkage.py" in output

    def test_info_unknown(self, capsys):
        assert main(["info", "NOPE"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_unknown(self, capsys):
        assert main(["run", "NOPE"]) == 2

    def test_run_invokes_pytest_on_bench(self, monkeypatch, capsys):
        calls = {}

        def fake_call(command, cwd=None):
            calls["command"] = command
            calls["cwd"] = cwd
            return 0

        import repro.cli as cli

        monkeypatch.setattr(cli.subprocess, "call", fake_call)
        assert main(["run", "FIG2"]) == 0
        assert "--benchmark-only" in calls["command"]
        assert any("test_fig2_entity_linkage.py" in part for part in calls["command"])

    def test_run_all_targets_benchmarks_dir(self, monkeypatch):
        calls = {}

        def fake_call(command, cwd=None):
            calls["command"] = command
            return 0

        import repro.cli as cli

        monkeypatch.setattr(cli.subprocess, "call", fake_call)
        assert main(["run", "all"]) == 0
        assert any(part.endswith("benchmarks") for part in calls["command"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
