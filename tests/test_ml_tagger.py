"""Tests for the BIO helper and the sequence tagger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tagger import BIO, OUTSIDE, SequenceTagger


class TestBIO:
    def test_encode_basic(self):
        tags = BIO.encode(["dark", "roast", "coffee"], [(0, 2, "roast")])
        assert tags == ["B-roast", "I-roast", "O"]

    def test_decode_basic(self):
        spans = BIO.decode(["B-roast", "I-roast", "O"])
        assert spans == [(0, 2, "roast")]

    def test_roundtrip(self):
        tokens = ["a", "b", "c", "d", "e"]
        spans = [(0, 2, "x"), (3, 5, "y")]
        assert BIO.decode(BIO.encode(tokens, spans)) == spans

    def test_encode_rejects_bad_span(self):
        with pytest.raises(ValueError):
            BIO.encode(["a"], [(0, 2, "x")])
        with pytest.raises(ValueError):
            BIO.encode(["a", "b"], [(1, 1, "x")])

    def test_encode_overlap_first_wins(self):
        tags = BIO.encode(["a", "b", "c"], [(0, 2, "x"), (1, 3, "y")])
        assert tags == ["B-x", "I-x", "O"]

    def test_decode_dangling_inside(self):
        spans = BIO.decode(["O", "I-x", "I-x"])
        assert spans == [(1, 3, "x")]

    def test_decode_label_switch_inside(self):
        spans = BIO.decode(["B-x", "I-y"])
        assert spans == [(0, 1, "x"), (1, 2, "y")]

    def test_span_values(self):
        values = BIO.span_values(["dark", "roast", "x"], ["B-roast", "I-roast", "O"])
        assert values == [("roast", "dark roast")]

    @given(
        st.lists(
            st.sampled_from(["O", "B-a", "I-a", "B-b", "I-b"]), min_size=0, max_size=15
        )
    )
    def test_decode_never_crashes_and_spans_valid(self, tags):
        for start, end, label in BIO.decode(tags):
            assert 0 <= start < end <= len(tags)
            assert label in ("a", "b")

    @given(st.data())
    @settings(max_examples=50)
    def test_encode_decode_roundtrip_random(self, data):
        n_tokens = data.draw(st.integers(1, 12))
        tokens = [f"t{i}" for i in range(n_tokens)]
        n_spans = data.draw(st.integers(0, 3))
        spans = []
        used = set()
        for _ in range(n_spans):
            start = data.draw(st.integers(0, n_tokens - 1))
            end = data.draw(st.integers(start + 1, n_tokens))
            if any(i in used for i in range(start, end)):
                continue
            used.update(range(start, end))
            spans.append((start, end, data.draw(st.sampled_from(["x", "y"]))))
        spans.sort()
        assert sorted(BIO.decode(BIO.encode(tokens, spans))) == spans


def _toy_corpus():
    sentences = [
        ["rich", "mocha", "flavor"],
        ["rich", "vanilla", "flavor"],
        ["soothing", "vanilla", "scent"],
        ["soothing", "lavender", "scent"],
        ["great", "everyday", "coffee"],
    ] * 4
    tags = [
        ["O", "B-flavor", "O"],
        ["O", "B-flavor", "O"],
        ["O", "B-scent", "O"],
        ["O", "B-scent", "O"],
        ["O", "O", "O"],
    ] * 4
    return sentences, tags


class TestSequenceTagger:
    def test_learns_toy_patterns(self):
        sentences, tags = _toy_corpus()
        tagger = SequenceTagger(n_epochs=5).fit(sentences, tags)
        assert tagger.predict(["rich", "mocha", "flavor"]) == ["O", "B-flavor", "O"]
        assert tagger.predict(["soothing", "lavender", "scent"]) == ["O", "B-scent", "O"]

    def test_context_disambiguates_shared_vocabulary(self):
        # "vanilla" is flavor in coffee context, scent in candle context:
        # with identical local text, only the context feature can decide.
        sentences = [["notes", "of", "vanilla"]] * 10
        tags = [["O", "O", "B-flavor"]] * 5 + [["O", "O", "B-scent"]] * 5
        contexts = [["type=Coffee"]] * 5 + [["type=Candles"]] * 5
        tagger = SequenceTagger(n_epochs=8).fit(sentences, tags, contexts=contexts)
        assert tagger.predict(["notes", "of", "vanilla"], ["type=Coffee"]) == [
            "O",
            "O",
            "B-flavor",
        ]
        assert tagger.predict(["notes", "of", "vanilla"], ["type=Candles"]) == [
            "O",
            "O",
            "B-scent",
        ]

    def test_extract_returns_values(self):
        sentences, tags = _toy_corpus()
        tagger = SequenceTagger(n_epochs=5).fit(sentences, tags)
        assert ("flavor", "mocha") in tagger.extract(["rich", "mocha", "flavor"])

    def test_empty_prediction(self):
        sentences, tags = _toy_corpus()
        tagger = SequenceTagger(n_epochs=2).fit(sentences, tags)
        assert tagger.predict([]) == []

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SequenceTagger().predict(["a"])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            SequenceTagger().fit([["a"]], [["O", "O"]])

    def test_tags_inventory(self):
        sentences, tags = _toy_corpus()
        tagger = SequenceTagger(n_epochs=1).fit(sentences, tags)
        assert OUTSIDE in tagger.tags
        assert "B-flavor" in tagger.tags

    def test_deterministic(self):
        sentences, tags = _toy_corpus()
        first = SequenceTagger(n_epochs=3, seed=5).fit(sentences, tags)
        second = SequenceTagger(n_epochs=3, seed=5).fit(sentences, tags)
        sample = ["rich", "vanilla", "flavor"]
        assert first.predict(sample) == second.predict(sample)
