"""Cross-process observability propagation through pmap (DESIGN.md §10).

The contract under test: a ``pmap(mode="process")`` fan-out with tracing
enabled produces the *same* merged trace/metrics/lineage state as the
serial run — plus ``pmap.worker`` child spans — deterministically,
regardless of which worker handled which chunk.
"""

import pytest

from repro.core.parallel import MODE_ENV_VAR, WORKERS_ENV_VAR, pmap
from repro.evalx.tracerun import run_trace
from repro.obs import (
    count,
    enabled_scope,
    get_ledger,
    get_registry,
    get_tracer,
    observe,
    record_observation,
    span,
    span_tree_signature,
)
from repro.obs.tracing import TraceContext, capture_context


@pytest.fixture
def obs_on():
    with enabled_scope():
        yield


def _traced_double(x):
    """Module-level (picklable) worker body exercising all three collectors."""
    with span("item.work", item=x):
        count("items.processed")
        observe("items.size", float(x), buckets=[2.0, 8.0, 32.0])
        record_observation(f"e{x}", "value", x, source="worker", confidence=0.9)
    return 2 * x


def _collect_state():
    """The comparable observability state of the current global collectors."""
    tracer = get_tracer()
    spans = [finished.to_dict() for finished in tracer.spans()]
    snapshot = get_registry().snapshot()
    lineage = get_ledger().export_state()
    return spans, snapshot, lineage


class TestCaptureContext:
    def test_disabled_context_is_inert(self):
        context = capture_context()
        assert isinstance(context, TraceContext)
        assert not context.enabled
        assert not context.recording

    def test_enabled_context_carries_current_span(self, obs_on):
        with span("root") as root:
            context = capture_context()
            assert context.enabled and context.recording
            assert context.trace_id == root.trace_id
            assert context.parent_span_id == root.span_id

    def test_context_pickles(self, obs_on):
        import pickle

        with span("root"):
            context = capture_context()
        assert pickle.loads(pickle.dumps(context)) == context


class TestProcessShipping:
    ITEMS = list(range(12))

    def _run(self, mode):
        with span("fanout"):
            result = pmap(
                _traced_double, self.ITEMS, mode=mode, max_workers=2, chunk_size=3
            )
        assert result == [2 * x for x in self.ITEMS]
        return _collect_state()

    def test_process_state_equals_serial_state(self):
        with enabled_scope():
            serial_spans, serial_snapshot, serial_lineage = self._run("serial")
        with enabled_scope():
            process_spans, process_snapshot, process_lineage = self._run("process")

        # Same tree shape once the per-worker grouping spans are spliced out.
        assert span_tree_signature(process_spans, exclude=("pmap.worker",)) == (
            span_tree_signature(serial_spans)
        )
        # Counters/histograms identical except the mode-marker counter.
        for snapshot in (serial_snapshot, process_snapshot):
            for name in list(snapshot["counters"]):
                if name.startswith("parallel.pmap."):
                    del snapshot["counters"][name]
        assert process_snapshot == serial_snapshot
        # Lineage replays identically, sequence numbers included.
        assert process_lineage == serial_lineage

    def test_worker_spans_form_single_connected_tree(self, obs_on):
        with span("fanout") as root:
            pmap(_traced_double, self.ITEMS, mode="process", max_workers=2, chunk_size=3)
        spans = [finished.to_dict() for finished in get_tracer().spans()]
        workers = [record for record in spans if record["name"] == "pmap.worker"]
        assert len(workers) == 4  # 12 items / chunk_size 3
        assert all(record["parent_id"] == root.span_id for record in workers)
        assert len({record["trace_id"] for record in spans}) == 1
        worker_ids = {record["span_id"] for record in workers}
        leaves = [record for record in spans if record["name"] == "item.work"]
        assert len(leaves) == len(self.ITEMS)
        assert all(record["parent_id"] in worker_ids for record in leaves)

    def test_merged_span_structure_is_deterministic(self):
        def structure():
            with enabled_scope():
                spans, _, _ = self._run("process")
            # Normalize ids to record-order indices: the global tracer's id
            # counter survives reset() (fresh ids per process, not per
            # scope), so only the *relational* structure is comparable
            # across scopes — and that is the determinism contract.
            index = {record["span_id"]: i for i, record in enumerate(spans)}
            return [
                (
                    index[record["span_id"]],
                    index.get(record["parent_id"]),
                    record["name"],
                    record["tags"],
                )
                for record in spans
            ]

        assert structure() == structure()

    def test_failed_chunk_still_ships_observability(self, obs_on):
        with pytest.raises(ValueError, match="boom 5"):
            with span("fanout"):
                pmap(_fail_on_five, range(8), mode="process", max_workers=2, chunk_size=2)
        counters = get_registry().snapshot()["counters"]
        # Chunks before, around, and after the failing one all merged.
        assert counters["items.attempted"] == 8.0


class TestThreadLinking:
    def test_thread_worker_spans_stay_in_parent_trace(self, obs_on):
        with span("fanout") as root:
            result = pmap(
                _traced_double, range(8), mode="thread", max_workers=2, chunk_size=2
            )
        assert result == [2 * x for x in range(8)]
        spans = [finished.to_dict() for finished in get_tracer().spans()]
        workers = [record for record in spans if record["name"] == "pmap.worker"]
        assert len(workers) == 4
        assert all(record["parent_id"] == root.span_id for record in workers)
        assert len({record["trace_id"] for record in spans}) == 1


def _fail_on_five(x):
    count("items.attempted")
    if x == 5:
        raise ValueError(f"boom {x}")
    return x


class TestSpanTreeSignature:
    ROOT = {"span_id": "s1", "parent_id": None, "name": "root"}
    MID = {"span_id": "s2", "parent_id": "s1", "name": "mid"}
    LEAF = {"span_id": "s3", "parent_id": "s2", "name": "leaf"}

    def test_excluded_names_splice_children_upward(self):
        full = span_tree_signature([self.ROOT, self.MID, self.LEAF], exclude=("mid",))
        flat = span_tree_signature(
            [self.ROOT, {"span_id": "s3", "parent_id": "s1", "name": "leaf"}]
        )
        assert full == flat

    def test_signature_ignores_ids_and_ordering(self):
        renamed = [
            {"span_id": "x9", "parent_id": None, "name": "root"},
            {"span_id": "x7", "parent_id": "x9", "name": "mid"},
            {"span_id": "x5", "parent_id": "x7", "name": "leaf"},
        ]
        assert span_tree_signature(renamed) == span_tree_signature(
            [self.ROOT, self.MID, self.LEAF]
        )

    def test_different_shapes_differ(self):
        sibling = [self.ROOT, self.MID, {"span_id": "s3", "parent_id": "s1", "name": "leaf"}]
        assert span_tree_signature(sibling) != span_tree_signature(
            [self.ROOT, self.MID, self.LEAF]
        )


class TestFig4aEquivalence:
    """The acceptance pin: FIG4A process-mode == serial-mode observability."""

    def test_fig4a_process_equals_serial(self, monkeypatch):
        monkeypatch.delenv(MODE_ENV_VAR, raising=False)
        serial = run_trace("FIG4A")

        monkeypatch.setenv(MODE_ENV_VAR, "process")
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        process = run_trace("FIG4A")

        workers = [r for r in process.spans if r["name"] == "pmap.worker"]
        assert workers, "process mode must produce pmap.worker spans"
        # One connected tree: a single trace id and a single root span.
        assert len({r["trace_id"] for r in process.spans}) == 1
        known = {r["span_id"] for r in process.spans}
        roots = [
            r
            for r in process.spans
            if r["parent_id"] is None or r["parent_id"] not in known
        ]
        assert len(roots) == 1

        assert span_tree_signature(process.spans, exclude=("pmap.worker",)) == (
            span_tree_signature(serial.spans)
        )
        serial_counters = {
            k: v
            for k, v in serial.snapshot["counters"].items()
            if not k.startswith("parallel.pmap.")
        }
        process_counters = {
            k: v
            for k, v in process.snapshot["counters"].items()
            if not k.startswith("parallel.pmap.")
        }
        assert process_counters == serial_counters
        assert process.quality == serial.quality
        assert process.lineage == serial.lineage
