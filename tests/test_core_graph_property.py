"""Property tests: index consistency and fast/naive equivalence under churn.

Random interleavings of ``add_triple`` / ``add_triples_batch`` /
``remove_triple`` / ``merge_entities`` are applied twice — once through the
fast paths (batch ingestion with deferred index rows, index-walk merges)
and once through the naive reference paths (per-call adds, full-scan
merges from :mod:`repro.evalx.bench`).  Both runs must end in identical
graph state and identical lineage ledgers, and the SPO/POS/OSP indexes
must always be exactly the triples' projections with no empty shells.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.parallel import pmap
from repro.core.triple import Provenance, Triple
from repro.evalx.bench import naive_merge_entities
from repro.obs import enabled_scope
from repro.obs.lineage import get_ledger

_ENTITY_IDS = ("e0", "e1", "e2", "e3", "e4")
_subjects = st.sampled_from(_ENTITY_IDS)
_predicates = st.sampled_from(("p", "q", "r"))
_objects = st.one_of(
    st.sampled_from(_ENTITY_IDS),
    st.sampled_from(("x", "y", "z")),
    st.integers(0, 9),
)
_prov_index = st.one_of(st.none(), st.integers(0, 2))
_spec = st.tuples(_subjects, _predicates, _objects, _prov_index)

_add_op = st.tuples(st.just("add"), _spec)
_batch_op = st.tuples(st.just("batch"), st.lists(_spec, max_size=8))
_remove_op = st.tuples(
    st.just("remove"), st.tuples(_subjects, _predicates, _objects)
)
_merge_op = st.tuples(st.just("merge"), st.tuples(st.integers(0, 9), st.integers(0, 9)))

_op_lists = st.lists(
    st.one_of(_add_op, _batch_op, _remove_op, _merge_op), max_size=25
)


def _provenance(index):
    if index is None:
        return None
    return Provenance(source=f"s{index}", confidence=0.5 + index / 10.0)


def _fresh_graph():
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="prop")
    for entity_id in _ENTITY_IDS:
        graph.add_entity(entity_id, entity_id.upper(), "Thing")
    return graph


def _apply_ops(graph, ops, fast):
    """Run one op sequence; ``fast`` picks batch/index-walk vs naive paths."""
    for kind, payload in ops:
        if kind == "add":
            subject, predicate, obj, prov = payload
            if graph.has_entity(subject):
                graph.add_triple(
                    Triple(subject, predicate, obj), provenance=_provenance(prov)
                )
        elif kind == "batch":
            items = [
                (Triple(subject, predicate, obj), _provenance(prov))
                for subject, predicate, obj, prov in payload
                if graph.has_entity(subject)
            ]
            if fast:
                graph.add_triples_batch(items)
            else:
                for triple, provenance in items:
                    graph.add_triple(triple, provenance=provenance)
        elif kind == "remove":
            graph.remove_triple(Triple(*payload))
        else:  # merge
            ids = sorted(graph._entities)
            keep = ids[payload[0] % len(ids)]
            drop = ids[payload[1] % len(ids)]
            if keep == drop:
                continue
            if fast:
                graph.merge_entities(keep, drop)
            else:
                naive_merge_entities(graph, keep, drop)


def _expected_indexes(graph):
    spo, pos, osp = {}, {}, {}
    for triple in graph._triples:
        subject, predicate, obj = triple.subject, triple.predicate, triple.object
        spo.setdefault(subject, {}).setdefault(predicate, set()).add(obj)
        pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
    return spo, pos, osp


def _actual_indexes(graph):
    graph._ensure_indexes()

    def materialize(index):
        return {
            key: {inner: set(values) for inner, values in row.items()}
            for key, row in index.items()
        }

    return (
        materialize(graph._spo),
        materialize(graph._pos),
        materialize(graph._osp),
    )


def _state(graph):
    return {
        "triples": set(graph._triples),
        "provenance": {
            triple: list(records)
            for triple, records in graph._provenance.items()
            if records
        },
        "entities": sorted(graph._entities),
        "indexes": _actual_indexes(graph),
    }


def _ledger_events():
    return {
        key: [event.to_dict() for event in events]
        for key, events in get_ledger()._events.items()
    }


@given(_op_lists)
@settings(max_examples=30, deadline=None)
def test_indexes_always_exact_projection(ops):
    """Actual indexes equal the triples' projections — no stale or empty rows."""
    graph = _fresh_graph()
    _apply_ops(graph, ops, fast=True)
    assert _actual_indexes(graph) == _expected_indexes(graph)
    # Exact equality above also forbids empty shells: an empty row/set in
    # the actual index could never appear in the projection.


@given(_op_lists)
@settings(max_examples=30, deadline=None)
def test_fast_and_naive_paths_equivalent(ops):
    """Fast batch/merge paths leave the same state and lineage as naive ones."""
    with enabled_scope():
        fast = _fresh_graph()
        _apply_ops(fast, ops, fast=True)
        fast_state = _state(fast)
        fast_events = _ledger_events()
        fast_sequence = get_ledger()._sequence
    with enabled_scope():
        naive = _fresh_graph()
        _apply_ops(naive, ops, fast=False)
        naive_state = _state(naive)
        naive_events = _ledger_events()
        naive_sequence = get_ledger()._sequence
    assert fast_state == naive_state
    assert fast_events == naive_events
    assert fast_sequence == naive_sequence


def _double(x):
    return 2 * x


@given(st.lists(st.integers(-100, 100), max_size=40), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_pmap_serial_and_thread_agree(values, chunk_size):
    expected = [_double(value) for value in values]
    assert pmap(_double, values, mode="serial") == expected
    assert pmap(_double, values, mode="thread", chunk_size=chunk_size) == expected


def test_pmap_process_agrees_once():
    """Process mode checked outside hypothesis (pool startup is slow)."""
    values = list(range(64))
    assert pmap(_double, values, mode="process", chunk_size=7) == [
        2 * value for value in values
    ]
