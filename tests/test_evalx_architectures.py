"""Unit tests for the Fig. 4 architecture helpers (integration tests cover
the end-to-end runs; these pin the pieces)."""

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.pipeline import PipelineContext
from repro.core.triple import Triple
from repro.evalx.architectures import (
    _movie_mapping,
    _person_mapping,
    evaluate_entity_kg_accuracy,
)


class TestMappings:
    def test_movie_mapping_respects_field_map(self):
        mapping = _movie_mapping("imdb", {"name": "title", "release_year": "year"})
        output = dict(
            (relation, value)
            for relation, value, _ref in mapping.apply({"year": "1999", "genre": "drama"})
        )
        assert output == {"release_year": 1999, "genre": "drama"}

    def test_movie_mapping_marks_director_as_reference(self):
        mapping = _movie_mapping("src", {})
        refs = {
            relation: is_ref
            for relation, _value, is_ref in mapping.apply({"directed_by": "Jane Doe"})
        }
        assert refs["directed_by"] is True

    def test_person_mapping(self):
        mapping = _person_mapping("src", {})
        output = dict(
            (relation, value)
            for relation, value, _ref in mapping.apply(
                {"birth_year": 1970, "birth_place": "Seattle"}
            )
        )
        assert output == {"birth_year": 1970, "birth_place": "Seattle"}


class TestAccuracyEvaluator:
    def _context(self):
        from repro.datagen.world import WorldConfig, build_world

        world = build_world(WorldConfig(n_people=20, n_movies=10, n_songs=0, seed=3))
        ontology = world.truth.ontology
        graph = KnowledgeGraph(ontology=ontology, name="built")
        graph.add_entity("kg:m0", "X", "Movie")
        movie_id = world.entity_ids("Movie")[0]
        true_year = world.truth.objects(movie_id, "release_year")[0]
        graph.add(Triple("kg:m0", "release_year", true_year).subject, "release_year", true_year)
        graph.add("kg:m0", "genre", "definitely-wrong-genre")
        context = PipelineContext(
            artifacts={"world": world, "kg": graph, "world_of": {"kg:m0": movie_id}}
        )
        return context

    def test_counts_correct_and_wrong_literals(self):
        context = self._context()
        # One right (release_year) and one wrong (genre) literal -> 0.5.
        assert evaluate_entity_kg_accuracy(context) == pytest.approx(0.5)

    def test_unmapped_entities_ignored(self):
        context = self._context()
        graph = context.artifacts["kg"]
        graph.add_entity("kg:m1", "Unmapped", "Movie")
        graph.add("kg:m1", "genre", "drama")
        assert evaluate_entity_kg_accuracy(context) == pytest.approx(0.5)
