"""Tests for the AutoML grid search."""

import numpy as np
import pytest

from repro.ml.automl import GridSearch
from repro.ml.logistic import LogisticRegression
from repro.ml.tree import DecisionTreeClassifier


def _data(seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((120, 2))
    labels = ((features[:, 0] > 0.5) ^ (features[:, 1] > 0.5)).astype(int)
    return features, labels


class TestGridSearch:
    def test_prefers_deeper_tree_for_xor(self):
        features, labels = _data()
        search = GridSearch(
            model_factory=lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            grid={"max_depth": [1, 6]},
            n_folds=3,
            seed=0,
        )
        search.fit(features, labels)
        assert search.best_params_["max_depth"] == 6

    def test_returns_fitted_model(self):
        features, labels = _data()
        search = GridSearch(
            model_factory=lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            grid={"max_depth": [3]},
            seed=0,
        )
        model = search.fit(features, labels)
        assert model.predict(features).shape == (len(features),)

    def test_results_sorted_descending(self):
        features, labels = _data()
        search = GridSearch(
            model_factory=lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            grid={"max_depth": [1, 3, 6]},
            seed=0,
        )
        search.fit(features, labels)
        scores = [result.score for result in search.results_]
        assert scores == sorted(scores, reverse=True)

    def test_multiple_parameters(self):
        features, labels = _data()
        search = GridSearch(
            model_factory=lambda learning_rate, n_iterations: LogisticRegression(
                learning_rate=learning_rate, n_iterations=n_iterations
            ),
            grid={"learning_rate": [0.1, 0.5], "n_iterations": [20, 50]},
            seed=0,
        )
        search.fit(features, labels)
        assert len(search.results_) == 4

    def test_best_accessors_before_fit_raise(self):
        search = GridSearch(model_factory=lambda: None, grid={})
        with pytest.raises(RuntimeError):
            _ = search.best_params_
        with pytest.raises(RuntimeError):
            _ = search.best_score_

    def test_mismatched_inputs_rejected(self):
        search = GridSearch(
            model_factory=lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            grid={"max_depth": [2]},
        )
        with pytest.raises(ValueError):
            search.fit(np.zeros((3, 1)), [0, 1])

    def test_custom_scorer(self):
        features, labels = _data()
        calls = []

        def scorer(y_true, y_pred):
            calls.append(1)
            return 1.0

        search = GridSearch(
            model_factory=lambda max_depth: DecisionTreeClassifier(max_depth=max_depth),
            grid={"max_depth": [2]},
            scorer=scorer,
            n_folds=2,
            seed=0,
        )
        search.fit(features, labels)
        assert calls  # scorer was consulted
