"""Live build progress: the heartbeat, its surfaces, and /buildz."""

import io
import json

import pytest

from repro.core.parallel import pmap
from repro.core.pipeline import ConstructionPipeline, FunctionStage
from repro.obs import enabled_scope
from repro.obs import progress as obs_progress
from repro.obs.progress import BuildProgress


@pytest.fixture
def obs_on():
    with enabled_scope():
        yield


@pytest.fixture
def progress():
    tracker = BuildProgress()
    yield tracker
    tracker.close()


class TestLifecycle:
    def test_idle_snapshot(self, progress):
        state = progress.snapshot()
        assert state["active"] is False
        assert state["pipeline"] is None
        assert state["items_done"] == 0
        assert state["stages"] == []

    def test_stage_progress_fields(self, progress):
        progress.begin_pipeline("fig4a", n_stages=3)
        progress.begin_stage("extract")
        progress.add_total(10)
        progress.advance(4)
        state = progress.snapshot()
        assert state["active"] is True
        assert state["pipeline"] == "fig4a"
        assert state["n_stages"] == 3
        assert state["stages_done"] == 0
        assert state["stage"] == "extract"
        assert state["items_done"] == 4
        assert state["items_total"] == 10
        assert state["stage_items_done"] == 4
        assert state["stage_items_total"] == 10
        # With items moving, throughput and a finite ETA are derivable.
        assert state["stage_items_per_s"] > 0
        assert state["stage_eta_s"] >= 0

    def test_end_stage_accumulates_history(self, progress):
        progress.begin_pipeline("p", n_stages=2)
        progress.begin_stage("a")
        progress.advance(3)
        progress.end_stage()
        progress.begin_stage("b")
        progress.end_stage(error="ValueError: boom")
        progress.end_pipeline()
        state = progress.snapshot()
        assert state["active"] is False
        assert state["stages_done"] == 2
        names = [record["stage"] for record in state["stages"]]
        assert names == ["a", "b"]
        assert state["stages"][0]["items"] == 3
        assert state["stages"][1]["error"] == "ValueError: boom"

    def test_reset_drops_state(self, progress):
        progress.begin_pipeline("p", n_stages=1)
        progress.begin_stage("a")
        progress.advance(5)
        progress.reset()
        state = progress.snapshot()
        assert state["active"] is False and state["items_done"] == 0


class TestHeartbeatLog:
    def test_jsonl_log_records_every_event(self, progress, tmp_path):
        log_path = str(tmp_path / "progress.jsonl")
        progress.configure(log_path=log_path, emit_interval=0.0)
        progress.begin_pipeline("p", n_stages=1)
        progress.begin_stage("work", total=2)
        progress.advance()
        progress.advance()
        progress.end_stage()
        progress.end_pipeline()
        progress.close()
        with open(log_path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        kinds = [event["event"] for event in events]
        assert kinds == [
            "pipeline",
            "stage",
            "advance",
            "advance",
            "stage_done",
            "pipeline_done",
        ]
        assert events[2]["stage_items_done"] == 1
        assert events[3]["items_done"] == 2
        assert all("unix" in event for event in events)

    def test_emissions_are_rate_limited(self, progress, tmp_path):
        log_path = str(tmp_path / "progress.jsonl")
        progress.configure(log_path=log_path, emit_interval=3600.0)
        progress.begin_pipeline("p", n_stages=1)  # forced emission
        progress.begin_stage("work")  # forced emission
        for _ in range(50):
            progress.advance()  # all inside the interval: suppressed
        progress.close()
        with open(log_path, encoding="utf-8") as handle:
            events = [json.loads(line) for line in handle]
        assert [event["event"] for event in events] == ["pipeline", "stage"]

    def test_tty_line_overwrites_in_place(self, progress):
        stream = io.StringIO()
        progress.configure(stream=stream, emit_interval=0.0)
        progress.begin_pipeline("fig4a", n_stages=2)
        progress.begin_stage("extract", total=4)
        progress.advance(2)
        output = stream.getvalue()
        assert output.count("\r") == 3
        assert "[build] fig4a" in output
        assert "2/4" in output
        progress.end_pipeline()
        assert stream.getvalue().endswith("\n")


class TestModuleHelpers:
    def test_noop_while_disabled(self):
        before = obs_progress.get_progress().snapshot()
        obs_progress.begin_pipeline("ghost", 3)
        obs_progress.begin_stage("ghost-stage")
        obs_progress.advance(7)
        obs_progress.end_stage()
        obs_progress.end_pipeline()
        assert obs_progress.get_progress().snapshot() == before

    def test_global_tracker_records_when_enabled(self, obs_on):
        obs_progress.begin_pipeline("live", 1)
        obs_progress.begin_stage("s")
        obs_progress.advance(2)
        obs_progress.end_stage()
        obs_progress.end_pipeline()
        state = obs_progress.get_progress().snapshot()
        assert state["stages_done"] == 1
        assert state["items_done"] == 2
        obs_progress.get_progress().reset()


class TestPipelineIntegration:
    def _pipeline(self):
        return (
            ConstructionPipeline(name="toy")
            .add_stage(FunctionStage("first", lambda context: None))
            .add_stage(FunctionStage("second", lambda context: None))
        )

    def test_run_brackets_stages(self, obs_on):
        self._pipeline().run()
        state = obs_progress.get_progress().snapshot()
        assert state["active"] is False
        assert state["n_stages"] == 2
        assert [record["stage"] for record in state["stages"]] == ["first", "second"]
        obs_progress.get_progress().reset()

    def test_pmap_advances_item_counts(self, obs_on):
        obs_progress.begin_pipeline("fanout", 1)
        obs_progress.begin_stage("square")
        pmap(lambda x: x * x, range(10), mode="serial")
        obs_progress.end_stage()
        obs_progress.end_pipeline()
        state = obs_progress.get_progress().snapshot()
        assert state["items_total"] == 10
        assert state["items_done"] == 10
        obs_progress.get_progress().reset()

    def test_disabled_pipeline_leaves_tracker_idle(self):
        self._pipeline().run()
        state = obs_progress.get_progress().snapshot()
        assert state["active"] is False
        assert state["stages"] == []


class TestBuildzEndpoint:
    def test_buildz_reports_build_state(self):
        from repro.serve.server import InProcessClient
        from repro.serve.service import KGService

        from tests.test_serve_server import build_graph

        service = KGService()
        service.publish(build_graph())
        code, body = InProcessClient(service).buildz()
        assert code == 200
        assert body["service"] == service.name
        assert body["observability_enabled"] in (True, False)
        assert body["build"]["active"] is False
        assert "items_done" in body["build"]
