"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression


def _separable(n=150, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 2))
    labels = (features[:, 0] + features[:, 1] > 0).astype(int)
    return features, labels


class TestLogisticRegression:
    def test_learns_separable_data(self):
        features, labels = _separable()
        model = LogisticRegression(n_iterations=200).fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.95

    def test_probabilities_normalized(self):
        features, labels = _separable()
        model = LogisticRegression().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_decision_scores_class_one(self):
        features, labels = _separable()
        model = LogisticRegression().fit(features, labels)
        scores = model.decision_scores(features)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(300, 2))
        labels = np.argmax(
            np.stack([features[:, 0], features[:, 1], -features.sum(axis=1)]), axis=0
        )
        model = LogisticRegression(n_iterations=400).fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.85

    def test_single_row(self):
        features, labels = _separable()
        model = LogisticRegression().fit(features, labels)
        assert model.predict_proba(features[0]).shape == (1, 2)

    def test_deterministic(self):
        features, labels = _separable(seed=4)
        first = LogisticRegression(seed=3).fit(features, labels)
        second = LogisticRegression(seed=3).fit(features, labels)
        assert np.allclose(first.weights_, second.weights_)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((0, 2)), [])

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), [0, 1])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba([[0.0, 0.0]])

    def test_intercept_handles_shifted_data(self):
        rng = np.random.default_rng(8)
        features = rng.normal(loc=5.0, size=(200, 1))
        labels = (features[:, 0] > 5.0).astype(int)
        model = LogisticRegression(learning_rate=0.2, n_iterations=1000).fit(features, labels)
        accuracy = float(np.mean(model.predict(features) == labels))
        assert accuracy > 0.9
