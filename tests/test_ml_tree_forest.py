"""Tests for the CART tree and random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((n, 2))
    labels = ((features[:, 0] > 0.5) ^ (features[:, 1] > 0.5)).astype(int)
    return features, labels


def _linear_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.random((n, 3))
    labels = (features[:, 0] + 0.2 * features[:, 1] > 0.6).astype(int)
    return features, labels


class TestDecisionTree:
    def test_fits_xor(self):
        features, labels = _xor_data()
        tree = DecisionTreeClassifier(max_depth=6).fit(features, labels)
        accuracy = float(np.mean(tree.predict(features) == labels))
        assert accuracy > 0.95

    def test_pure_node_is_leaf(self):
        tree = DecisionTreeClassifier().fit([[0.0], [1.0]], [1, 1])
        assert tree.depth() == 0

    def test_probabilities_sum_to_one(self):
        features, labels = _linear_data()
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        probabilities = tree.predict_proba(features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_max_depth_respected(self):
        features, labels = _xor_data()
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2

    def test_single_row_prediction(self):
        features, labels = _linear_data()
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.predict(features[0]).shape == (1,)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), [])

    def test_rejects_1d_features(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros(4), [0, 0, 1, 1])

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        features = rng.random((150, 1))
        labels = np.digitize(features[:, 0], [0.33, 0.66])
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        assert float(np.mean(tree.predict(features) == labels)) > 0.9
        assert tree.predict_proba(features).shape[1] == 3


class TestRandomForest:
    def test_fits_xor_better_than_chance(self):
        features, labels = _xor_data(seed=3)
        forest = RandomForestClassifier(n_estimators=20, seed=1).fit(features, labels)
        accuracy = float(np.mean(forest.predict(features) == labels))
        assert accuracy > 0.9

    def test_deterministic_given_seed(self):
        features, labels = _linear_data(seed=5)
        first = RandomForestClassifier(n_estimators=8, seed=42).fit(features, labels)
        second = RandomForestClassifier(n_estimators=8, seed=42).fit(features, labels)
        assert np.array_equal(first.predict(features), second.predict(features))

    def test_decision_scores_are_probabilities(self):
        features, labels = _linear_data()
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(features, labels)
        scores = forest.decision_scores(features)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_probabilities_shape(self):
        features, labels = _linear_data()
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(features, labels)
        assert forest.predict_proba(features).shape == (len(features), 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RandomForestClassifier().fit(np.zeros((0, 2)), [])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba([[0.0]])

    def test_generalizes_to_held_out(self):
        features, labels = _linear_data(n=400, seed=9)
        forest = RandomForestClassifier(n_estimators=15, seed=2).fit(
            features[:300], labels[:300]
        )
        accuracy = float(np.mean(forest.predict(features[300:]) == labels[300:]))
        assert accuracy > 0.85
