"""Tests for the Fig. 5 pipelines and the manual-work ledger."""

import pytest

from repro.products.pipelines import (
    MANUAL_COSTS,
    AutomatedPipeline,
    ManualWorkLedger,
    ProductionPipeline,
)

ATTRIBUTES = ("flavor", "roast", "caffeine", "size")


class TestLedger:
    def test_charges_accumulate(self):
        ledger = ManualWorkLedger()
        ledger.charge("label_product", count=10)
        ledger.charge("domain_analysis")
        expected = 10 * MANUAL_COSTS["label_product"] + MANUAL_COSTS["domain_analysis"]
        assert ledger.total_hours == pytest.approx(expected)

    def test_unknown_activity_rejected(self):
        with pytest.raises(KeyError):
            ManualWorkLedger().charge("daydreaming")


@pytest.fixture(scope="module")
def results(product_domain):
    production = ProductionPipeline(attributes=ATTRIBUTES, seed=2).run(
        product_domain, "Coffee"
    )
    automated = AutomatedPipeline(attributes=ATTRIBUTES, seed=2).run(
        product_domain, "Coffee"
    )
    return production, automated


class TestPipelines:
    def test_production_reaches_high_quality(self, results):
        production, _automated = results
        assert production.f1 > 0.9

    def test_automated_quality_comparable(self, results):
        """On the small test fixture (a few dozen products per type) the
        distant-supervised pipeline is data-starved, so only a loose gap
        is asserted here; the FIG5 benchmark asserts the paper-shape gap
        (<=0.2) on a properly-sized catalog."""
        production, automated = results
        assert automated.f1 > production.f1 - 0.35

    def test_automated_slashes_manual_work(self, results):
        """The Fig. 5 punchline: months -> weeks."""
        production, automated = results
        assert automated.manual_hours * 4 < production.manual_hours

    def test_ledgers_itemized(self, results):
        production, automated = results
        assert "label_product" in production.ledger.entries
        assert "hyperparameter_tuning" in production.ledger.entries
        assert "label_product" not in automated.ledger.entries
        assert "benchmark_label" in automated.ledger.entries

    def test_publish_gate(self, results):
        production, automated = results
        assert production.published == (production.f1 >= 0.9)
        assert automated.published == (automated.f1 >= 0.9)

    def test_result_fields(self, results):
        production, _ = results
        assert production.pipeline == "production(5a)"
        assert production.product_type == "Coffee"
        assert 0 <= production.precision <= 1
        assert 0 <= production.recall <= 1
