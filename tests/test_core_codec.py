"""Unit tests for binary snapshots and the append-only WAL."""

import os

import pytest

from repro.core import codec
from repro.core.codec import CodecError, TripleWAL
from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.triple import Provenance, Triple
from repro.obs import enabled_scope
from repro.obs.lineage import get_ledger


def _sample_graph(backend="columnar"):
    ontology = Ontology(name="sample")
    ontology.add_class("Thing")
    ontology.add_class("Person", "Thing")
    ontology.add_relation("knows", "Person", "Person")
    graph = KnowledgeGraph(ontology=ontology, name="sample", backend=backend)
    graph.add_entity("p1", "Ada", "Person", aliases=["A. Lovelace"])
    graph.add_entity("p2", "Alan", "Person")
    graph.add_entity("t1", "Thing One", "Thing")
    graph.add_triple(
        Triple("p1", "knows", "p2"),
        provenance=Provenance(source="web", extractor="ex1", confidence=0.9),
    )
    graph.add_triple(Triple("p1", "born", 1815))
    graph.add_triple(Triple("p2", "score", 0.75))
    graph.add_triple(Triple("t1", "flag", True))
    graph.add_triple(
        Triple("p2", "knows", "p1"),
        provenance=Provenance(source="kb", extractor=None, confidence=0.5),
    )
    return graph


def _triples(graph):
    return sorted(graph.query())


def _provenance_map(graph):
    graph._materialize_provenance()
    return {
        triple: [(p.source, p.extractor, p.confidence) for p in records]
        for triple, records in graph._provenance.items()
        if records
    }


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("source_backend", ["dict", "columnar"])
    @pytest.mark.parametrize("load_backend", ["dict", "columnar"])
    def test_state_survives_round_trip(self, tmp_path, source_backend, load_backend):
        graph = _sample_graph(backend=source_backend)
        path = str(tmp_path / "g.rkgs")
        n_bytes = codec.save_graph(graph, path, include_lineage=False)
        assert n_bytes == os.path.getsize(path)
        loaded = codec.load_graph(path, backend=load_backend)
        assert loaded.backend == load_backend
        assert loaded.name == "sample"
        assert _triples(loaded) == _triples(graph)
        assert _provenance_map(loaded) == _provenance_map(graph)
        assert sorted(e.entity_id for e in loaded.entities()) == ["p1", "p2", "t1"]
        assert loaded.entity("p1").aliases == {"A. Lovelace"}
        assert loaded.ontology.parent("Person") == "Thing"
        assert [e.entity_id for e in loaded.find_by_name("A. Lovelace")] == ["p1"]

    def test_provenance_thaw_is_lazy(self, tmp_path):
        graph = _sample_graph()
        path = str(tmp_path / "g.rkgs")
        codec.save_graph(graph, path)
        loaded = codec.load_graph(path)
        assert loaded._provenance_thaw is not None
        assert not loaded._provenance  # nothing decoded yet
        # Plain queries never thaw; provenance reads do.
        loaded.query(subject="p1")
        assert loaded._provenance_thaw is not None
        records = loaded.provenance(Triple("p1", "knows", "p2"))
        assert loaded._provenance_thaw is None
        assert records == [Provenance(source="web", extractor="ex1", confidence=0.9)]

    def test_loaded_graph_resaves_identically(self, tmp_path):
        graph = _sample_graph()
        first = str(tmp_path / "a.rkgs")
        second = str(tmp_path / "b.rkgs")
        codec.save_graph(graph, first, include_lineage=False)
        codec.save_graph(codec.load_graph(first), second, include_lineage=False)
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()

    def test_empty_graph_round_trip(self, tmp_path):
        ontology = Ontology()
        ontology.add_class("Thing")
        graph = KnowledgeGraph(ontology=ontology, backend="columnar")
        path = str(tmp_path / "empty.rkgs")
        codec.save_graph(graph, path)
        loaded = codec.load_graph(path)
        assert len(loaded) == 0
        assert list(loaded.entities()) == []

    def test_lineage_section_round_trip(self, tmp_path):
        path = str(tmp_path / "g.rkgs")
        with enabled_scope():
            graph = _sample_graph()
            codec.save_graph(graph, path, include_lineage=True)
            saved_events = dict(get_ledger()._events)
            assert saved_events
        with enabled_scope():
            codec.load_graph(path, restore_lineage=True)
            restored = get_ledger()._events
            assert set(restored) == set(saved_events)


class TestMmapLoad:
    """Snapshot loads map the file and slice columns zero-copy."""

    def test_mmap_path_counts_and_matches(self, tmp_path):
        from repro.obs import get_registry

        graph = _sample_graph()
        file_path = str(tmp_path / "g.rkgs")
        codec.save_graph(graph, file_path, include_lineage=False)
        with enabled_scope():
            loaded = codec.load_graph(file_path)
            counters = get_registry().snapshot()["counters"]
        assert counters.get("store.snapshot.loads") == 1.0
        assert counters.get("store.snapshot.mmap_loads") == 1.0
        assert _triples(loaded) == _triples(graph)
        assert _provenance_map(loaded) == _provenance_map(graph)

    def test_read_fallback_matches_mmap(self, tmp_path, monkeypatch):
        """With mmap unavailable the plain-read path loads identically."""
        import mmap as mmap_module

        graph = _sample_graph()
        file_path = str(tmp_path / "g.rkgs")
        codec.save_graph(graph, file_path, include_lineage=False)
        mapped = codec.load_graph(file_path)

        def refuse(*_args, **_kwargs):
            raise OSError("mmap unavailable")

        monkeypatch.setattr(mmap_module, "mmap", refuse)
        with enabled_scope():
            from repro.obs import get_registry

            fallback = codec.load_graph(file_path)
            counters = get_registry().snapshot()["counters"]
        assert "store.snapshot.mmap_loads" not in counters
        assert counters.get("store.snapshot.loads") == 1.0
        assert _triples(fallback) == _triples(mapped)
        assert _provenance_map(fallback) == _provenance_map(mapped)

    def test_file_handle_released_after_load(self, tmp_path):
        """The mapping is closed on load; the file can be replaced in place."""
        graph = _sample_graph()
        file_path = str(tmp_path / "g.rkgs")
        codec.save_graph(graph, file_path, include_lineage=False)
        loaded = codec.load_graph(file_path)
        os.remove(file_path)  # would fail on Windows with a live handle
        codec.save_graph(loaded, file_path, include_lineage=False)
        assert _triples(codec.load_graph(file_path)) == _triples(graph)


class TestTypedTermRoundTrip:
    """Numerically equal terms of different types survive a snapshot.

    Python conflates ``0 == 0.0 == False`` as dict keys, but the dict
    backend stores exact object types; the save path keeps one term id
    per *typed* term (and iterates triples in sorted order, so the bytes
    do not depend on the process hash seed)."""

    def _mixed_graph(self):
        ontology = Ontology()
        ontology.add_class("Thing")
        graph = KnowledgeGraph(ontology=ontology, name="mixed", backend="dict")
        for entity_id in ("e1", "e2", "e3", "e4", "e5"):
            graph.add_entity(entity_id, entity_id.upper(), "Thing")
        for triple in (
            Triple("e1", "p", 0),
            Triple("e2", "p", 0.0),
            Triple("e3", "p", False),
            Triple("e4", "p", True),
            Triple("e5", "p", 1),
        ):
            graph.add_triple(triple)
        return graph

    @pytest.mark.parametrize("load_backend", ["dict", "columnar"])
    def test_types_preserved_exactly(self, tmp_path, load_backend):
        graph = self._mixed_graph()
        file_path = str(tmp_path / "mixed.rkgs")
        codec.save_graph(graph, file_path, include_lineage=False)
        loaded = codec.load_graph(file_path, backend=load_backend)
        key = lambda t: t._sort_key()  # noqa: E731
        original = sorted(graph.query(), key=key)
        restored = sorted(loaded.query(), key=key)
        assert restored == original
        assert [type(t.object) for t in restored] == [
            type(t.object) for t in original
        ]

    def test_resave_is_byte_stable(self, tmp_path):
        graph = self._mixed_graph()
        first = str(tmp_path / "first.rkgs")
        second = str(tmp_path / "second.rkgs")
        codec.save_graph(graph, first, include_lineage=False)
        codec.save_graph(
            codec.load_graph(first, backend="dict"), second, include_lineage=False
        )
        with open(first, "rb") as a, open(second, "rb") as b:
            assert a.read() == b.read()


class TestSnapshotCorruption:
    def _saved(self, tmp_path):
        path = str(tmp_path / "g.rkgs")
        codec.save_graph(_sample_graph(), path, include_lineage=False)
        with open(path, "rb") as handle:
            return path, bytearray(handle.read())

    def test_missing_file(self, tmp_path):
        with pytest.raises(CodecError, match="not found"):
            codec.load_graph(str(tmp_path / "nope.rkgs"))

    def test_bad_magic(self, tmp_path):
        path, blob = self._saved(tmp_path)
        blob[0:4] = b"NOPE"
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(CodecError, match="not a repro snapshot"):
            codec.load_graph(path)

    def test_future_version(self, tmp_path):
        path, blob = self._saved(tmp_path)
        blob[4] = 99
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(CodecError, match="format v99"):
            codec.load_graph(path)

    def test_truncation(self, tmp_path):
        path, blob = self._saved(tmp_path)
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(CodecError, match="truncated"):
            codec.load_graph(path)

    def test_checksum_mismatch_names_section(self, tmp_path):
        path, blob = self._saved(tmp_path)
        blob[-3] ^= 0xFF  # flip a byte inside the final section's payload
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(CodecError, match="checksum mismatch"):
            codec.load_graph(path)

    def test_error_messages_are_one_line_and_actionable(self, tmp_path):
        path, blob = self._saved(tmp_path)
        blob[-3] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(blob)
        with pytest.raises(CodecError) as excinfo:
            codec.load_graph(path)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "repro save" in message


class TestTripleWAL:
    def _entity_records(self, graph):
        return [
            {
                "op": "entity",
                "id": entity.entity_id,
                "name": entity.name,
                "class": entity.entity_class,
                "aliases": sorted(entity.aliases),
            }
            for entity in sorted(graph.entities(), key=lambda e: e.entity_id)
        ]

    def _logged_graph(self, wal_dir, segment_bytes=4096):
        """An empty sample graph with the WAL attached before any triples,
        then the sample triples added *through* the log."""
        wal = TripleWAL(str(wal_dir), segment_bytes=segment_bytes)
        reference = _sample_graph()
        ontology = Ontology(name="sample")
        ontology.add_class("Thing")
        ontology.add_class("Person", "Thing")
        ontology.add_relation("knows", "Person", "Person")
        graph = KnowledgeGraph(ontology=ontology, name="sample", backend="columnar")
        for entity in sorted(reference.entities(), key=lambda e: e.entity_id):
            graph.add_entity(
                entity.entity_id, entity.name, entity.entity_class, entity.aliases
            )
        for record in self._entity_records(graph):
            wal.append(record)
        graph.attach_wal(wal)
        graph._materialize_provenance()
        for triple, records in sorted(
            _provenance_map(reference).items(), key=lambda kv: kv[0]
        ):
            for source, extractor, confidence in records:
                graph.add_triple(
                    triple,
                    provenance=Provenance(
                        source=source, extractor=extractor, confidence=confidence
                    ),
                )
        for triple in _triples(reference):
            graph.add_triple(triple)
        return graph, wal

    def test_recover_replays_all_ops(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal")
        graph.add_triple(Triple("t1", "linked", "p1"))
        graph.add_alias("p2", "A. Turing")
        graph.remove_triple(Triple("p1", "born", 1815))
        graph.merge_entities("p1", "p2")
        wal.close()

        recovered = TripleWAL(str(tmp_path / "wal")).recover()
        assert _triples(recovered) == _triples(graph)
        assert _provenance_map(recovered) == _provenance_map(graph)
        assert not recovered.has_entity("p2")
        assert "A. Turing" in recovered.entity("p1").aliases

    def test_batch_ingest_logs_one_record_and_replays(self, tmp_path):
        wal = TripleWAL(str(tmp_path / "wal"))
        ontology = Ontology()
        ontology.add_class("Thing")
        graph = KnowledgeGraph(ontology=ontology, backend="columnar")
        for index in range(5):
            graph.add_entity(f"e{index}", f"E{index}", "Thing")
        for record in self._entity_records(graph):
            wal.append(record)
        graph.attach_wal(wal)
        items = [
            (Triple("e0", "p", "x"), Provenance(source="s", confidence=0.7)),
            Triple("e1", "p", "y"),
            Triple("e1", "p", "y"),  # duplicate: replay must not resurrect it twice
            (Triple("e2", "q", 5), None),
        ]
        graph.add_triples_batch(items)
        wal.close()
        recovered = TripleWAL(str(tmp_path / "wal")).recover()
        assert _triples(recovered) == _triples(graph)
        assert _provenance_map(recovered) == _provenance_map(graph)

    def test_segment_rotation(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal", segment_bytes=4096)
        for index in range(300):
            graph.add_triple(Triple("p1", f"attr{index}", f"value-{index:04d}"))
        wal.close()
        segments = wal.segment_paths()
        assert len(segments) > 1
        recovered = TripleWAL(str(tmp_path / "wal")).recover()
        assert _triples(recovered) == _triples(graph)

    def test_truncated_tail_tolerated_on_last_segment(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal")
        graph.add_triple(Triple("t1", "linked", "p1"))
        graph.add_triple(Triple("t1", "linked2", "p2"))
        wal.close()
        last = wal.segment_paths()[-1]
        with open(last, "rb") as handle:
            blob = handle.read()
        with open(last, "wb") as handle:
            handle.write(blob[:-3])  # crash mid-append
        recovered = TripleWAL(str(tmp_path / "wal")).recover()
        assert Triple("t1", "linked", "p1") in recovered
        assert Triple("t1", "linked2", "p2") not in recovered

    def test_corrupt_record_raises_unless_allow_partial(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal")
        graph.add_triple(Triple("t1", "linked", "p1"))
        wal.close()
        last = wal.segment_paths()[-1]
        with open(last, "rb") as handle:
            blob = bytearray(handle.read())
        blob[-2] ^= 0xFF
        with open(last, "wb") as handle:
            handle.write(bytes(blob))
        reopened = TripleWAL(str(tmp_path / "wal"))
        with pytest.raises(CodecError, match="checksum mismatch"):
            reopened.recover()
        partial = reopened.recover(allow_partial=True)
        assert partial.has_entity("p1")

    def test_compact_folds_segments_into_base(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal", segment_bytes=4096)
        for index in range(300):
            graph.add_triple(Triple("p1", f"attr{index}", index))
        before = len(wal.segment_paths())
        assert before > 1
        compacted, stats = wal.compact()
        assert stats["n_segments_folded"] == before
        assert os.path.exists(wal.base_path)
        assert len(wal.segment_paths()) == 1  # one fresh empty segment
        assert _triples(compacted) == _triples(graph)
        # Recovery after compaction = base + empty segment.
        wal.close()
        recovered = TripleWAL(str(tmp_path / "wal")).recover()
        assert _triples(recovered) == _triples(graph)
        assert wal.stats()["base_bytes"] == stats["base_bytes"]

    def test_append_after_close_raises(self, tmp_path):
        wal = TripleWAL(str(tmp_path / "wal"))
        wal.close()
        with pytest.raises(ValueError, match="closed"):
            wal.append({"op": "add", "s": "a", "p": "b", "o": "c"})

    def test_rejects_tiny_segment_limit(self, tmp_path):
        with pytest.raises(ValueError, match="4096"):
            TripleWAL(str(tmp_path / "wal"), segment_bytes=10)

    def test_unknown_op_raises(self, tmp_path):
        wal = TripleWAL(str(tmp_path / "wal"))
        wal.append({"op": "timewarp"})
        wal.close()
        with pytest.raises(CodecError, match="unknown WAL op"):
            TripleWAL(str(tmp_path / "wal")).recover()

    def test_wal_suspended_during_merge_logs_single_record(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal")
        graph.merge_entities("p1", "p2")
        wal.close()
        reopened = TripleWAL(str(tmp_path / "wal"))
        records = []
        segments = reopened.segment_paths()
        for position, path in enumerate(segments):
            records.extend(
                reopened._iter_segment(path, position == len(segments) - 1, False)
            )
        merges = [record for record in records if record["op"] == "merge"]
        assert merges == [{"op": "merge", "keep": "p1", "drop": "p2"}]

    def test_stats_reports_sizes(self, tmp_path):
        graph, wal = self._logged_graph(tmp_path / "wal")
        graph.add_triple(Triple("t1", "linked", "p1"))
        stats = wal.stats()
        assert stats["n_segments"] >= 1
        assert stats["wal_bytes"] > 0
        assert stats["base_exists"] is False


class TestWALConcurrency:
    """compact()/checkpoint() vs concurrent appenders and readers.

    Before the WAL lock, a compact could delete segment files while an
    appender held the old handle (lost writes) or while recover() was
    mid-replay (FileNotFoundError) — the satellite fix this class pins.
    """

    def _wal_with_entity(self, wal_dir):
        wal = TripleWAL(str(wal_dir), segment_bytes=4096)
        wal.append(
            {"op": "entity", "id": "e0", "name": "E0", "class": "Thing", "aliases": []}
        )
        return wal

    def test_append_during_compact_is_never_lost(self, tmp_path):
        import threading

        wal = self._wal_with_entity(tmp_path / "wal")
        n_writers, n_per_writer = 4, 50
        errors = []
        start = threading.Barrier(n_writers + 2)

        def write(writer):
            start.wait()
            try:
                for index in range(n_per_writer):
                    wal.append(
                        {"op": "add", "s": "e0", "p": f"w{writer}", "o": index}
                    )
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        def fold():
            start.wait()
            try:
                for _ in range(5):
                    wal.compact()
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(writer,))
            for writer in range(n_writers)
        ] + [threading.Thread(target=fold)]
        for thread in threads:
            thread.start()
        start.wait()
        for thread in threads:
            thread.join()
        assert errors == []
        recovered = wal.recover()
        triples = sorted(recovered.query(), key=lambda t: t._sort_key())
        assert len(triples) == n_writers * n_per_writer
        for writer in range(n_writers):
            row = [t for t in triples if t.predicate == f"w{writer}"]
            assert sorted(t.object for t in row) == list(range(n_per_writer))

    def test_recover_during_compact_sees_consistent_state(self, tmp_path):
        import threading

        wal = self._wal_with_entity(tmp_path / "wal")
        for index in range(200):
            wal.append({"op": "add", "s": "e0", "p": "attr", "o": index})
        errors = []
        sizes = []
        done = threading.Event()

        def read():
            try:
                while not done.is_set():
                    sizes.append(len(wal.recover()))
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        reader = threading.Thread(target=read)
        reader.start()
        try:
            for _ in range(5):
                wal.compact()
        finally:
            done.set()
            reader.join()
        assert errors == []
        # Every concurrent recovery saw the full, settled triple count —
        # never a half-folded base or a vanished segment.
        assert set(sizes) == {200}

    def test_checkpoint_installs_caller_graph_as_base(self, tmp_path):
        wal = self._wal_with_entity(tmp_path / "wal")
        for index in range(10):
            wal.append({"op": "add", "s": "e0", "p": "attr", "o": index})
        ontology = Ontology(name="canon")
        ontology.add_class("Thing")
        canonical = KnowledgeGraph(ontology=ontology, name="canon", backend="columnar")
        canonical.add_entity("e0", "E0", "Thing")
        canonical.add_triple(Triple("e0", "only", "this"))
        stats = wal.checkpoint(canonical)
        assert stats["n_segments_folded"] >= 1
        assert os.path.exists(wal.base_path)
        assert len(wal.segment_paths()) == 1  # fresh empty segment
        recovered = TripleWAL(str(tmp_path / "wal")).recover()
        assert sorted(recovered.query(), key=lambda t: t._sort_key()) == [
            Triple("e0", "only", "this")
        ]


class TestSegmentTailReads:
    def test_read_segment_records_resumes_at_offset(self, tmp_path):
        wal = TripleWAL(str(tmp_path / "wal"), segment_bytes=1 << 20)
        wal.append({"op": "add", "s": "a", "p": "b", "o": 1})
        segment = wal.segment_paths()[0]
        records, offset = codec.read_segment_records(segment)
        assert [record["op"] for record in records] == ["add"]
        # No new frames: same offset, no records.
        again, offset_2 = codec.read_segment_records(segment, offset)
        assert again == [] and offset_2 == offset
        wal.append({"op": "add", "s": "a", "p": "b", "o": 2})
        fresh, _ = codec.read_segment_records(segment, offset)
        assert [record["o"] for record in fresh] == [2]

    def test_read_segment_records_tolerates_torn_tail(self, tmp_path):
        wal = TripleWAL(str(tmp_path / "wal"), segment_bytes=1 << 20)
        wal.append({"op": "add", "s": "a", "p": "b", "o": 1})
        wal.append({"op": "add", "s": "a", "p": "b", "o": 2})
        wal.close()
        segment = wal.segment_paths()[0]
        whole = os.path.getsize(segment)
        with open(segment, "rb") as handle:
            data = handle.read()
        torn = str(tmp_path / "torn.log")
        with open(torn, "wb") as handle:
            handle.write(data[: whole - 3])  # truncate inside the last frame
        records, offset = codec.read_segment_records(torn)
        assert [record["o"] for record in records] == [1]
        # Completing the tail makes the second record visible at the
        # returned offset.
        with open(torn, "ab") as handle:
            handle.write(data[whole - 3 :])
        rest, _ = codec.read_segment_records(torn, offset)
        assert [record["o"] for record in rest] == [2]
