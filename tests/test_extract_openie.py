"""Tests for the OpenIE extractor."""

import pytest

from repro.datagen.web import WebsiteConfig, generate_site
from repro.datagen.world import WorldConfig, build_world
from repro.extract.openie import OpenIEExtractor


@pytest.fixture(scope="module")
def site():
    world = build_world(WorldConfig(n_people=40, n_movies=60, n_songs=10, seed=21))
    return generate_site(
        world,
        WebsiteConfig(name="movies.example.com", domain="Movie", n_pages=20, seed=22),
    )


class TestOpenIE:
    def test_finds_open_attributes(self, site):
        """OpenIE's promise: attributes absent from the seed ontology."""
        extractor = OpenIEExtractor()
        found_open = 0
        for page in site.pages:
            pairs = {(p.attribute, p.value) for p in extractor.extract(page.root)}
            for label, value in page.open_truth.items():
                if (label, value) in pairs:
                    found_open += 1
        assert found_open > 0

    def test_finds_closed_pairs_by_label(self, site):
        extractor = OpenIEExtractor()
        page = next(p for p in site.pages if p.closed_truth)
        pairs = extractor.extract(page.root)
        values = {pair.value for pair in pairs}
        overlap = values & set(page.closed_truth.values())
        assert overlap

    def test_extracts_boilerplate_too(self, site):
        """The precision trap: widget chrome looks like knowledge."""
        extractor = OpenIEExtractor()
        pairs = extractor.extract(site.pages[0].root)
        attributes = {pair.attribute for pair in pairs}
        assert "Share" in attributes or "Follow" in attributes or "Rating" in attributes

    def test_accuracy_below_closedie_band(self, site):
        """Volume up, accuracy down — the Fig. 3 contrast."""
        extractor = OpenIEExtractor()
        correct = total = 0
        for page in site.pages:
            truth_pairs = {
                (label.lower(), value.lower())
                for label, value in list(page.open_truth.items())
            }
            # Closed attributes appear under their site label; accept the
            # value regardless of label for generosity.
            truth_values = {value.lower() for value in page.closed_truth.values()}
            for pair in extractor.extract(page.root):
                total += 1
                if (
                    pair.attribute.lower(),
                    pair.value.lower(),
                ) in truth_pairs or pair.value.lower() in truth_values:
                    correct += 1
        accuracy = correct / total
        assert accuracy < 0.9  # far below ClosedIE

    def test_seed_boost_raises_confidence(self, site):
        extractor = OpenIEExtractor()
        page = next(p for p in site.pages if p.closed_truth)
        plain = {
            (p.attribute.lower(), p.value.lower()): p.confidence
            for p in extractor.extract(page.root)
        }
        # Seed one closed pair using its on-page label.
        from repro.datagen.web import LABEL_STYLES

        seed_pairs = []
        for attribute, value in page.closed_truth.items():
            label = LABEL_STYLES[attribute][site.config.label_style]
            seed_pairs.append((label, value))
        boosted = {
            (p.attribute.lower(), p.value.lower()): p.confidence
            for p in extractor.extract(page.root, seed_pairs=seed_pairs)
        }
        shared = set(plain) & set(boosted)
        assert any(boosted[key] > plain[key] for key in shared)

    def test_deduplication_keeps_best(self, site):
        extractor = OpenIEExtractor()
        pairs = extractor.extract(site.pages[0].root)
        keys = [(p.attribute.lower(), p.value.lower()) for p in pairs]
        assert len(keys) == len(set(keys))

    def test_min_repetition_threshold(self):
        from repro.extract.dom import element, text_node

        root = element("html")
        body = root.append(element("body"))
        container = body.append(element("div"))
        row = container.append(element("div"))
        row.append(element("span")).append(text_node("Only:"))
        row.append(element("span")).append(text_node("one"))
        assert OpenIEExtractor(min_repetition=2).extract(root) == []
