"""Tests for the Zipf popularity model."""

import numpy as np
import pytest

from repro.datagen.popularity import BANDS, PopularityModel, popularity_band


class TestPopularityBand:
    def test_thirds(self):
        assert popularity_band(0, 9) == "head"
        assert popularity_band(3, 9) == "torso"
        assert popularity_band(8, 9) == "tail"

    def test_bounds(self):
        with pytest.raises(ValueError):
            popularity_band(9, 9)
        with pytest.raises(ValueError):
            popularity_band(0, 0)


class TestPopularityModel:
    def _model(self, n=30):
        return PopularityModel([f"e{i}" for i in range(n)], seed=3)

    def test_weights_sum_to_one(self):
        model = self._model()
        total = sum(model.weight(f"e{i}") for i in range(30))
        assert total == pytest.approx(1.0)

    def test_rank_zero_has_max_weight(self):
        model = self._model()
        top = [item for item in (f"e{i}" for i in range(30)) if model.rank(item) == 0][0]
        assert model.weight(top) == max(model.weight(f"e{i}") for i in range(30))

    def test_bands_partition_items(self):
        model = self._model()
        all_items = set()
        for band in BANDS:
            all_items.update(model.items_in_band(band))
        assert len(all_items) == 30

    def test_band_consistent_with_rank(self):
        model = self._model()
        for item in model.items_in_band("head"):
            assert model.rank(item) < 10

    def test_sampling_favors_head(self):
        model = self._model()
        rng = np.random.default_rng(0)
        samples = model.sample(rng, 3000)
        head = set(model.items_in_band("head"))
        head_fraction = sum(1 for item in samples if item in head) / len(samples)
        assert head_fraction > 0.6

    def test_coverage_monotone_in_popularity(self):
        model = self._model()
        by_rank = sorted((f"e{i}" for i in range(30)), key=model.rank)
        coverages = [model.coverage_probability(item, base=0.9) for item in by_rank]
        assert coverages == sorted(coverages, reverse=True)

    def test_coverage_floor(self):
        model = self._model(n=1000)
        tail_item = model.items_in_band("tail")[-1]
        assert model.coverage_probability(tail_item, base=0.9, floor=0.05) >= 0.05

    def test_unknown_item_raises(self):
        model = self._model()
        with pytest.raises(KeyError):
            model.weight("nope")
        with pytest.raises(KeyError):
            model.rank("nope")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PopularityModel([])

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError):
            self._model().items_in_band("middle")

    def test_deterministic_given_seed(self):
        first = PopularityModel(["a", "b", "c"], seed=5)
        second = PopularityModel(["a", "b", "c"], seed=5)
        assert all(first.rank(item) == second.rank(item) for item in "abc")
