"""End-to-end integration tests: the Fig. 4 architectures run whole."""

import pytest

from repro.datagen.world import WorldConfig, build_world
from repro.evalx.architectures import (
    build_entity_based_kg,
    build_text_rich_kg,
    evaluate_entity_kg_accuracy,
)


@pytest.fixture(scope="module")
def entity_context():
    world = build_world(WorldConfig(n_people=100, n_movies=70, n_songs=30, seed=51))
    return build_entity_based_kg(world, label_budget=300, n_sites=3, pages_per_site=15, seed=1)


class TestEntityBasedArchitecture:
    def test_all_stages_ran(self, entity_context):
        pipeline = entity_context.artifacts["pipeline"]
        names = [report.stage_name for report in pipeline.reports]
        assert names == [
            "transform_curated",
            "integrate_second_source",
            "fuse_values",
            "extract_semistructured",
        ]

    def test_each_stage_grows_or_curates_knowledge(self, entity_context):
        metrics = entity_context.metrics
        assert metrics["transform.triples"] > 0
        assert metrics["integrate.triples_added"] > 0
        assert metrics["extract.triples_added"] > 0

    def test_integration_links_entities(self, entity_context):
        assert entity_context.metrics["integrate.matched"] > 10
        assert entity_context.metrics["integrate.new_entities"] > 0

    def test_final_kg_accuracy(self, entity_context):
        accuracy = evaluate_entity_kg_accuracy(entity_context)
        assert accuracy > 0.85  # curated + integrated + extracted stays clean

    def test_kg_has_connected_structure(self, entity_context):
        graph = entity_context.artifacts["kg"]
        some_entity = next(iter(graph.entities("Movie"))).entity_id
        assert graph.query(subject=some_entity)


class TestTextRichArchitecture:
    def test_end_to_end(self, product_domain, behavior_log):
        context = build_text_rich_kg(product_domain, behavior=behavior_log, n_epochs=3, seed=2)
        report = context.artifacts["report"]
        assert report.n_final_triples > report.n_catalog_triples
        kg = context.artifacts["kg"]
        assert kg.stats()["n_topics"] == len(product_domain.products)
