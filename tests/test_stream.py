"""Streaming construction: sources, ingest, publishing, and equivalence.

The keystone contract (ISSUE 10): draining every delta and finalizing
must reproduce the one-shot batch build *byte-for-byte* — graph state,
provenance, lineage ledger, and ``.rkgs`` snapshot bytes — for any
micro-batch split and delta order.  Alongside it, the operational
properties: per-delta work stays sub-linear in graph size, the WAL
follower's replica tracks the live graph, and the publisher records
staleness / catch-up-lag on every hot swap.
"""

import os
import threading

import pytest

from repro.core import codec
from repro.core.codec import TripleWAL
from repro.core.partition import fixture_sources, partitioned_pipeline
from repro.datagen.sources import SourceRecord, StructuredSource
from repro.obs import enabled_scope, reset_all
from repro.obs.lineage import get_ledger
from repro.serve.snapshot import SnapshotStore
from repro.stream import (
    Delta,
    DeltaQueue,
    StreamIngestor,
    StreamPublisher,
    WALFollower,
    enqueue_all,
    micro_batches,
    percentiles,
)

SOURCES = fixture_sources(n_people=25, n_movies=15, seed=11)
N_RECORDS = sum(len(source) for source in SOURCES)


def _public_state(graph):
    graph._materialize_provenance()
    triples = sorted(graph.query(), key=lambda t: t._sort_key())
    return {
        "triples": triples,
        "provenance": {t: graph.provenance(t) for t in triples},
        "entities": sorted(
            (e.entity_id, e.name, e.entity_class, tuple(sorted(e.aliases)))
            for e in graph.entities()
        ),
    }


def _snapshot_bytes(graph, tmp_path, tag):
    path = str(tmp_path / f"{tag}.rkgs")
    codec.save_graph(graph, path, include_lineage=False)
    with open(path, "rb") as handle:
        return handle.read()


def _batch_reference(sources):
    reset_all()
    with enabled_scope():
        pipeline, context = partitioned_pipeline(sources, name="stream-ref")
        context = pipeline.run(context, partitions=1)
        ledger_state = get_ledger().export_state()
    reset_all()
    return context.artifacts["kg"], ledger_state


def _stream(sources, batch_size, tmp_path, order_seed=None, tag="s"):
    """Drain the sources through the ingestor; returns (outcome, ledger,
    per-delta reports, ingestor, wal)."""
    reset_all()
    with enabled_scope():
        wal = TripleWAL(str(tmp_path / f"wal-{tag}"))
        ingestor = StreamIngestor(wal=wal)
        reports = [
            ingestor.ingest(delta)
            for delta in micro_batches(sources, batch_size, order_seed=order_seed)
        ]
    reset_all()
    with enabled_scope():
        outcome = ingestor.finalize()
        ledger_state = get_ledger().export_state()
    reset_all()
    return outcome, ledger_state, reports, ingestor, wal


class TestDeltaSources:
    def test_micro_batches_partition_the_records(self):
        deltas = micro_batches(SOURCES, 7)
        assert [delta.seqno for delta in deltas] == list(range(len(deltas)))
        flattened = [record for delta in deltas for record in delta.records]
        original = [record for source in SOURCES for record in source.records]
        assert flattened == original
        assert all(len(delta) <= 7 for delta in deltas)

    def test_micro_batches_carry_only_present_field_maps(self):
        deltas = micro_batches(SOURCES, 3)
        for delta in deltas:
            assert set(delta.field_maps) == {r.source for r in delta.records}

    def test_micro_batches_reject_nonpositive_batch_size(self):
        with pytest.raises(ValueError, match="positive"):
            micro_batches(SOURCES, 0)

    def test_queue_fifo_close_and_pending_records(self):
        queue = DeltaQueue()
        deltas = micro_batches(SOURCES, 10)
        enqueue_all(queue, deltas)
        assert queue.depth() == len(deltas)
        assert queue.pending_records() == N_RECORDS
        with pytest.raises(ValueError, match="closed"):
            queue.put(deltas[0])
        drained = []
        while (delta := queue.get()) is not None:
            drained.append(delta)
        assert drained == deltas
        assert queue.pending_records() == 0
        assert queue.get(timeout=0.01) is None  # closed and empty

    def test_queue_get_timeout_on_open_empty_queue(self):
        queue = DeltaQueue()
        assert queue.get(timeout=0.01) is None

    def test_queue_is_thread_safe_across_producer_consumer(self):
        queue = DeltaQueue()
        deltas = micro_batches(SOURCES, 5)
        consumed = []

        def consume():
            while (delta := queue.get(timeout=5)) is not None:
                consumed.append(delta)

        consumer = threading.Thread(target=consume)
        consumer.start()
        enqueue_all(queue, deltas)
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert [d.seqno for d in consumed] == [d.seqno for d in deltas]


class TestStreamedBatchEquivalence:
    def test_streamed_equals_batch_on_all_surfaces(self, tmp_path):
        batch_graph, batch_ledger = _batch_reference(SOURCES)
        outcome, ledger, _, _, _ = _stream(SOURCES, 9, tmp_path)
        assert _public_state(outcome.graph) == _public_state(batch_graph)
        assert ledger == batch_ledger
        assert _snapshot_bytes(outcome.graph, tmp_path, "stream") == _snapshot_bytes(
            batch_graph, tmp_path, "batch"
        )

    def test_shuffled_delta_order_is_identical(self, tmp_path):
        batch_graph, batch_ledger = _batch_reference(SOURCES)
        outcome, ledger, _, _, _ = _stream(
            SOURCES, 4, tmp_path, order_seed=99, tag="shuffled"
        )
        assert _public_state(outcome.graph) == _public_state(batch_graph)
        assert ledger == batch_ledger

    def test_single_delta_stream_is_identical(self, tmp_path):
        batch_graph, _ = _batch_reference(SOURCES)
        outcome, _, reports, _, _ = _stream(
            SOURCES, N_RECORDS, tmp_path, tag="one"
        )
        assert len(reports) == 1
        assert _public_state(outcome.graph) == _public_state(batch_graph)

    def test_changed_record_redelivery_wins(self, tmp_path):
        """A re-delivered record id replaces its earlier version, and the
        finalized stream matches a batch build over the *final* records."""
        changed = []
        for source in SOURCES:
            records = list(source.records)
            changed.append(
                StructuredSource(
                    name=source.name,
                    field_map=dict(source.field_map),
                    records=records,
                )
            )
        victim = changed[0].records[0]
        updated = SourceRecord(
            record_id=victim.record_id,
            source=victim.source,
            entity_class=victim.entity_class,
            fields={**victim.fields, "birth_year": 1999},
            world_id=victim.world_id,
        )
        changed[0].records[0] = updated
        batch_graph, batch_ledger = _batch_reference(changed)

        # Stream the ORIGINAL records, then re-deliver the updated one.
        reset_all()
        with enabled_scope():
            wal = TripleWAL(str(tmp_path / "wal-redelivery"))
            ingestor = StreamIngestor(wal=wal)
            for delta in micro_batches(SOURCES, 11):
                ingestor.ingest(delta)
            ingestor.ingest(
                Delta(
                    seqno=10_000,
                    records=[updated],
                    field_maps={changed[0].name: dict(changed[0].field_map)},
                )
            )
        reset_all()
        with enabled_scope():
            outcome = ingestor.finalize()
            ledger = get_ledger().export_state()
        reset_all()
        assert _public_state(outcome.graph) == _public_state(batch_graph)
        assert ledger == batch_ledger

    def test_checkpoint_persists_canonical_bytes(self, tmp_path):
        batch_graph, _ = _batch_reference(SOURCES)
        outcome, _, _, _, wal = _stream(SOURCES, 8, tmp_path, tag="ckpt")
        wal.checkpoint(outcome.graph)
        recovered = TripleWAL(wal.directory).recover()
        assert _public_state(recovered) == _public_state(batch_graph)


class TestIncrementalWork:
    def test_per_delta_fused_groups_are_sublinear(self, tmp_path):
        """After warm-up, one small delta re-fuses only the ``(s, p)``
        groups it touches — a small fraction of all fused groups."""
        sources = fixture_sources(n_people=60, n_movies=40, seed=11)
        reset_all()
        with enabled_scope():
            ingestor = StreamIngestor()
            deltas = micro_batches(sources, 5)
            warm_reports = [ingestor.ingest(delta) for delta in deltas[:-1]]
            tail_report = ingestor.ingest(deltas[-1])
        reset_all()
        total_groups = tail_report.n_groups_total
        assert total_groups > 100
        assert warm_reports  # the fixture produced more than one delta
        # The last delta touches far fewer groups than exist overall.
        assert tail_report.n_fused_groups < total_groups / 4
        assert tail_report.n_fused_groups <= 6 * len(deltas[-1].records)

    def test_ledger_identifies_refused_groups(self):
        """With lineage on, re-fusion consults the ledger's fusion
        verdicts for merged-away roots (fused_attributes)."""
        reset_all()
        with enabled_scope():
            ingestor = StreamIngestor()
            for delta in micro_batches(SOURCES, 12):
                ingestor.ingest(delta)
            ledger = get_ledger()
            roots = {root for root, _ in ingestor._group_mass}
            some_root = sorted(roots)[0]
            assert ledger.fused_attributes(some_root) == sorted(
                ingestor._fused[some_root]
            )
        reset_all()

    def test_relink_on_block_overflow_keeps_equivalence(self, tmp_path):
        """Push one blocking key over the cap mid-stream: the ingestor
        falls back to a full re-link and equivalence still holds."""
        crowd = StructuredSource(name="crowd")
        cap = StreamIngestor().build.strategy.max_block_size
        for index in range(cap + 20):
            crowd.records.append(
                SourceRecord(
                    record_id=f"c:{index}",
                    source="crowd",
                    entity_class="Person",
                    fields={
                        "name": f"sharedtoken only{index}",
                        "birth_year": 1900 + index,
                    },
                    world_id=f"w{index}",
                )
            )
        batch_graph, batch_ledger = _batch_reference([crowd])
        outcome, ledger, reports, ingestor, _ = _stream(
            [crowd], 30, tmp_path, tag="overflow"
        )
        assert ingestor.n_relinks >= 1
        assert any(report.relinked for report in reports)
        assert _public_state(outcome.graph) == _public_state(batch_graph)
        assert ledger == batch_ledger


class TestFollowerAndPublisher:
    def test_follower_replica_tracks_live_graph(self, tmp_path):
        reset_all()
        with enabled_scope():
            wal = TripleWAL(str(tmp_path / "wal-follow"))
            ingestor = StreamIngestor(wal=wal)
            follower = WALFollower(str(tmp_path / "wal-follow"))
            for delta in micro_batches(SOURCES, 10):
                ingestor.ingest(delta)
                follower.poll()
                assert _public_state(follower.graph) == _public_state(
                    ingestor.graph
                )
        reset_all()

    def test_follower_rebootstraps_after_checkpoint(self, tmp_path):
        outcome, _, _, ingestor, wal = _stream(SOURCES, 10, tmp_path, tag="boot")
        follower = WALFollower(wal.directory)
        assert _public_state(follower.graph) == _public_state(ingestor.graph)
        bootstraps_before = follower.n_bootstraps
        wal.checkpoint(outcome.graph)
        assert follower.poll() > 0
        assert follower.n_bootstraps == bootstraps_before + 1
        assert _public_state(follower.graph) == _public_state(outcome.graph)

    def test_publisher_hot_swaps_and_records_freshness(self, tmp_path):
        reset_all()
        with enabled_scope():
            wal = TripleWAL(str(tmp_path / "wal-pub"))
            ingestor = StreamIngestor(wal=wal)
            store = SnapshotStore(n_shards=2)
            publisher = StreamPublisher(store, WALFollower(str(tmp_path / "wal-pub")))
            versions = []
            deltas = micro_batches(SOURCES, 15)
            remaining = N_RECORDS
            for delta in deltas:
                ingestor.ingest(delta)
                remaining -= len(delta)
                info = publisher.publish(queue_records=remaining)
                versions.append(info["version"])
            from repro.obs.metrics import get_registry

            snapshot = get_registry().snapshot()
        reset_all()
        assert versions == list(range(1, len(deltas) + 1))
        current = store.current()
        assert current is not None and current.version == versions[-1]
        assert _public_state(current.graph) == _public_state(ingestor.graph)
        assert publisher.n_publishes == len(deltas)
        assert len(publisher.staleness_samples) == len(deltas)
        # Catch-up lag decays to zero as the queue drains.
        assert publisher.catchup_samples[0] > publisher.catchup_samples[-1] == 0
        freshness = publisher.freshness()
        assert freshness["staleness_p95_s"] >= freshness["staleness_p50_s"] >= 0
        histograms = snapshot.get("histograms", snapshot)
        assert any("stream.staleness_seconds" in key for key in histograms)

    def test_publish_if_changed_skips_quiet_polls(self, tmp_path):
        reset_all()
        with enabled_scope():
            wal = TripleWAL(str(tmp_path / "wal-quiet"))
            ingestor = StreamIngestor(wal=wal)
            publisher = StreamPublisher(
                SnapshotStore(), WALFollower(str(tmp_path / "wal-quiet"))
            )
            assert publisher.publish_if_changed() is not None  # first boot
            assert publisher.publish_if_changed() is None  # nothing new
            ingestor.ingest(micro_batches(SOURCES, N_RECORDS)[0])
            assert publisher.publish_if_changed() is not None
        reset_all()

    def test_percentiles_empty_and_single(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0}
        assert percentiles([3.0]) == {"p50": 3.0, "p95": 3.0}
