"""Tests for OpenTag-style product extraction."""

import pytest

from repro.ml.tagger import OUTSIDE
from repro.products.opentag import (
    OpenTagModel,
    distant_bio_tags,
    gold_bio_tags,
    mentioned_attributes,
    train_test_split,
)


@pytest.fixture(scope="module")
def coffee(product_domain):
    products = product_domain.by_type("Coffee")
    return train_test_split(products, test_fraction=0.3, seed=1)


class TestLabeling:
    def test_gold_tags_match_spans(self, product_domain):
        product = product_domain.products[0]
        attributes = set(product.true_values)
        tags = gold_bio_tags(product.title, attributes)
        assert len(tags) == len(product.title.tokens)
        labeled = {tag[2:] for tag in tags if tag != OUTSIDE}
        span_attributes = {attribute for _s, _e, attribute in product.title.spans}
        assert labeled == span_attributes

    def test_gold_tags_filter_attributes(self, product_domain):
        product = product_domain.products[0]
        tags = gold_bio_tags(product.title, set())
        assert set(tags) == {OUTSIDE}

    def test_distant_tags_follow_catalog(self, product_domain):
        for product in product_domain.products[:50]:
            tags = distant_bio_tags(
                product.title, product.catalog_values, set(product.true_values)
            )
            for tag in tags:
                if tag != OUTSIDE:
                    assert tag[2:] in product.catalog_values

    def test_distant_tags_empty_catalog(self, product_domain):
        product = product_domain.products[0]
        tags = distant_bio_tags(product.title, {}, {"flavor"})
        assert set(tags) == {OUTSIDE}

    def test_mentioned_attributes(self, product_domain):
        product = product_domain.products[0]
        mentioned = mentioned_attributes(product)
        assert mentioned <= set(product.true_values)


class TestOpenTagModel:
    def test_gold_supervision_production_band(self, coffee):
        train, test = coffee
        model = OpenTagModel(attributes=("flavor", "roast"), n_epochs=6, seed=1).fit(
            train, supervision="gold"
        )
        f1 = model.micro_f1(test)
        assert f1 > 0.8  # Sec. 3.2: raw NER 85-95%

    def test_distant_supervision_weaker_but_useful(self, coffee):
        train, test = coffee
        gold = OpenTagModel(attributes=("flavor",), n_epochs=6, seed=1).fit(
            train, supervision="gold"
        )
        distant = OpenTagModel(attributes=("flavor",), n_epochs=6, seed=1).fit(
            train, supervision="distant"
        )
        f_gold = gold.micro_f1(test)
        f_distant = distant.micro_f1(test)
        assert f_distant > 0.4
        assert f_gold >= f_distant - 0.05

    def test_extract_returns_known_attributes_only(self, coffee):
        train, test = coffee
        model = OpenTagModel(attributes=("flavor",), n_epochs=4, seed=1).fit(train)
        for product in test[:10]:
            assert set(model.extract(product)) <= {"flavor"}

    def test_unknown_supervision_rejected(self, coffee):
        train, _test = coffee
        with pytest.raises(ValueError):
            OpenTagModel(attributes=("flavor",)).fit(train, supervision="psychic")

    def test_unfitted_raises(self, product_domain):
        with pytest.raises(RuntimeError):
            OpenTagModel(attributes=("flavor",)).extract(product_domain.products[0])

    def test_evaluate_confusions_per_attribute(self, coffee):
        train, test = coffee
        model = OpenTagModel(attributes=("flavor", "roast"), n_epochs=4, seed=1).fit(train)
        confusions = model.evaluate(test)
        assert set(confusions) == {"flavor", "roast"}


class TestSplit:
    def test_split_fractions(self, product_domain):
        train, test = train_test_split(product_domain.products, 0.25, seed=2)
        assert len(test) == int(len(product_domain.products) * 0.25)
        assert len(train) + len(test) == len(product_domain.products)

    def test_split_disjoint(self, product_domain):
        train, test = train_test_split(product_domain.products, 0.5, seed=2)
        assert not ({p.product_id for p in train} & {p.product_id for p in test})

    def test_split_deterministic(self, product_domain):
        first = train_test_split(product_domain.products, 0.3, seed=3)
        second = train_test_split(product_domain.products, 0.3, seed=3)
        assert [p.product_id for p in first[1]] == [p.product_id for p in second[1]]
