"""Tests for the Prometheus/JSON exporters (repro.obs.export)."""

import json
import re

import pytest

from repro.obs.export import (
    DOCUMENT_VERSION,
    build_document,
    dump_document,
    prometheus_name,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)


def _parse_prometheus(text):
    """Parse exposition text into (types, samples); raises on bad lines."""
    types = {}
    samples = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable sample line: {line!r}"
        samples.append(
            (match.group("name"), match.group("labels") or "", float(match.group("value")))
        )
    return types, samples


def _loaded_registry():
    registry = MetricsRegistry()
    registry.counter("fusion.accepted").inc(12)
    registry.gauge("kbt.trust.imdb").set(0.93)
    histogram = registry.histogram("stage.seconds", buckets=[0.1, 1.0, 10.0])
    for value in (0.05, 0.5, 0.7, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestPrometheusNames:
    def test_dots_become_underscores_with_prefix(self):
        assert prometheus_name("fusion.accu.accepted") == "repro_fusion_accu_accepted"

    def test_existing_prefix_not_doubled(self):
        assert prometheus_name("repro_x") == "repro_x"

    def test_arbitrary_junk_sanitized(self):
        name = prometheus_name("quality.kg-1/coverage %")
        assert re.fullmatch(r"[a-zA-Z_][a-zA-Z0-9_]*", name)


class TestRenderPrometheus:
    def test_output_parses_and_types_declared(self):
        types, samples = _parse_prometheus(render_prometheus(_loaded_registry()))
        assert types["repro_fusion_accepted"] == "counter"
        assert types["repro_kbt_trust_imdb"] == "gauge"
        assert types["repro_stage_seconds"] == "histogram"
        assert ("repro_fusion_accepted", "", 12.0) in samples
        assert ("repro_kbt_trust_imdb", "", 0.93) in samples

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        _, samples = _parse_prometheus(render_prometheus(_loaded_registry()))
        buckets = [
            (labels, value)
            for name, labels, value in samples
            if name == "repro_stage_seconds_bucket"
        ]
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative => monotone
        assert buckets[-1][0] == '{le="+Inf"}'
        count = [v for n, _, v in samples if n == "repro_stage_seconds_count"][0]
        assert buckets[-1][1] == count == 5.0
        total = [v for n, _, v in samples if n == "repro_stage_seconds_sum"][0]
        assert total == pytest.approx(56.25)

    def test_empty_histogram_exports_zero_series(self):
        registry = MetricsRegistry()
        registry.histogram("empty.h", buckets=[1.0])
        types, samples = _parse_prometheus(render_prometheus(registry))
        assert types["repro_empty_h"] == "histogram"
        assert ("repro_empty_h_count", "", 0.0) in samples
        assert ("repro_empty_h_sum", "", 0.0) in samples

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_quality_snapshots_export_labeled_gauges(self):
        text = render_prometheus(
            MetricsRegistry(),
            quality_snapshots=[
                {"name": "movies", "n_triples": 42, "coverage": 0.8, "accuracy": None},
            ],
        )
        types, samples = _parse_prometheus(text)
        assert types["repro_quality_n_triples"] == "gauge"
        assert ("repro_quality_n_triples", '{snapshot="movies"}', 42.0) in samples
        assert ("repro_quality_coverage", '{snapshot="movies"}', 0.8) in samples
        assert all(name != "repro_quality_accuracy" for name, _, _ in samples)


class TestExpositionHygiene:
    """The format fine print: one TYPE per family, escaped label values."""

    TWO_SNAPSHOTS = [
        {"name": "movies", "n_triples": 42, "coverage": 0.8},
        {"name": "products", "n_triples": 7, "coverage": 0.5},
    ]

    def test_type_declared_once_per_family_across_label_sets(self):
        text = render_prometheus(
            MetricsRegistry(), quality_snapshots=self.TWO_SNAPSHOTS
        )
        for family in ("repro_quality_n_triples", "repro_quality_coverage"):
            assert text.count(f"# TYPE {family} gauge") == 1
        _, samples = _parse_prometheus(text)
        labels = {
            labels for name, labels, _ in samples if name == "repro_quality_n_triples"
        }
        assert labels == {'{snapshot="movies"}', '{snapshot="products"}'}

    def test_type_precedes_first_sample_of_family(self):
        lines = render_prometheus(
            MetricsRegistry(), quality_snapshots=self.TWO_SNAPSHOTS
        ).splitlines()
        first_type = lines.index("# TYPE repro_quality_n_triples gauge")
        first_sample = next(
            index
            for index, line in enumerate(lines)
            if line.startswith("repro_quality_n_triples{")
        )
        assert first_type < first_sample

    @pytest.mark.parametrize(
        "name",
        [
            'back\\slash and "quotes"',
            "two\nlines",
            'all \\ of "it"\ntogether\\n',
        ],
    )
    def test_label_values_escape_and_round_trip(self, name):
        text = render_prometheus(
            MetricsRegistry(), quality_snapshots=[{"name": name, "n_triples": 1}]
        )
        # Every line must still be a well-formed single-line sample: a raw
        # newline inside a label value would shear the exposition apart.
        types, samples = _parse_prometheus(text)
        assert types["repro_quality_n_triples"] == "gauge"
        label_blobs = [
            labels for n, labels, _ in samples if n == "repro_quality_n_triples"
        ]
        assert len(label_blobs) == 1
        match = re.fullmatch(r'\{snapshot="((?:[^"\\]|\\.)*)"\}', label_blobs[0])
        assert match is not None
        assert _unescape_label(match.group(1)) == name


def _unescape_label(value):
    """Invert the exposition-format label escaping (the scraper's view)."""
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


class TestJsonDocument:
    def test_document_shape_and_version(self):
        document = build_document(
            experiment_id="FIG4A",
            spans=[{"name": "root", "span_id": "s1", "parent_id": None}],
            metrics_snapshot={"counters": {"c": 1.0}, "gauges": {}, "histograms": {}},
            quality_snapshots=[{"name": "kg", "n_triples": 3}],
            lineage_samples=[{"subject": "m1", "predicate": "p", "object": "o"}],
        )
        assert document["version"] == DOCUMENT_VERSION
        assert document["experiment_id"] == "FIG4A"
        assert document["baseline_diff"] is None
        round_tripped = json.loads(dump_document(document))
        assert round_tripped == document

    def test_dump_is_deterministic(self):
        document = build_document(
            experiment_id="X",
            spans=[],
            metrics_snapshot={"counters": {"b": 2.0, "a": 1.0}},
        )
        assert dump_document(document) == dump_document(json.loads(dump_document(document)))
