"""Tests for run reports (repro.evalx.report) and `repro report`."""

import json

import pytest

from repro.cli import main
from repro.evalx.report import (
    build_report,
    diff_against_baseline,
    load_baseline,
    render_span_tree,
)
from repro.evalx.tracerun import TraceResult


def _tiny_workload():
    """A deterministic pipeline producing triples, lineage, and a snapshot."""
    from repro.core.graph import KnowledgeGraph
    from repro.core.ontology import Ontology
    from repro.core.pipeline import ConstructionPipeline
    from repro.core.triple import Provenance, Triple
    from repro.integrate.fusion import AccuFusion, ValueClaim

    ontology = Ontology()
    ontology.add_class("Movie")
    graph = KnowledgeGraph(ontology=ontology, name="tiny")

    def build(context):
        for index in range(4):
            graph.add_entity(f"m{index}", f"Movie {index}", "Movie")
            graph.add_triple(
                Triple(f"m{index}", "release_year", "1995"),
                Provenance(source="imdb", extractor="wrapper", confidence=0.9),
            )
        context.artifacts["kg"] = graph

    def fuse(context):
        claims = [
            ValueClaim("m0", "release_year", "1995", "imdb"),
            ValueClaim("m0", "release_year", "1995", "freebase"),
            ValueClaim("m0", "release_year", "1996", "junk"),
        ]
        AccuFusion(n_iterations=3).fuse(claims)

    ConstructionPipeline("tiny").add_function("build", build).add_function(
        "fuse", fuse
    ).run()


def _smaller_workload():
    """The same pipeline but degraded: fewer entities/triples (a regression)."""
    from repro.core.graph import KnowledgeGraph
    from repro.core.ontology import Ontology
    from repro.core.pipeline import ConstructionPipeline
    from repro.core.triple import Provenance, Triple

    ontology = Ontology()
    ontology.add_class("Movie")
    graph = KnowledgeGraph(ontology=ontology, name="tiny")

    def build(context):
        graph.add_entity("m0", "Movie 0", "Movie")
        graph.add_triple(
            Triple("m0", "release_year", "1995"),
            Provenance(source="imdb", confidence=0.9),
        )
        context.artifacts["kg"] = graph

    ConstructionPipeline("tiny").add_function("build", build).run()


class TestSpanTree:
    def test_nesting_by_parent_id(self):
        spans = [
            {"span_id": "s2", "parent_id": "s1", "name": "child",
             "started_unix": 2.0, "wall_seconds": 0.1, "cpu_seconds": 0.1},
            {"span_id": "s1", "parent_id": None, "name": "root",
             "started_unix": 1.0, "wall_seconds": 0.5, "cpu_seconds": 0.4},
            {"span_id": "s3", "parent_id": "s1", "name": "child2",
             "started_unix": 3.0, "wall_seconds": 0.1, "cpu_seconds": 0.1},
        ]
        lines = render_span_tree(spans)
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child ")
        assert lines[2].startswith("  child2")

    def test_orphan_span_treated_as_root(self):
        lines = render_span_tree(
            [{"span_id": "s9", "parent_id": "missing", "name": "orphan",
              "started_unix": 0.0, "wall_seconds": 0.0, "cpu_seconds": 0.0}]
        )
        assert lines[0].startswith("orphan")

    def test_empty_spans(self):
        assert render_span_tree([]) == []


class TestBaselineDiff:
    def test_pairs_snapshots_by_name(self):
        current = [
            {"name": "a", "n_triples": 10, "n_entities": 5},
            {"name": "only_current", "n_triples": 1, "n_entities": 1},
        ]
        baseline = [
            {"name": "a", "n_triples": 10, "n_entities": 5},
            {"name": "only_baseline", "n_triples": 9, "n_entities": 9},
        ]
        diffs = diff_against_baseline(current, baseline)
        assert [diff.snapshot_name for diff in diffs] == ["a"]
        assert not diffs[0].has_regressions

    def test_detects_drop(self):
        current = [{"name": "a", "n_triples": 5, "n_entities": 5}]
        baseline = [{"name": "a", "n_triples": 10, "n_entities": 5}]
        (diff,) = diff_against_baseline(current, baseline)
        assert diff.has_regressions

    def test_load_baseline_missing_returns_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None


class TestRunReport:
    def _result(self):
        return TraceResult(
            experiment_id="T-TINY",
            spans=[
                {"kind": "span", "span_id": "s1", "parent_id": None, "name": "root",
                 "started_unix": 1.0, "wall_seconds": 0.5, "cpu_seconds": 0.4,
                 "trace_id": "t1", "tags": {}},
            ],
            snapshot={
                "counters": {"fusion.accepted": 3.0},
                "gauges": {},
                "histograms": {
                    "stage.seconds": {"count": 2, "sum": 0.4, "mean": 0.2, "min": 0.1,
                                      "max": 0.3, "p50": 0.2, "p95": 0.3, "p99": 0.3}
                },
            },
            quality=[{"name": "tiny", "n_triples": 4, "n_entities": 4}],
            lineage=[{
                "subject": "m0", "predicate": "release_year", "object": "1995",
                "verdict": "accepted",
                "events": [
                    {"sequence": 1, "kind": "observation", "stage": "graph.add_triple",
                     "detail": {"source": "imdb", "extractor": "wrapper"}},
                    {"sequence": 2, "kind": "fusion", "stage": "fusion.accu",
                     "detail": {"verdict": "accepted", "confidence": 0.97}},
                ],
            }],
        )

    def test_markdown_contains_all_sections(self):
        markdown = build_report(self._result()).to_markdown()
        assert "## Span tree" in markdown
        assert "## Counters" in markdown
        assert "## Histograms" in markdown
        assert "## Quality snapshots" in markdown
        assert "## Lineage samples" in markdown
        assert "(m0, release_year, 1995)" in markdown
        assert "[fusion] fusion.accu" in markdown
        assert "no baseline" in markdown

    def test_markdown_reports_regressions(self):
        report = build_report(
            self._result(),
            baseline={"quality": [{"name": "tiny", "n_triples": 40, "n_entities": 4}]},
            baseline_path="prior.json",
        )
        assert report.has_regressions
        markdown = report.to_markdown()
        assert "REGRESSION" in markdown
        assert "regression(s) detected" in markdown

    def test_document_embeds_baseline_diff(self):
        report = build_report(
            self._result(),
            baseline={"quality": [{"name": "tiny", "n_triples": 4, "n_entities": 4}]},
            baseline_path="prior.json",
        )
        document = report.to_document()
        assert document["baseline_diff"]["n_regressions"] == 0
        json.dumps(document)


class TestReportCommand:
    @pytest.fixture
    def tiny_id(self, monkeypatch):
        from repro.evalx import tracerun

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", _tiny_workload)
        return "T-TINY"

    def test_unknown_id(self, capsys):
        assert main(["report", "NOPE"]) == 2
        assert "no trace workload" in capsys.readouterr().err

    def test_writes_all_three_artifacts(self, tiny_id, tmp_path, capsys):
        assert main(["report", "t-tiny", "-o", str(tmp_path)]) == 0
        markdown = (tmp_path / "report_t_tiny.md").read_text()
        assert "## Span tree" in markdown
        assert "experiment.T-TINY" in markdown
        assert "[fusion] fusion.accu" in markdown  # a lineage chain made it in
        document = json.loads((tmp_path / "report_t_tiny.json").read_text())
        assert document["experiment_id"] == "T-TINY"
        assert document["quality"] and document["quality"][0]["name"] == "tiny"
        assert any(record["verdict"] == "accepted" for record in document["lineage"])
        prom = (tmp_path / "report_t_tiny.prom").read_text()
        assert "# TYPE repro_fusion_accepted counter" in prom
        assert "no baseline found" in capsys.readouterr().out

    def test_second_identical_run_reports_zero_regressions(self, tiny_id, tmp_path, capsys):
        assert main(["report", "T-TINY", "-o", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", "T-TINY", "-o", str(tmp_path)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_fails_the_run(self, tmp_path, monkeypatch, capsys):
        from repro.evalx import tracerun

        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", _tiny_workload)
        assert main(["report", "T-TINY", "-o", str(tmp_path)]) == 0
        monkeypatch.setitem(tracerun.TRACE_WORKLOADS, "T-TINY", _smaller_workload)
        capsys.readouterr()
        assert main(["report", "T-TINY", "-o", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "regression" in err
        assert "n_triples" in err

    def test_explicit_baseline_flag(self, tiny_id, tmp_path, capsys):
        first = tmp_path / "first"
        second = tmp_path / "second"
        assert main(["report", "T-TINY", "-o", str(first)]) == 0
        assert (
            main(
                [
                    "report",
                    "T-TINY",
                    "-o",
                    str(second),
                    "--baseline",
                    str(first / "report_t_tiny.json"),
                ]
            )
            == 0
        )
        assert "no regressions" in capsys.readouterr().out

    def test_report_leaves_observability_disabled(self, tiny_id, tmp_path):
        from repro import obs

        assert not obs.enabled()
        assert main(["report", "T-TINY", "-o", str(tmp_path)]) == 0
        assert not obs.enabled()
