"""Tests for Ceres-style distantly supervised extraction."""

import pytest

from repro.datagen.web import WebsiteConfig, generate_site
from repro.datagen.world import WorldConfig, build_world
from repro.extract.distant import (
    CeresExtractor,
    DistantSupervisor,
    SeedKnowledge,
    node_feature_strings,
    page_topic,
)


@pytest.fixture(scope="module")
def setup():
    world = build_world(WorldConfig(n_people=60, n_movies=80, n_songs=10, seed=15))
    site = generate_site(
        world,
        WebsiteConfig(name="movies.example.com", domain="Movie", n_pages=40, seed=16),
    )
    seed = SeedKnowledge.from_graph(
        world.truth, attributes=("directed_by", "release_year", "genre", "runtime")
    )
    return world, site, seed


class TestSeedKnowledge:
    def test_from_graph_resolves_entities(self, setup):
        world, _site, seed = setup
        movie = next(world.truth.entities("Movie"))
        facts = seed.lookup(movie.name)
        assert facts is not None
        director_id = world.truth.objects(movie.entity_id, "directed_by")[0]
        assert facts["directed_by"] == world.truth.entity(director_id).name

    def test_lookup_case_insensitive(self, setup):
        world, _site, seed = setup
        movie = next(world.truth.entities("Movie"))
        assert seed.lookup(movie.name.upper()) is not None

    def test_lookup_unknown(self, setup):
        _world, _site, seed = setup
        assert seed.lookup("Definitely Not A Movie") is None


class TestDistantSupervisor:
    def test_annotates_known_topics(self, setup):
        _world, site, seed = setup
        supervisor = DistantSupervisor(seed)
        annotated = supervisor.annotate_page(site.pages[0].root)
        assert annotated is not None
        labels = {label for _node, label in annotated}
        assert labels - {"none"}  # at least one positive label

    def test_positive_labels_match_truth(self, setup):
        _world, site, seed = setup
        supervisor = DistantSupervisor(seed)
        page = site.pages[0]
        annotated = supervisor.annotate_page(page.root)
        for node, label in annotated:
            if label != "none" and label in page.closed_truth:
                assert node.text.lower() == page.closed_truth[label].lower()

    def test_unknown_topic_returns_none(self, setup):
        _world, _site, seed = setup
        from repro.extract.dom import element, text_node

        page = element("html")
        body = page.append(element("body"))
        body.append(element("h1")).append(text_node("Unknown Topic"))
        assert DistantSupervisor(seed).annotate_page(page) is None

    def test_training_data_counts_pages(self, setup):
        _world, site, seed = setup
        supervisor = DistantSupervisor(seed)
        _features, _labels, n_pages = supervisor.training_data(
            [page.root for page in site.pages]
        )
        assert n_pages == len(site.pages)  # all topics exist in the seed KG


class TestCeresExtractor:
    def test_production_band_accuracy(self, setup):
        """ClosedIE must exceed 90% accuracy (the Fig. 3 claim)."""
        _world, site, seed = setup
        train, test = site.split(25)
        extractor = CeresExtractor(site_name=site.name).fit(
            [page.root for page in train], DistantSupervisor(seed)
        )
        correct = total = 0
        for page in test:
            extracted = extractor.extract(page.root)
            for attribute, (value, _confidence) in extracted.items():
                total += 1
                if page.closed_truth.get(attribute, "").lower() == value.lower():
                    correct += 1
        assert total > 0
        assert correct / total > 0.9

    def test_extract_triples_provenance(self, setup):
        _world, site, seed = setup
        extractor = CeresExtractor(site_name=site.name).fit(
            [page.root for page in site.pages[:25]], DistantSupervisor(seed)
        )
        triples = extractor.extract_triples(site.pages[30].root)
        for attributed in triples:
            assert attributed.provenance.source == site.name
            assert attributed.provenance.extractor == "ceres"
            assert 0.0 <= attributed.confidence <= 1.0

    def test_no_overlap_raises(self, setup):
        _world, site, _seed = setup
        empty_seed = SeedKnowledge()
        with pytest.raises(ValueError):
            CeresExtractor(site_name="x").fit(
                [page.root for page in site.pages[:5]], DistantSupervisor(empty_seed)
            )

    def test_unfitted_raises(self, setup):
        _world, site, _seed = setup
        with pytest.raises(RuntimeError):
            CeresExtractor(site_name="x").extract(site.pages[0].root)


class TestHelpers:
    def test_page_topic_prefers_h1(self, setup):
        _world, site, _seed = setup
        page = site.pages[0]
        assert page_topic(page.root) == page.topic_name

    def test_node_features_include_prev_label(self, setup):
        _world, site, _seed = setup
        page = site.pages[0]
        value_nodes = [
            node
            for node in page.root.text_nodes()
            if node.text in page.closed_truth.values()
        ]
        features = node_feature_strings(value_nodes[0])
        assert any(feature.startswith("prev=") for feature in features)
