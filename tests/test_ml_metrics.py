"""Tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    BinaryConfusion,
    accuracy,
    f1_score,
    macro_f1,
    precision_recall,
    precision_recall_curve,
    roc_auc,
)


class TestBinaryConfusion:
    def test_precision_recall_basic(self):
        confusion = BinaryConfusion(true_positive=8, false_positive=2, false_negative=4)
        assert confusion.precision == pytest.approx(0.8)
        assert confusion.recall == pytest.approx(8 / 12)

    def test_empty_predictions_have_perfect_precision(self):
        confusion = BinaryConfusion(false_negative=5)
        assert confusion.precision == 1.0
        assert confusion.recall == 0.0

    def test_f1_is_harmonic_mean(self):
        confusion = BinaryConfusion(true_positive=1, false_positive=1, false_negative=1)
        assert confusion.f1 == pytest.approx(2 * 0.5 * 0.5 / 1.0)

    def test_f1_zero_when_nothing_right(self):
        confusion = BinaryConfusion(false_positive=3, false_negative=3)
        assert confusion.f1 == 0.0

    def test_accuracy_counts_negatives(self):
        confusion = BinaryConfusion(true_positive=2, true_negative=6, false_positive=1, false_negative=1)
        assert confusion.accuracy == pytest.approx(0.8)

    def test_addition_accumulates(self):
        left = BinaryConfusion(true_positive=1, false_positive=2)
        right = BinaryConfusion(true_positive=3, false_negative=4)
        total = left + right
        assert total.true_positive == 4
        assert total.false_positive == 2
        assert total.false_negative == 4

    def test_from_predictions(self):
        confusion = BinaryConfusion.from_predictions([1, 1, 0, 0], [1, 0, 1, 0])
        assert (confusion.true_positive, confusion.false_negative) == (1, 1)
        assert (confusion.false_positive, confusion.true_negative) == (1, 1)

    def test_from_predictions_length_mismatch(self):
        with pytest.raises(ValueError):
            BinaryConfusion.from_predictions([1], [1, 0])

    def test_from_sets(self):
        confusion = BinaryConfusion.from_sets({"a", "b"}, {"b", "c"})
        assert confusion.true_positive == 1
        assert confusion.false_positive == 1
        assert confusion.false_negative == 1


class TestFunctionalMetrics:
    def test_precision_recall_tuple(self):
        precision, recall = precision_recall([1, 0, 1], [1, 1, 0])
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)

    def test_f1_score(self):
        assert f1_score([1, 1], [1, 1]) == 1.0

    def test_accuracy_empty(self):
        assert accuracy([], []) == 1.0

    def test_accuracy_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1], [])

    def test_macro_f1(self):
        confusions = [BinaryConfusion(true_positive=1), BinaryConfusion(false_positive=1, false_negative=1)]
        assert macro_f1(confusions) == pytest.approx(0.5)

    def test_macro_f1_empty(self):
        assert macro_f1([]) == 0.0


class TestCurves:
    def test_pr_curve_perfect_ranking(self):
        curve = precision_recall_curve([1, 1, 0, 0], [0.9, 0.8, 0.2, 0.1])
        # At the threshold covering both positives, precision and recall are 1.
        assert any(p == 1.0 and r == 1.0 for _t, p, r in curve)

    def test_pr_curve_ends_at_full_recall(self):
        curve = precision_recall_curve([0, 1, 1], [0.3, 0.2, 0.9])
        assert curve[-1][2] == 1.0

    def test_pr_curve_mismatch(self):
        with pytest.raises(ValueError):
            precision_recall_curve([1], [0.5, 0.6])

    def test_auc_perfect(self):
        assert roc_auc([1, 1, 0, 0], [0.9, 0.8, 0.2, 0.1]) == 1.0

    def test_auc_inverted(self):
        assert roc_auc([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_auc_random_ties(self):
        assert roc_auc([1, 0], [0.5, 0.5]) == pytest.approx(0.5)

    def test_auc_degenerate(self):
        assert roc_auc([1, 1], [0.4, 0.6]) == 0.5

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)), min_size=2, max_size=40)
    )
    def test_auc_bounded(self, pairs):
        labels = [label for label, _ in pairs]
        scores = [score for _, score in pairs]
        value = roc_auc(labels, scores)
        assert 0.0 <= value <= 1.0

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)), min_size=1, max_size=40)
    )
    def test_pr_curve_precision_bounds(self, pairs):
        labels = [label for label, _ in pairs]
        scores = [score for _, score in pairs]
        for _threshold, precision, recall in precision_recall_curve(labels, scores):
            assert 0.0 <= precision <= 1.0
            assert 0.0 <= recall <= 1.0
