"""Tests for the P-Companion-style recommender."""

import pytest

from repro.products.companion import CompanionRecommender


@pytest.fixture(scope="module")
def recommender(product_domain, behavior_log):
    return CompanionRecommender.build(product_domain, behavior_log)


class TestSubstitutes:
    def test_same_type_only(self, recommender, product_domain):
        query = product_domain.by_type("Coffee")[0]
        type_of = {p.product_id: p.product_type for p in product_domain.products}
        for rec in recommender.substitutes(query.product_id):
            assert type_of[rec.product_id] == "Coffee"

    def test_never_recommends_self(self, recommender, product_domain):
        query = product_domain.products[0]
        assert all(
            rec.product_id != query.product_id
            for rec in recommender.substitutes(query.product_id)
        )

    def test_ranked_by_attribute_overlap(self, recommender, product_domain):
        query = product_domain.by_type("Coffee")[0]
        recs = recommender.substitutes(query.product_id, top_k=10)
        scores = [rec.score for rec in recs]
        assert scores == sorted(scores, reverse=True)

    def test_top_substitute_shares_attributes(self, recommender, product_domain):
        query = product_domain.by_type("Coffee")[0]
        recs = recommender.substitutes(query.product_id, top_k=1)
        if recs:
            by_id = {p.product_id: p for p in product_domain.products}
            top = by_id[recs[0].product_id]
            shared = sum(
                1
                for attribute, value in query.true_values.items()
                if top.true_values.get(attribute) == value
            )
            assert shared >= 1

    def test_unknown_product_rejected(self, recommender):
        with pytest.raises(KeyError):
            recommender.substitutes("nope")


class TestComplements:
    def test_cross_type_only(self, recommender, product_domain):
        query = product_domain.by_type("Coffee")[0]
        type_of = {p.product_id: p.product_type for p in product_domain.products}
        for rec in recommender.complements(query.product_id):
            assert type_of[rec.product_id] != "Coffee"

    def test_diversified_across_types(self, recommender, product_domain):
        query = product_domain.by_type("Coffee")[0]
        recs = recommender.complements(query.product_id, top_k_per_type=1)
        type_of = {p.product_id: p.product_type for p in product_domain.products}
        types = [type_of[rec.product_id] for rec in recs]
        assert len(types) == len(set(types))  # one per complementary type

    def test_mined_complement_pairs_respected(self, recommender, product_domain):
        """Coffee's mined complement should include Mugs (the generator's
        co-purchase pairing)."""
        query = product_domain.by_type("Coffee")[0]
        recs = recommender.complements(query.product_id)
        type_of = {p.product_id: p.product_type for p in product_domain.products}
        assert any(type_of[rec.product_id] == "Mugs" for rec in recs)

    def test_reasons_attached(self, recommender, product_domain):
        query = product_domain.by_type("Tea")[0]
        for rec in recommender.complements(query.product_id):
            assert "complementary type" in rec.reason
