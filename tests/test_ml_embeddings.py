"""Tests for embeddings utilities."""

import numpy as np
import pytest

from repro.ml.embeddings import CooccurrenceEmbedder, cosine, hash_embedding


class TestHashEmbedding:
    def test_deterministic(self):
        assert np.allclose(hash_embedding("coffee"), hash_embedding("coffee"))

    def test_distinct_strings_differ(self):
        assert not np.allclose(hash_embedding("coffee"), hash_embedding("tea"))

    def test_unit_norm(self):
        assert np.linalg.norm(hash_embedding("anything")) == pytest.approx(1.0)

    def test_dimension(self):
        assert hash_embedding("x", dim=7).shape == (7,)


class TestCosine:
    def test_identical(self):
        vector = np.array([1.0, 2.0])
        assert cosine(vector, vector) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_safe(self):
        assert cosine(np.zeros(2), np.array([1.0, 0.0])) == 0.0


class TestCooccurrenceEmbedder:
    CORPUS = [
        ["drink", "green", "tea", "daily"],
        ["drink", "black", "tea", "daily"],
        ["drink", "dark", "coffee", "daily"],
        ["drink", "light", "coffee", "daily"],
        ["play", "loud", "music", "nightly"],
        ["play", "soft", "music", "nightly"],
    ] * 3

    def test_similar_contexts_are_close(self):
        # Low rank keeps only the dominant context axes; higher ranks add
        # components that separate tea/coffee by their distinct modifiers.
        embedder = CooccurrenceEmbedder(dim=3).fit(self.CORPUS)
        tea_coffee = cosine(embedder.embed("tea"), embedder.embed("coffee"))
        tea_music = cosine(embedder.embed("tea"), embedder.embed("music"))
        assert tea_coffee > tea_music

    def test_most_similar_excludes_self(self):
        embedder = CooccurrenceEmbedder(dim=6).fit(self.CORPUS)
        assert "tea" not in embedder.most_similar("tea", top_k=3)

    def test_unknown_token_falls_back_to_hash(self):
        embedder = CooccurrenceEmbedder(dim=6).fit(self.CORPUS)
        vector = embedder.embed("zzz-unknown")
        assert vector.shape == embedder.embed("tea").shape

    def test_sequence_embedding_mean(self):
        embedder = CooccurrenceEmbedder(dim=4).fit(self.CORPUS)
        sequence = embedder.embed_sequence(["tea", "coffee"])
        expected = (embedder.embed("tea") + embedder.embed("coffee")) / 2
        assert np.allclose(sequence, expected)

    def test_empty_sequence(self):
        embedder = CooccurrenceEmbedder(dim=4).fit(self.CORPUS)
        assert np.allclose(embedder.embed_sequence([]), 0.0)

    def test_min_count_filters(self):
        embedder = CooccurrenceEmbedder(dim=2, min_count=100).fit
        with pytest.raises(ValueError):
            embedder([["rare", "words"]])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CooccurrenceEmbedder().embed("x")
