"""Tests for blocking."""

import pytest

from repro.integrate.blocking import (
    BlockingStrategy,
    blocking_quality,
    candidate_pairs,
    name_prefix_key,
    name_token_keys,
    year_keys,
)


RECORDS_LEFT = [
    {"name": "Silent River", "release_year": 1999},
    {"name": "Crimson Harbor", "release_year": 1985},
    {"name": "Golden Letter", "release_year": 2001},
]
RECORDS_RIGHT = [
    {"name": "Silent River", "release_year": 1999},
    {"name": "River, Silent", "release_year": 2000},
    {"name": "Unrelated Epic", "release_year": 1960},
]


class TestKeyFunctions:
    def test_name_token_keys(self):
        keys = name_token_keys({"name": "Silent River"})
        assert set(keys) == {"tok:silent", "tok:river"}

    def test_name_prefix_key(self):
        assert name_prefix_key({"name": "Silent River"}) == ["pre:sil"]

    def test_name_prefix_empty(self):
        assert name_prefix_key({"name": ""}) == []

    def test_year_keys_tolerance(self):
        keys = year_keys({"release_year": 1999})
        assert "yr:release_year:1998" in keys
        assert "yr:release_year:2000" in keys

    def test_year_keys_non_numeric(self):
        assert year_keys({"release_year": "unknown"}) == []


class TestCandidatePairs:
    def test_token_blocking_finds_reordered_names(self):
        pairs = candidate_pairs(RECORDS_LEFT, RECORDS_RIGHT, BlockingStrategy())
        assert (0, 0) in pairs
        assert (0, 1) in pairs  # shares tokens despite reordering
        assert (1, 2) not in pairs

    def test_prefix_blocking_misses_reordered_names(self):
        strategy = BlockingStrategy(key_functions=(name_prefix_key,))
        pairs = candidate_pairs(RECORDS_LEFT, RECORDS_RIGHT, strategy)
        assert (0, 0) in pairs
        assert (0, 1) not in pairs  # "riv" != "sil" — the recall cost

    def test_union_of_keys(self):
        strategy = BlockingStrategy(key_functions=(name_prefix_key, year_keys))
        pairs = candidate_pairs(RECORDS_LEFT, RECORDS_RIGHT, strategy)
        assert (0, 1) in pairs  # year within tolerance

    def test_oversized_blocks_dropped(self):
        left = [{"name": "common token"} for _ in range(20)]
        right = [{"name": "common token"} for _ in range(20)]
        strategy = BlockingStrategy(max_block_size=5)
        assert candidate_pairs(left, right, strategy) == []

    def test_quality_metrics(self):
        pairs = [(0, 0), (0, 1)]
        quality = blocking_quality(pairs, true_pairs={(0, 0), (2, 2)}, n_left=3, n_right=3)
        assert quality["pair_completeness"] == 0.5
        assert quality["reduction_ratio"] == pytest.approx(1 - 2 / 9)

    def test_quality_no_truth(self):
        quality = blocking_quality([], set(), n_left=2, n_right=2)
        assert quality["pair_completeness"] == 1.0
