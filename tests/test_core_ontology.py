"""Tests for the ontology/taxonomy."""

import pytest

from repro.core.ontology import Ontology, OntologyError
from repro.core.triple import Triple


@pytest.fixture
def movie_ontology():
    ontology = Ontology()
    ontology.add_class("Agent")
    ontology.add_class("Person", parent="Agent")
    ontology.add_class("Actor", parent="Person")
    ontology.add_class("Work")
    ontology.add_class("Movie", parent="Work")
    ontology.add_relation("directed_by", "Movie", "Person", functional=True)
    ontology.add_relation("release_year", "Movie", "number")
    ontology.add_relation("name", "Agent", "string")
    return ontology


class TestClasses:
    def test_add_and_has(self, movie_ontology):
        assert movie_ontology.has_class("Movie")
        assert not movie_ontology.has_class("Song")

    def test_duplicate_same_parent_noop(self, movie_ontology):
        movie_ontology.add_class("Actor", parent="Person")
        assert movie_ontology.parent("Actor") == "Person"

    def test_duplicate_different_parent_rejected(self, movie_ontology):
        with pytest.raises(OntologyError):
            movie_ontology.add_class("Actor", parent="Agent")

    def test_unknown_parent_rejected(self):
        ontology = Ontology()
        with pytest.raises(OntologyError):
            ontology.add_class("X", parent="Missing")

    def test_empty_name_rejected(self):
        with pytest.raises(OntologyError):
            Ontology().add_class("")

    def test_ancestors_chain(self, movie_ontology):
        assert movie_ontology.ancestors("Actor") == ["Person", "Agent"]

    def test_descendants(self, movie_ontology):
        assert movie_ontology.descendants("Agent") == ["Person", "Actor"]

    def test_is_subclass_reflexive(self, movie_ontology):
        assert movie_ontology.is_subclass_of("Movie", "Movie")

    def test_is_subclass_transitive(self, movie_ontology):
        assert movie_ontology.is_subclass_of("Actor", "Agent")
        assert not movie_ontology.is_subclass_of("Agent", "Actor")

    def test_roots(self, movie_ontology):
        assert movie_ontology.roots() == ["Agent", "Work"]

    def test_depth(self, movie_ontology):
        assert movie_ontology.depth("Agent") == 0
        assert movie_ontology.depth("Actor") == 2

    def test_lowest_common_ancestor(self, movie_ontology):
        movie_ontology.add_class("Director", parent="Person")
        assert movie_ontology.lowest_common_ancestor("Actor", "Director") == "Person"
        assert movie_ontology.lowest_common_ancestor("Actor", "Movie") is None

    def test_move_class(self, movie_ontology):
        movie_ontology.add_class("Documentary")
        movie_ontology.move_class("Documentary", "Work")
        assert movie_ontology.parent("Documentary") == "Work"

    def test_move_class_cycle_rejected(self, movie_ontology):
        with pytest.raises(OntologyError):
            movie_ontology.move_class("Agent", "Actor")

    def test_unknown_class_queries_raise(self, movie_ontology):
        with pytest.raises(OntologyError):
            movie_ontology.parent("Nope")
        with pytest.raises(OntologyError):
            movie_ontology.children("Nope")
        with pytest.raises(OntologyError):
            movie_ontology.descendants("Nope")


class TestRelations:
    def test_relation_lookup(self, movie_ontology):
        relation = movie_ontology.relation("directed_by")
        assert relation.domain == "Movie"
        assert relation.functional

    def test_duplicate_relation_rejected(self, movie_ontology):
        with pytest.raises(OntologyError):
            movie_ontology.add_relation("directed_by", "Movie", "Person")

    def test_unknown_domain_rejected(self, movie_ontology):
        with pytest.raises(OntologyError):
            movie_ontology.add_relation("x", "Nope", "string")

    def test_unknown_range_rejected(self, movie_ontology):
        with pytest.raises(OntologyError):
            movie_ontology.add_relation("x", "Movie", "Nope")

    def test_literal_ranges_allowed(self, movie_ontology):
        movie_ontology.add_relation("runtime", "Movie", "number")
        assert movie_ontology.relation("runtime").is_attribute

    def test_relations_for_class_includes_inherited(self, movie_ontology):
        names = [relation.name for relation in movie_ontology.relations_for_class("Actor")]
        assert "name" in names  # inherited from Agent
        assert "directed_by" not in names


class TestValidation:
    def test_valid_triple(self, movie_ontology):
        problems = movie_ontology.validate_triple(
            Triple("m1", "release_year", 1999), "Movie"
        )
        assert problems == []

    def test_unknown_relation(self, movie_ontology):
        problems = movie_ontology.validate_triple(Triple("m1", "nope", "x"), "Movie")
        assert any("unknown relation" in problem for problem in problems)

    def test_domain_violation(self, movie_ontology):
        problems = movie_ontology.validate_triple(
            Triple("p1", "directed_by", "x"), "Person"
        )
        assert any("outside domain" in problem for problem in problems)

    def test_number_range_violation(self, movie_ontology):
        problems = movie_ontology.validate_triple(
            Triple("m1", "release_year", "nineteen"), "Movie"
        )
        assert any("not numeric" in problem for problem in problems)


class TestStatsAndMerge:
    def test_stats(self, movie_ontology):
        stats = movie_ontology.stats()
        assert stats["n_classes"] == 5
        assert stats["n_relations"] == 3
        assert stats["max_depth"] == 2
        assert stats["n_roots"] == 2

    def test_merge_from_union(self, movie_ontology):
        other = Ontology()
        other.add_class("Work")
        other.add_class("Song", parent="Work")
        other.add_relation("performed_by", "Song", "string")
        movie_ontology.merge_from(other)
        assert movie_ontology.has_class("Song")
        assert movie_ontology.parent("Song") == "Work"
        assert movie_ontology.has_relation("performed_by")

    def test_merge_preserves_existing(self, movie_ontology):
        other = Ontology()
        other.add_class("Movie")  # root there, child of Work here
        movie_ontology.merge_from(other)
        assert movie_ontology.parent("Movie") == "Work"
