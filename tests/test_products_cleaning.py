"""Tests for knowledge cleaning."""

import pytest

from repro.products.cleaning import KnowledgeCleaner


@pytest.fixture(scope="module")
def rule_cleaner(product_domain):
    return KnowledgeCleaner.from_rules(product_domain)


@pytest.fixture(scope="module")
def stat_cleaner(product_domain):
    return KnowledgeCleaner.from_catalog_statistics(product_domain)


class TestRuleCleaner:
    def test_forbidden_value_dropped(self, rule_cleaner):
        report = rule_cleaner.clean_report({"flavor": "bbq"}, "Ice Cream")
        assert "flavor" not in report.kept
        assert report.dropped[0][2] == "forbidden_for_type"

    def test_valid_values_kept(self, rule_cleaner):
        kept = rule_cleaner.clean({"flavor": "vanilla", "size": "1 pint"}, "Ice Cream")
        assert kept == {"flavor": "vanilla", "size": "1 pint"}

    def test_out_of_vocabulary_dropped(self, rule_cleaner):
        report = rule_cleaner.clean_report({"flavor": "gasoline"}, "Coffee")
        assert "flavor" not in report.kept
        assert report.dropped[0][2] == "outside_type_vocabulary"

    def test_contradiction_resolved(self, rule_cleaner):
        values = {"dietary": "sugar-free", "flavor": "chocolate chip"}
        kept = rule_cleaner.clean(values, "Snacks")
        assert "dietary" in kept
        assert "flavor" not in kept

    def test_cross_type_value_dropped(self, rule_cleaner):
        """'wireless' is a Headphones value, never a Coffee flavor."""
        kept = rule_cleaner.clean({"flavor": "wireless"}, "Coffee")
        assert kept == {}

    def test_rule_count_positive(self, rule_cleaner):
        assert rule_cleaner.n_rules > 0


class TestNormalization:
    def test_partial_value_expanded(self, rule_cleaner):
        normalized = rule_cleaner.normalize({"roast": "dark"}, "Coffee")
        assert normalized["roast"] == "dark roast"

    def test_ambiguous_partial_untouched(self, rule_cleaner):
        # "light" prefixes both "light gray" and nothing else in Headphones
        # color... ensure uniqueness logic: use Mugs where "light green"
        # and "dark blue" coexist — "light" uniquely expands.
        normalized = rule_cleaner.normalize({"color": "light"}, "Mugs")
        assert normalized["color"] == "light green"

    def test_full_value_untouched(self, rule_cleaner):
        normalized = rule_cleaner.normalize({"flavor": "mocha"}, "Coffee")
        assert normalized["flavor"] == "mocha"

    def test_clean_applies_normalization(self, rule_cleaner):
        kept = rule_cleaner.clean({"roast": "dark"}, "Coffee")
        assert kept.get("roast") == "dark roast"


class TestStatisticalCleaner:
    def test_learns_type_vocabularies(self, stat_cleaner, product_domain):
        vocabulary = stat_cleaner.type_vocabulary.get(("Coffee", "flavor"))
        assert vocabulary
        assert vocabulary <= {v.lower() for v in product_domain.attribute_values("flavor")}

    def test_flags_cross_type_values(self, stat_cleaner):
        """A value frequent globally but absent for the type is forbidden."""
        kept = stat_cleaner.clean({"flavor": "bbq"}, "Ice Cream")
        assert kept == {}

    def test_keeps_common_in_type_values(self, stat_cleaner, product_domain):
        from collections import Counter

        counts = Counter(
            product.catalog_values.get("flavor")
            for product in product_domain.by_type("Coffee")
            if "flavor" in product.catalog_values
        )
        common_value, _count = counts.most_common(1)[0]
        kept = stat_cleaner.clean({"flavor": common_value}, "Coffee")
        assert kept.get("flavor") == common_value

    def test_no_rules_written_by_hand(self, stat_cleaner):
        """Statistical construction costs zero hand-written rules; the
        ledger in Fig. 5(b) depends on this being learnable."""
        # n_rules counts learned artifacts; the *manual* cost is zero,
        # asserted indirectly: construction needs only the domain object.
        assert stat_cleaner.n_rules >= 0
