"""The HTTP transport's observability surfaces and hardened edges.

Covers the PR's satellite contracts: request-id headers on every
response (including across keep-alive reuse), strict ``timeout_s``
parsing, trailing-slash route normalization with a counted 404,
``/metrics`` as parseable Prometheus exposition, ``/statusz`` burn
signals under degradation, the HTTP client's transport-failure paths,
and metric exactness under concurrent server threads.
"""

import socket
import threading

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.obs import enabled_scope, get_registry
from repro.serve.admission import AdmissionController
from repro.serve.context import REQUEST_ID_HEADER
from repro.serve.server import HTTPClient, start_server
from repro.serve.service import KGService


def build_graph(n=20):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="obstest")
    for index in range(n):
        graph.add_entity(f"e{index}", f"Node {index}", "Thing")
        graph.add(f"e{index}", "color", "red" if index % 2 else "blue")
    return graph


def make_service(admission=None, trace_sample=0.0):
    service = KGService(admission=admission, trace_sample=trace_sample)
    service.publish(build_graph())
    return service


@pytest.fixture
def served():
    """A served service + client; yields (service, client, server)."""
    service = make_service()
    server, _thread = start_server(service, port=0)
    client = HTTPClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield service, client, server
    finally:
        server.shutdown()


class TestRequestIdHeader:
    def test_every_endpoint_carries_a_request_id(self, served):
        _service, client, _server = served
        for call in (
            lambda: client.lookup("e0", "color"),
            lambda: client.ask("Node 0", "color"),
            lambda: client.query([["?s", "color", "?c"]]),
            lambda: client._get("/healthz", {}),
            lambda: client.stats(),
            lambda: client.statusz(),
            lambda: client._get("/nope", {}),          # 404
            lambda: client.lookup("", ""),             # 400
        ):
            call()
            assert client.last_request_id, "response missing X-Repro-Request-Id"
        client.metrics_text()
        assert client.last_request_id

    def test_supplied_id_is_echoed(self, served):
        _service, client, _server = served
        status, headers, _raw = client._roundtrip(
            "GET", "/lookup?subject=e0&predicate=color",
            None, {REQUEST_ID_HEADER: "req-mine-0001"},
        )
        assert status == 200
        assert headers.get(REQUEST_ID_HEADER) == "req-mine-0001"

    def test_minted_ids_do_not_leak_across_keepalive(self, served):
        """One handler serves many keep-alive requests; each must get a
        fresh id, not the first request's memoized one."""
        _service, client, _server = served
        ids = []
        for _ in range(3):
            client.lookup("e0", "color")
            ids.append(client.last_request_id)
        assert len(set(ids)) == 3


class TestTimeoutParam:
    def test_invalid_timeout_is_400(self, served):
        _service, client, _server = served
        code, body = client._get(
            "/lookup", {"subject": "e0", "predicate": "color", "timeout_s": "abc"}
        )
        assert code == 400
        assert "timeout_s" in body["error"]

    def test_valid_timeout_passes_through(self, served):
        _service, client, _server = served
        code, _body = client.lookup("e0", "color", timeout_s=5.0)
        assert code == 200


class TestRouteNormalization:
    def test_trailing_slash_resolves(self, served):
        _service, client, _server = served
        code, _body = client._get("/lookup/", {"subject": "e0", "predicate": "color"})
        assert code == 200
        code, _body = client._send(
            "POST", "/query/",
            data=b'{"patterns": [["?s", "color", "?c"]]}',
            headers={"Content-Type": "application/json"},
        )
        assert code == 200

    def test_unknown_routes_404_and_count(self, served):
        _service, client, _server = served
        with enabled_scope():
            assert client._get("/definitely-not-a-route", {})[0] == 404
            assert client._send("POST", "/lookup", data=b"{}")[0] == 404
            assert client._get("/", {})[0] == 404
            assert get_registry().counter("serve.http.404").value == 3


class TestMetricsEndpoint:
    def test_prometheus_exposition_parses_with_route_series(self, served):
        _service, client, _server = served
        with enabled_scope():
            client.lookup("e0", "color")
            client.query([["?s", "color", "?c"]])
            text = client.metrics_text()
        families = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                if line.startswith("# TYPE "):
                    _hash, _type, name, kind = line.split()
                    families[name] = kind
                continue
            # Every sample line is "name[{labels}] value" with a float value.
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part.startswith("repro_")
        assert families.get("repro_serve_requests") == "counter"
        assert families.get("repro_serve_route_lookup_requests") == "counter"
        assert families.get("repro_serve_route_lookup_seconds") == "histogram"
        assert 'repro_serve_route_query_seconds_bucket{le="' in text
        assert "repro_serve_route_query_seconds_count 1" in text

    def test_metrics_endpoint_works_with_obs_disabled(self, served):
        _service, client, _server = served
        text = client.metrics_text()
        assert isinstance(text, str)  # empty registry renders, not crashes


class TestStatusz:
    def test_statusz_shape(self, served):
        _service, client, _server = served
        code, body = client.statusz()
        assert code == 200
        assert body["degradation_level"] == "normal"
        assert body["observability_enabled"] is False
        assert set(body["slo"]["routes"]) >= {"lookup", "paths", "query", "ask"}

    def test_burn_flips_under_degradation(self):
        """Shedding traffic must push the SLO burn rate over 1.0."""
        admission = AdmissionController(rate=10_000.0, max_concurrent=1)
        service = make_service(admission=admission)
        server, _thread = start_server(service, port=0)
        client = HTTPClient(f"http://127.0.0.1:{server.server_address[1]}")
        try:
            with enabled_scope():
                occupied = admission.admit("lookup")
                assert occupied.admitted
                try:
                    for index in range(5):
                        code, _body = client.lookup(f"e{index}", "color")
                        assert code == 429
                finally:
                    admission.release()
                _code, body = client.statusz()
            slo = body["slo"]
            lookup = slo["routes"]["lookup"]
            assert lookup["shed"] >= 5
            assert lookup["budget_burn_rate"] > 1.0
            assert slo["burning"] is True and slo["worst_burn_rate"] > 1.0
        finally:
            server.shutdown()


class TestHTTPClientTransport:
    def test_connection_refused_is_599(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        client = HTTPClient(f"http://127.0.0.1:{port}", timeout_s=1.0)
        code, body = client.lookup("e0", "color")
        assert code == 599
        assert "transport" in body["error"]
        assert client.last_request_id is None

    def test_non_json_error_body_surfaces_as_error_dict(self):
        """A proxy error page (text/html, non-JSON) must not raise."""
        payload = b"<html>bad gateway</html>"
        response = (
            b"HTTP/1.1 502 Bad Gateway\r\n"
            b"Content-Type: text/html\r\n"
            + f"Content-Length: {len(payload)}\r\n".encode()
            + b"Connection: close\r\n\r\n"
            + payload
        )
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_once():
            connection, _addr = listener.accept()
            connection.recv(65536)
            connection.sendall(response)
            connection.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        try:
            client = HTTPClient(f"http://127.0.0.1:{port}", timeout_s=2.0)
            code, body = client.lookup("e0", "color")
            assert code == 502
            assert body == {"error": "<html>bad gateway</html>"}
        finally:
            thread.join(timeout=2.0)
            listener.close()

    def test_client_recovers_after_server_restart(self):
        service = make_service()
        server, _thread = start_server(service, port=0)
        port = server.server_address[1]
        client = HTTPClient(f"http://127.0.0.1:{port}", timeout_s=2.0)
        assert client.lookup("e0", "color")[0] == 200
        server.shutdown()
        server.server_close()
        # shutdown() stops the accept loop; an established keep-alive
        # connection keeps serving until it closes, so sever it to model
        # a hard restart.
        client._drop_connection()
        assert client.lookup("e0", "color")[0] == 599  # refused, not raised
        server2, _thread2 = start_server(make_service(), port=port)
        try:
            assert client.lookup("e0", "color")[0] == 200  # rebuilt connection
        finally:
            server2.shutdown()


class TestMetricsThreadSafety:
    def test_exact_counter_totals_under_concurrency(self):
        """N threads x M requests: counters must land on exactly N*M."""
        service = make_service(
            admission=AdmissionController(rate=1_000_000.0, max_concurrent=64)
        )
        server, _thread = start_server(service, port=0)
        url = f"http://127.0.0.1:{server.server_address[1]}"
        n_threads, per_thread = 6, 25
        codes = []
        lock = threading.Lock()
        try:
            with enabled_scope():

                def hammer():
                    client = HTTPClient(url)
                    for index in range(per_thread):
                        code, _body = client.lookup(f"e{index % 20}", "color")
                        with lock:
                            codes.append(code)

                threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                registry = get_registry()
                total = n_threads * per_thread
                assert registry.counter("serve.requests").value == total
                assert registry.counter("serve.route.lookup.requests").value == total
                assert (
                    registry.histogram("serve.route.lookup.seconds").summary()["count"]
                    == total
                )
        finally:
            server.shutdown()
        assert len(codes) == n_threads * per_thread
        assert all(code == 200 for code in codes)
