"""Property-based invariants for core data structures.

Complements the example-based tests: random operation sequences must keep
the taxonomy acyclic and consistent, and the text-rich KG's reverse index
must always agree with its forward records.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ontology import Ontology, OntologyError
from repro.core.textrich import AttributeValue, TextRichKG

_class_names = st.sampled_from([f"C{i}" for i in range(8)])


@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "move"]), _class_names, _class_names | st.none()),
        max_size=30,
    )
)
@settings(max_examples=80)
def test_ontology_random_ops_stay_consistent(operations):
    ontology = Ontology()
    for operation, class_name, parent in operations:
        try:
            if operation == "add":
                ontology.add_class(class_name, parent=parent)
            else:
                ontology.move_class(class_name, parent)
        except OntologyError:
            continue  # rejected operations must leave the taxonomy intact
    # Invariant 1: ancestor chains terminate (no cycles).
    for class_name in ontology.classes():
        chain = ontology.ancestors(class_name)
        assert class_name not in chain
        assert len(chain) == len(set(chain))
    # Invariant 2: parent/children agree.
    for class_name in ontology.classes():
        parent = ontology.parent(class_name)
        if parent is not None:
            assert class_name in ontology.children(parent)
        for child in ontology.children(class_name):
            assert ontology.parent(child) == class_name
    # Invariant 3: descendants is the transitive closure of children.
    for class_name in ontology.classes():
        descendants = set(ontology.descendants(class_name))
        direct = set(ontology.children(class_name))
        assert direct <= descendants
        for child in direct:
            assert set(ontology.descendants(child)) <= descendants
    # Invariant 4: depth equals ancestor count.
    for class_name in ontology.classes():
        assert ontology.depth(class_name) == len(ontology.ancestors(class_name))


_topics = st.sampled_from(["t0", "t1", "t2"])
_attributes = st.sampled_from(["flavor", "scent"])
_values = st.sampled_from(["mocha", "vanilla", "mint"])


@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), _topics, _attributes, _values),
        max_size=40,
    )
)
@settings(max_examples=80)
def test_textrich_reverse_index_consistent(operations):
    kg = TextRichKG()
    for topic_id in ("t0", "t1", "t2"):
        kg.add_topic(topic_id, topic_id.upper(), "Thing")
    for operation, topic_id, attribute, value in operations:
        if operation == "add":
            kg.add_value(topic_id, AttributeValue(attribute=attribute, value=value))
        else:
            kg.remove_value(topic_id, attribute, value)
    # Forward records and reverse index must agree exactly.
    for topic_id in ("t0", "t1", "t2"):
        for record in kg.values(topic_id):
            assert topic_id in kg.topics_with_value(record.attribute, record.value)
    for attribute in ("flavor", "scent"):
        for value in ("mocha", "vanilla", "mint"):
            for topic_id in kg.topics_with_value(attribute, value):
                assert any(
                    record.attribute == attribute and record.value == value
                    for record in kg.values(topic_id)
                )
    # Stats agree with enumeration.
    stats = kg.stats()
    assert stats["n_value_triples"] == sum(
        len(kg.values(topic_id)) for topic_id in ("t0", "t1", "t2")
    )
