"""Tests for the entity-based KnowledgeGraph, including index invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.triple import Provenance, Triple


def _graph():
    ontology = Ontology()
    ontology.add_class("Person")
    ontology.add_class("Movie")
    ontology.add_relation("directed_by", "Movie", "Person")
    ontology.add_relation("release_year", "Movie", "number")
    graph = KnowledgeGraph(ontology=ontology)
    graph.add_entity("m1", "Silent River", "Movie")
    graph.add_entity("m2", "Silent River", "Movie", aliases={"The Silent River"})
    graph.add_entity("p1", "Jane Doe", "Person")
    return graph


class TestEntities:
    def test_add_and_lookup(self):
        graph = _graph()
        assert graph.entity("m1").name == "Silent River"

    def test_duplicate_id_rejected(self):
        graph = _graph()
        with pytest.raises(ValueError):
            graph.add_entity("m1", "X", "Movie")

    def test_unknown_class_rejected(self):
        graph = _graph()
        with pytest.raises(ValueError):
            graph.add_entity("x", "X", "Song")

    def test_find_by_name_returns_all_homonyms(self):
        graph = _graph()
        assert {entity.entity_id for entity in graph.find_by_name("silent river")} == {
            "m1",
            "m2",
        }

    def test_find_by_alias(self):
        graph = _graph()
        assert graph.find_by_name("The Silent River")[0].entity_id == "m2"

    def test_add_alias_indexes(self):
        graph = _graph()
        graph.add_alias("p1", "J. Doe")
        assert graph.find_by_name("j. doe")[0].entity_id == "p1"

    def test_entities_filtered_by_class(self):
        graph = _graph()
        assert [entity.entity_id for entity in graph.entities("Person")] == ["p1"]

    def test_unknown_entity_raises(self):
        with pytest.raises(KeyError):
            _graph().entity("nope")


class TestTriples:
    def test_add_returns_new_flag(self):
        graph = _graph()
        triple = Triple("m1", "directed_by", "p1")
        assert graph.add_triple(triple) is True
        assert graph.add_triple(triple) is False
        assert len(graph) == 1

    def test_unknown_subject_rejected(self):
        graph = _graph()
        with pytest.raises(ValueError):
            graph.add(Triple("nope", "p", "o").subject, "p", "o")

    def test_validation_mode(self):
        graph = _graph()
        with pytest.raises(ValueError):
            graph.add("p1", "directed_by", "m1", validate=True)
        graph.add("m1", "release_year", 1999, validate=True)

    def test_remove(self):
        graph = _graph()
        triple = Triple("m1", "release_year", 1999)
        graph.add_triple(triple)
        assert graph.remove_triple(triple) is True
        assert graph.remove_triple(triple) is False
        assert triple not in graph

    def test_provenance_accumulates(self):
        graph = _graph()
        triple = Triple("m1", "release_year", 1999)
        graph.add_triple(triple, provenance=Provenance(source="a"))
        graph.add_triple(triple, provenance=Provenance(source="b"))
        assert {record.source for record in graph.provenance(triple)} == {"a", "b"}

    def test_attributed_triples_default_source(self):
        graph = _graph()
        graph.add("m1", "release_year", 1999)
        attributed = list(graph.attributed_triples())
        assert attributed[0].provenance.source == graph.name


class TestQueries:
    def test_all_patterns(self):
        graph = _graph()
        graph.add("m1", "directed_by", "p1")
        graph.add("m1", "release_year", 1999)
        graph.add("m2", "directed_by", "p1")
        assert len(graph.query()) == 3
        assert len(graph.query(subject="m1")) == 2
        assert len(graph.query(predicate="directed_by")) == 2
        assert len(graph.query(obj="p1")) == 2
        assert len(graph.query(subject="m1", predicate="directed_by")) == 1
        assert len(graph.query(predicate="directed_by", obj="p1")) == 2
        assert graph.query(subject="m1", predicate="directed_by", obj="p1") == [
            Triple("m1", "directed_by", "p1")
        ]

    def test_objects_and_subjects(self):
        graph = _graph()
        graph.add("m1", "directed_by", "p1")
        assert graph.objects("m1", "directed_by") == ["p1"]
        assert graph.subjects("directed_by", "p1") == ["m1"]

    def test_one_object(self):
        graph = _graph()
        graph.add("m1", "release_year", 1999)
        assert graph.one_object("m1", "release_year") == 1999
        graph.add("m1", "release_year", 2000)
        assert graph.one_object("m1", "release_year") is None

    def test_neighbors_bidirectional(self):
        graph = _graph()
        graph.add("m1", "directed_by", "p1")
        assert ("directed_by", "p1", True) in graph.neighbors("m1")
        assert ("directed_by", "m1", False) in graph.neighbors("p1")

    def test_neighbors_exclude_literals(self):
        graph = _graph()
        graph.add("m1", "release_year", 1999)
        assert graph.neighbors("m1") == []


class TestMerge:
    def test_merge_moves_triples(self):
        graph = _graph()
        graph.add("m2", "directed_by", "p1")
        graph.merge_entities("m1", "m2")
        assert not graph.has_entity("m2")
        assert Triple("m1", "directed_by", "p1") in graph

    def test_merge_rewrites_object_references(self):
        graph = _graph()
        graph.add_entity("p2", "Jane Doe", "Person")
        graph.add("m1", "directed_by", "p2")
        graph.merge_entities("p1", "p2")
        assert Triple("m1", "directed_by", "p1") in graph

    def test_merge_moves_aliases_and_names(self):
        graph = _graph()
        graph.merge_entities("m1", "m2")
        assert "The Silent River" in graph.entity("m1").aliases
        assert graph.find_by_name("the silent river")[0].entity_id == "m1"

    def test_merge_preserves_provenance(self):
        graph = _graph()
        graph.add_triple(
            Triple("m2", "release_year", 1999), provenance=Provenance(source="imdb")
        )
        graph.merge_entities("m1", "m2")
        records = graph.provenance(Triple("m1", "release_year", 1999))
        assert records and records[0].source == "imdb"

    def test_stats(self):
        graph = _graph()
        graph.add("m1", "directed_by", "p1")
        graph.add("m1", "release_year", 1999)
        stats = graph.stats()
        assert stats["n_entities"] == 3
        assert stats["n_triples"] == 2
        assert stats["n_entity_edges"] == 1
        assert stats["n_attribute_triples"] == 1

    def test_copy_is_independent(self):
        graph = _graph()
        graph.add("m1", "release_year", 1999)
        clone = graph.copy()
        clone.add("m1", "directed_by", "p1")
        assert len(graph) == 1
        assert len(clone) == 2


# ----------------------------------------------------------------------
# property-based index invariant: every query answer agrees with a scan.

_subjects = st.sampled_from(["e0", "e1", "e2"])
_predicates = st.sampled_from(["p", "q"])
_objects = st.sampled_from(["e0", "e1", "v1", "v2", 7])


@given(
    st.lists(st.tuples(_subjects, _predicates, _objects), max_size=25),
    _subjects | st.none(),
    _predicates | st.none(),
    _objects | st.none(),
)
@settings(max_examples=80)
def test_query_matches_full_scan(triples, subject, predicate, obj):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology)
    for entity_id in ("e0", "e1", "e2"):
        graph.add_entity(entity_id, entity_id.upper(), "Thing")
    inserted = set()
    for s, p, o in triples:
        graph.add(s, p, o)
        inserted.add(Triple(s, p, o))
    expected = sorted(
        triple
        for triple in inserted
        if (subject is None or triple.subject == subject)
        and (predicate is None or triple.predicate == predicate)
        and (obj is None or triple.object == obj)
    )
    assert graph.query(subject=subject, predicate=predicate, obj=obj) == expected
