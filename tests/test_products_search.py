"""Tests for product search/display/comparison over the text-rich KG."""

import pytest

from repro.core.textrich import AttributeValue, TextRichKG
from repro.products.search import ProductSearch


@pytest.fixture
def kg():
    kg = TextRichKG()
    kg.taxonomy.add_class("Coffee")
    kg.taxonomy.add_class("Ground Coffee", parent="Coffee")
    kg.taxonomy.add_class("Tea")
    kg.add_topic("c1", "Onus mocha dark roast Ground Coffee", "Ground Coffee")
    kg.add_value("c1", AttributeValue(attribute="flavor", value="mocha"))
    kg.add_value("c1", AttributeValue(attribute="roast", value="dark roast"))
    kg.add_topic("c2", "Brio vanilla Ground Coffee", "Ground Coffee")
    kg.add_value("c2", AttributeValue(attribute="flavor", value="vanilla"))
    kg.add_value("c2", AttributeValue(attribute="roast", value="light roast"))
    kg.add_topic("t1", "Verdant mint Tea", "Tea")
    kg.add_value("t1", AttributeValue(attribute="flavor", value="mint"))
    return kg


@pytest.fixture
def search(kg):
    return ProductSearch(kg)


class TestParse:
    def test_type_and_value_filters(self, search):
        parsed = search.parse("dark roast coffee")
        assert parsed.type_filter == "Coffee"
        assert ("roast", "dark roast") in parsed.value_filters

    def test_longest_value_wins(self, search):
        parsed = search.parse("dark roast")
        values = [value for _attr, value in parsed.value_filters]
        assert "dark roast" in values

    def test_no_filters(self, search):
        parsed = search.parse("something unrelated")
        assert parsed.type_filter is None
        assert parsed.value_filters == ()


class TestSearch:
    def test_value_filtered_search(self, search):
        hits = search.search("mocha coffee")
        assert hits[0].topic_id == "c1"
        assert "flavor=mocha" in hits[0].matched

    def test_type_filter_excludes_other_types(self, search):
        hits = search.search("mint coffee")
        # "mint" exists only on a Tea topic; type filter Coffee excludes it.
        assert all(hit.topic_id != "t1" for hit in hits if hit.score > 0)

    def test_type_only_query_returns_type(self, search):
        hits = search.search("tea")
        assert {hit.topic_id for hit in hits} == {"t1"}

    def test_residual_terms_break_ties(self, search):
        hits = search.search("coffee Brio")
        assert hits[0].topic_id == "c2"

    def test_top_k(self, search):
        assert len(search.search("coffee", top_k=1)) == 1


class TestDisplayCompare:
    def test_display_panel(self, search):
        panel = search.display("c1")
        assert panel == {"flavor": "mocha", "roast": "dark roast"}

    def test_compare_table_shape(self, search):
        rows = search.compare(["c1", "c2"])
        assert rows[0][0] == "attribute"
        assert len(rows[0]) == 3
        flavor_row = next(row for row in rows if row[0] == "flavor")
        assert flavor_row[1:] == ["mocha", "vanilla"]

    def test_compare_missing_values_dashed(self, search, kg):
        kg.add_value("c1", AttributeValue(attribute="caffeine", value="decaf"))
        rows = search.compare(["c1", "c2"])
        caffeine_row = next(row for row in rows if row[0] == "caffeine")
        assert caffeine_row[1:] == ["decaf", "-"]

    def test_integration_with_autoknow_kg(self, product_domain, behavior_log):
        from repro.products.autoknow import AutoKnow

        autoknow = AutoKnow(n_epochs=3, seed=9)
        autoknow.run(product_domain, behavior=behavior_log)
        search = ProductSearch(autoknow.kg_)
        hits = search.search("mocha coffee", top_k=5)
        by_id = {p.product_id: p for p in product_domain.products}
        for hit in hits:
            if hit.score >= 1.0:
                product = by_id[hit.topic_id]
                assert product.product_type in ("Coffee",) or "coffee" in product.leaf_type.lower()
